#!/usr/bin/env python3
"""Parallel benchmark runner: shard ``benchmarks/bench_*.py`` across a
process pool and merge the results deterministically into
``BENCH_sim.json``.

Every benchmark file is an independent process (the simulator is CPU-bound
pure Python, so process-level sharding is the only parallelism that pays).
Two kinds of shard are recognised:

* **script benches** (``bench_hotpath.py``, ``bench_sim_engine.py``) have
  their own ``main`` and JSON output; they are invoked with ``-o <tmp>``
  (plus ``--quick`` when requested) and their JSON is carried whole.
* **pytest benches** (everything else) run under
  ``pytest --benchmark-only --benchmark-json=<tmp>``; the per-test timing
  stats are extracted.

The merge is deterministic: shards are keyed by file name, test rows are
sorted, and the engine sections produced by ``bench_sim_engine.py`` stay
at the top level of the output (so ``scripts/perf_report.py`` can render
and gate the merged file exactly like a direct ``bench_sim_engine.py``
run).

With ``--trace-out FILE.jsonl`` the runner additionally emits a
``pymao.trace/1`` event log — one ``bench-suite`` root span with one
child span per shard (status/kind/elapsed attrs) plus runner metrics —
the same schema ``mao --trace-out`` writes and
``scripts/validate_trace.py`` / ``scripts/perf_report.py`` consume.

Usage::

    PYTHONPATH=src python scripts/bench_runner.py --quick --jobs 4
    PYTHONPATH=src python scripts/bench_runner.py --filter 'bench_fig*'
    python scripts/perf_report.py BENCH_sim.json
"""

from __future__ import annotations

import argparse
import concurrent.futures
import fnmatch
import json
import os
import subprocess
import sys
import tempfile
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BENCH_DIR = os.path.join(_REPO_ROOT, "benchmarks")

#: Benches with their own __main__/JSON contract (everything else is a
#: pytest-benchmark file).
_SCRIPT_BENCHES = ("bench_hotpath.py", "bench_sim_engine.py")


def _shard_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(_REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def run_shard(filename: str, quick: bool, timeout: float) -> dict:
    """Run one benchmark file in its own process; return its summary."""
    path = os.path.join(_BENCH_DIR, filename)
    is_script = filename in _SCRIPT_BENCHES
    fd, tmp = tempfile.mkstemp(prefix="bench_", suffix=".json")
    os.close(fd)
    try:
        if is_script:
            cmd = [sys.executable, path, "-o", tmp]
            if quick:
                cmd.append("--quick")
        else:
            cmd = [sys.executable, "-m", "pytest", path, "-q",
                   "--benchmark-only", "--benchmark-json=%s" % tmp]
        start = time.perf_counter()
        try:
            proc = subprocess.run(cmd, cwd=_REPO_ROOT, env=_shard_env(),
                                  capture_output=True, text=True,
                                  timeout=timeout)
            status = "ok" if proc.returncode == 0 else "failed"
            tail = (proc.stdout + proc.stderr).strip().splitlines()[-3:]
        except subprocess.TimeoutExpired:
            status, tail = "timeout", []
        elapsed = time.perf_counter() - start
        shard = {
            "kind": "script" if is_script else "pytest",
            "status": status,
            "elapsed_s": round(elapsed, 3),
        }
        if status != "ok":
            shard["log_tail"] = tail
        payload = None
        if os.path.getsize(tmp):
            with open(tmp) as handle:
                payload = json.load(handle)
        if payload is None:
            return shard
        if is_script:
            shard["results"] = payload
        else:
            shard["tests"] = sorted(
                ({"name": b["name"],
                  "mean_s": round(b["stats"]["mean"], 6),
                  "rounds": b["stats"]["rounds"]}
                 for b in payload.get("benchmarks", [])),
                key=lambda row: row["name"])
        return shard
    finally:
        os.unlink(tmp)


def discover(pattern: str) -> list:
    names = sorted(f for f in os.listdir(_BENCH_DIR)
                   if f.startswith("bench_") and f.endswith(".py"))
    return [f for f in names if fnmatch.fnmatch(f, pattern)]


def write_runner_trace(path: str, shards: dict, wall: float,
                       jobs: int, quick: bool) -> None:
    """Emit the shard summary as a pymao.trace/1 event log."""
    src = os.path.join(_REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro import obs

    root = obs.Span("bench-suite", {"jobs": jobs, "quick": quick})
    root.dur_s = wall
    registry = obs.Registry()
    for name in sorted(shards):
        shard = shards[name]
        child = obs.Span("shard:%s" % name,
                         {"kind": shard["kind"],
                          "status": shard["status"]})
        child.dur_s = shard["elapsed_s"]
        root.children.append(child)
        registry.inc("runner.shards")
        if shard["status"] != "ok":
            registry.inc("runner.failures")
        for row in shard.get("tests", ()):
            registry.observe("runner.test_mean_s", row["mean_s"])
    registry.gauge("runner.wall_s", round(wall, 3))
    registry.gauge("runner.jobs", jobs)
    sink = obs.JsonlSink(path)
    try:
        obs.write_trace(sink, [root], registry=registry,
                        tool="bench_runner", quick=quick)
    finally:
        sink.close()


def merge(shards: dict) -> dict:
    """Deterministic merge: engine sections at top level, suite below."""
    engine = (shards.get("bench_sim_engine.py") or {}).get("results")
    merged = dict(engine) if engine else {"schema": "mao-bench-sim/1"}
    suite = {}
    for name in sorted(shards):
        shard = dict(shards[name])
        if name == "bench_sim_engine.py":
            shard.pop("results", None)  # hoisted to the top level
        suite[name] = shard
    merged["suite"] = suite
    return merged


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="shard benchmarks/bench_*.py across a process pool")
    parser.add_argument("--jobs", type=int,
                        default=min(os.cpu_count() or 2, 8),
                        help="concurrent shard processes (default: "
                             "min(cpus, 8))")
    parser.add_argument("--quick", action="store_true",
                        help="pass --quick to the script benches")
    parser.add_argument("--filter", default="bench_*.py", metavar="GLOB",
                        help="only run matching bench files")
    parser.add_argument("--timeout", type=float, default=1800.0,
                        help="per-shard timeout in seconds")
    parser.add_argument("-o", "--output", default=None,
                        help="merged JSON path (default: BENCH_sim.json "
                             "next to the repo root)")
    parser.add_argument("--trace-out", default=None, metavar="FILE.jsonl",
                        help="also write a pymao.trace/1 event log of "
                             "the shard runs")
    args = parser.parse_args(argv)

    output = args.output or os.path.join(_REPO_ROOT, "BENCH_sim.json")
    files = discover(args.filter)
    if not files:
        print("no bench files match %r" % args.filter, file=sys.stderr)
        return 2
    print("sharding %d bench files across %d processes"
          % (len(files), args.jobs))

    shards = {}
    start = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = {pool.submit(run_shard, f, args.quick, args.timeout): f
                   for f in files}
        for future in concurrent.futures.as_completed(futures):
            name = futures[future]
            shards[name] = future.result()
            print("  %-34s %-7s %7.2fs"
                  % (name, shards[name]["status"],
                     shards[name]["elapsed_s"]))
    wall = time.perf_counter() - start

    merged = merge(shards)
    merged["runner"] = {
        "jobs": args.jobs,
        "quick": args.quick,
        "shards": len(files),
        "wall_s": round(wall, 3),
    }
    with open(output, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    serial = sum(s["elapsed_s"] for s in shards.values())
    print("wrote %s  (wall %.1fs, serial-equivalent %.1fs, %.2fx)"
          % (output, wall, serial, serial / wall if wall else 0))

    if args.trace_out:
        write_runner_trace(args.trace_out, shards, wall,
                           args.jobs, args.quick)
        print("wrote %s" % args.trace_out)

    failed = sorted(n for n, s in shards.items() if s["status"] != "ok")
    if failed:
        print("FAILED shards: %s" % ", ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
