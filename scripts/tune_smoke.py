#!/usr/bin/env python3
"""CI smoke for `mao tune`: the full verb in a few seconds.

Runs the real CLI twice against one artifact cache directory:

1. a cold ``mao tune fig4_loop --json`` — the winner's predicted
   cycles must be <= the default ``REDTEST:LOOP16`` spec's (the default
   is always a seed candidate, so the tuner can never lose to it);
2. a warm re-tune of the same input — it must execute **zero** pass
   runs (every pipeline prefix replayed from the artifact store) and
   return the byte-identical document.

Run via ``make tune-smoke``.
"""

import json
import os
import subprocess
import sys
import tempfile

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import api  # noqa: E402
from repro.tune import DEFAULT_SPEC  # noqa: E402
from repro.workloads import kernels  # noqa: E402

KERNEL = "fig4_loop"
CORE = "core2"


def run_cli(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "tune", KERNEL,
         "--core", CORE, "--cache-dir", cache_dir, "--json"],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        print("FAIL: mao tune exited %d:\n%s" % (proc.returncode,
                                                 proc.stderr),
              file=sys.stderr)
        sys.exit(1)
    return json.loads(proc.stdout)


def main() -> int:
    source = getattr(kernels, KERNEL)()
    default = api.predict(api.optimize(source, DEFAULT_SPEC).unit,
                          CORE).cycles

    with tempfile.TemporaryDirectory(prefix="pymao-tune-smoke-") as work:
        cache_dir = os.path.join(work, "cache")
        cold = run_cli(cache_dir)
        assert cold["schema"] == "pymao.tune/1", cold["schema"]
        tuned = cold["winner"]["cycles"]
        if tuned > default + 1e-9:
            print("FAIL: tuned %.2f cycles worse than default %.2f"
                  % (tuned, default), file=sys.stderr)
            return 1
        print("cold tune: ok (winner %s %.2f <= default %.2f cycles, "
              "%d pass runs, stop=%s)"
              % (cold["winner"]["spec"] or "<none>", tuned, default,
                 cold["pass_runs"]["executed"],
                 cold["early_stop"]["reason"]))

        warm = run_cli(cache_dir)
        if warm["pass_runs"]["executed"] != 0:
            print("FAIL: warm re-tune executed %d pass runs, expected 0"
                  % warm["pass_runs"]["executed"], file=sys.stderr)
            return 1
        if warm["winner"] != cold["winner"]:
            print("FAIL: warm re-tune changed the winner", file=sys.stderr)
            return 1
        print("warm tune: ok (0 executions, %d prefixes replayed, "
              "identical winner)" % warm["pass_runs"]["cache_hits"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
