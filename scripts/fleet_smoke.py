#!/usr/bin/env python3
"""CI smoke for the sharded optimization fleet.

The full lifecycle in under a minute, against a real ``mao fleet``
subprocess (front door + 2 workers on ephemeral ports):

1. mixed requests through ``mao remote``-level clients (optimize,
   simulate, tune, healthz, metrics) — every optimize response must
   carry the worker's answer, an identical re-request must be a cache
   *hit* served by the same affinity routing, and a re-tune of the same
   input must land on the same worker and replay every pipeline prefix
   from the shared store with zero pass executions;
2. a **rolling restart** (``POST /admin/restart``) fired mid-stream
   while clients with a **zero retry budget** keep sending — the
   zero-dropped-admitted-requests contract means not one of them may
   see a failure;
3. after the restart, the replacement worker processes must serve the
   pre-restart artifacts as cache hits (cross-instance coherence over
   the shared store);
4. SIGTERM must drain the whole fleet to exit code 0.

Run via ``make fleet-smoke``.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.server.client import Client  # noqa: E402

SOURCE = """
.text
.globl f
.type f, @function
f:
    andl $255, %%eax
    mov %%eax, %%eax
    subl $16, %%r15d
    testl %%r15d, %%r15d
    ret
# variant %d
"""


def start_fleet(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "fleet", "--port", "0",
         "--workers", "2", "--worker-inflight", "1",
         "--cache-dir", cache_dir, "--test-delay-s", "0.05"],
        stdout=subprocess.PIPE, text=True, env=env)
    line = proc.stdout.readline().strip()
    if "listening on" not in line:
        raise RuntimeError("fleet did not start: %r" % line)
    address = line.split("listening on ", 1)[1].split()[0]
    print(line)
    return proc, int(address.rsplit(":", 1)[1])


def post_with_worker(port, path, body):
    """One POST via http.client so the X-Worker routing header is
    visible alongside the payload."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request("POST", path, body=json.dumps(body).encode(),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read().decode())
        assert response.status == 200, payload
        return response.getheader("X-Worker"), payload
    finally:
        conn.close()


def optimize_with_worker(port, body):
    return post_with_worker(port, "/v1/optimize", body)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="pymao-fleet-smoke-") as workdir:
        proc, port = start_fleet(os.path.join(workdir, "cache"))
        try:
            # -- 1. mixed requests, affinity, and a warm hit ------------
            body = {"source": SOURCE % 0, "spec": "REDZEE:REDTEST:REDMOV"}
            worker_a, first = optimize_with_worker(port, body)
            worker_b, second = optimize_with_worker(port, body)
            assert first["cache"] == "miss", first["cache"]
            assert second["cache"] == "hit", second["cache"]
            assert worker_a == worker_b, (worker_a, worker_b)
            assert "testl" not in second["asm"], "REDTEST did not run"
            print("optimize: ok (miss -> hit, affinity %s)" % worker_a)

            with Client(port=port, retries=3) as client:
                sim = client.simulate(workload="hash_bench", core="core2",
                                      max_steps=20_000)
                assert sim["cycles"] > 0, sim
                health = client.healthz()
                assert health["schema"] == "pymao.fleet/1", health
                assert health["status"] == "ok", health
                assert [w["member"] for w in health["workers"]] \
                    == ["w0", "w1"], health
                metrics = client.metrics()
                assert "fleet.forwarded" in metrics["values"], metrics
                assert "server.requests" in metrics["values"], metrics
            print("simulate + healthz + merged metrics: ok")

            # -- 1b. tune: input-digest routing + warm prefix replay ----
            tune_body = {"workload": "fig4_loop", "core": "core2"}
            tuner_a, cold = post_with_worker(port, "/v1/tune", tune_body)
            tuner_b, warm = post_with_worker(port, "/v1/tune", tune_body)
            assert tuner_a == tuner_b, (tuner_a, tuner_b)
            assert cold["tune"]["winner"]["cycles"] \
                <= cold["tune"]["leaderboard"][0]["cycles"], cold["tune"]
            assert warm["tune"]["pass_runs"]["executed"] == 0, \
                warm["tune"]["pass_runs"]
            assert warm["tune"]["winner"] == cold["tune"]["winner"], \
                "warm re-tune changed the winner"
            print("tune: ok (affinity %s, warm re-tune replayed %d "
                  "prefixes with 0 executions)"
                  % (tuner_a, warm["tune"]["pass_runs"]["cache_hits"]))

            # -- 2. rolling restart under load, zero retry budget -------
            failures = []
            served = []

            def stream(index):
                client = Client(port=port, retries=0, timeout=60)
                try:
                    for step in range(8):
                        result = client.optimize(
                            SOURCE % (100 + index * 10 + step),
                            "REDZEE:REDTEST")
                        served.append(result["cache"])
                except Exception as exc:
                    failures.append("client %d: %r" % (index, exc))
                finally:
                    client.close()

            threads = [threading.Thread(target=stream, args=(i,))
                       for i in range(3)]
            for thread in threads:
                thread.start()
            restart_conn = http.client.HTTPConnection("127.0.0.1", port,
                                                      timeout=120)
            restart_conn.request("POST", "/admin/restart", body=b"{}",
                                 headers={"Content-Type":
                                          "application/json"})
            restart_response = restart_conn.getresponse()
            report = json.loads(restart_response.read().decode())
            restart_conn.close()
            for thread in threads:
                thread.join(timeout=120)
            assert restart_response.status == 200, report
            assert [w["member"] for w in report["restarted"]] \
                == ["w0", "w1"], report
            if failures:
                print("FAIL: %d dropped admitted requests during the "
                      "rolling restart:" % len(failures), file=sys.stderr)
                for failure in failures:
                    print("  " + failure, file=sys.stderr)
                return 1
            assert len(served) == 24, served
            print("rolling restart mid-stream: ok (24/24 served, "
                  "0 dropped, restart took %.2fs)" % report["elapsed_s"])

            # -- 3. cross-instance coherence across generations ---------
            _worker, again = optimize_with_worker(port, body)
            assert again["cache"] == "hit", again["cache"]
            assert again["asm"] == second["asm"], "asm diverged across " \
                                                  "worker generations"
            print("cross-instance cache coherence: ok (hit on the "
                  "replacement worker)")
        finally:
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=120)
        if code != 0:
            print("FAIL: fleet drain exited %d, expected 0" % code,
                  file=sys.stderr)
            return 1
        print("graceful fleet drain: ok (exit 0)")
        return 0


if __name__ == "__main__":
    sys.exit(main())
