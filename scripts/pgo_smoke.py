#!/usr/bin/env python3
"""CI smoke for the profile-guided loop: sample -> store -> spec.

Exercises the whole PGO surface in a few seconds:

1. two real ``mao profile --ingest`` CLI runs land a heavy fig4_loop
   and a light eon_loop profile in one on-disk store;
2. ``api.optimize_many(profile_guided=True)`` classifies them hot /
   warm — the hot input rides a tune winner, the warm one the default
   spec — and a second run replays entirely from the epoch-salted
   artifact cache;
3. re-ingesting the hot input with a new weight bumps its profile
   epoch, invalidating exactly that input's cached artifacts (the warm
   input must still hit);
4. one ``POST /v1/profile`` ingest + lookup round-trip against an
   in-process server wired to the same store.

Run via ``make pgo-smoke``.
"""

import json
import os
import subprocess
import sys
import tempfile

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import api  # noqa: E402
from repro.batch.cache import ArtifactCache  # noqa: E402
from repro.pgo import PgoPolicy, ProfileStore, build_profile  # noqa: E402

HOT_KERNEL = "fig4_loop"
WARM_KERNEL = "eon_loop"
PERIOD = 97
SEED = 7


def run_profile_cli(kernel, weight, profile_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "profile", kernel,
         "--period", str(PERIOD), "--seed", str(SEED),
         "--weight", str(weight), "--ingest",
         "--profile-dir", profile_dir],
        capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        print("FAIL: mao profile exited %d:\n%s" % (proc.returncode,
                                                    proc.stderr),
              file=sys.stderr)
        sys.exit(1)
    document = json.loads(proc.stdout)
    assert document["schema"] == "pymao.profile/1", document["schema"]
    return document


def guided_run(sources, profile_dir, cache):
    # Default tune budget: warm re-tunes replay the identical winner
    # from the artifact store (bench_tune's gated claim), so the hot
    # input's group cache key is stable across guided runs.
    return api.optimize_many(
        sources, profile_guided=True, profile_dir=profile_dir,
        cache=cache, pgo_policy=PgoPolicy(hot_fraction=0.55))


def main() -> int:
    from repro.workloads import kernels

    hot_src = getattr(kernels, HOT_KERNEL)()
    warm_src = getattr(kernels, WARM_KERNEL)()
    sources = [(HOT_KERNEL, hot_src), (WARM_KERNEL, warm_src)]

    with tempfile.TemporaryDirectory(prefix="pymao-pgo-smoke-") as work:
        profile_dir = os.path.join(work, "profiles")
        cache = ArtifactCache(os.path.join(work, "cache"),
                              salt="pgo-smoke")

        run_profile_cli(HOT_KERNEL, 64.0, profile_dir)
        run_profile_cli(WARM_KERNEL, 9.0, profile_dir)
        print("ingest: ok (two profiles via `mao profile --ingest`)")

        first = guided_run(sources, profile_dir, cache)
        tiers = [item.pgo["tier"] for item in first]
        if tiers != ["hot", "warm"] or not all(i.ok for i in first):
            print("FAIL: expected [hot, warm] tiers, got %s" % tiers,
                  file=sys.stderr)
            return 1
        if first.items[1].pgo["spec"] != "REDTEST:LOOP16":
            print("FAIL: warm input not on the default spec: %r"
                  % first.items[1].pgo["spec"], file=sys.stderr)
            return 1
        print("guided: ok (hot=%s via %s, warm=default)"
              % (first.items[0].pgo["spec"] or "<passthrough>",
                 first.items[0].pgo["origin"]))

        second = guided_run(sources, profile_dir, cache)
        if [item.cache for item in second] != ["hit", "hit"]:
            print("FAIL: warm replay missed the epoch-salted cache: %s"
                  % [item.cache for item in second], file=sys.stderr)
            return 1
        print("replay: ok (both inputs hit the epoch-salted cache)")

        store = ProfileStore(profile_dir)
        store.ingest(build_profile(hot_src, period=PERIOD, seed=SEED,
                                   weight=96.0))
        third = guided_run(sources, profile_dir, cache)
        if [item.cache for item in third] != ["miss", "hit"]:
            print("FAIL: epoch bump did not invalidate exactly the "
                  "re-profiled input: %s" % [i.cache for i in third],
                  file=sys.stderr)
            return 1
        print("invalidate: ok (new epoch missed, untouched input hit)")

        from repro.server import Client, ServerConfig, ServerThread

        document = build_profile(warm_src, period=PERIOD, seed=SEED,
                                 weight=33.0)
        with ServerThread(ServerConfig(port=0, cache=False,
                                       profile_dir=profile_dir)) as server:
            with Client(port=server.port) as client:
                ingested = client.profile(document)
                fetched = client.profile(digest=document["digest"])
        if not fetched["found"] \
                or fetched["profile"]["weight"] != 33.0 \
                or ingested["profile"]["epoch"] \
                != fetched["profile"]["epoch"]:
            print("FAIL: /v1/profile round-trip mismatch: %s"
                  % fetched, file=sys.stderr)
            return 1
        print("serve: ok (/v1/profile ingest + lookup round-trip)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
