#!/usr/bin/env python3
"""Validate a ``pymao.trace/1`` JSONL event log against the schema.

Used by CI's trace-enabled smoke (``make trace-smoke``) and by the bench
runner's event logs: every line must be a JSON object carrying
``"schema": "pymao.trace/1"`` and a known ``type`` (``meta``, ``span``,
``metrics``); span events are checked recursively (name, non-negative
duration, JSON-object attrs, child spans); metrics values must be
numbers.  ``--require NAME`` additionally asserts that a span named NAME
exists somewhere in the (nested) span forest.

Usage::

    python scripts/validate_trace.py trace.jsonl \
        --require parse --require pass:REDTEST --require relax \
        --require simulate
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "pymao.trace/1"
EVENT_TYPES = ("meta", "span", "metrics")


def validate_span(event: dict, errors: list, where: str) -> None:
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append("%s: span has no name" % where)
        return
    here = "%s/%s" % (where, name)
    dur = event.get("dur_s")
    if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
            or dur < 0:
        errors.append("%s: bad dur_s %r" % (here, dur))
    start = event.get("start_s")
    if not isinstance(start, (int, float)) or isinstance(start, bool):
        errors.append("%s: bad start_s %r" % (here, start))
    attrs = event.get("attrs", {})
    if not isinstance(attrs, dict):
        errors.append("%s: attrs is not an object" % here)
    children = event.get("children", [])
    if not isinstance(children, list):
        errors.append("%s: children is not a list" % here)
        return
    for child in children:
        if not isinstance(child, dict) or child.get("type") != "span":
            errors.append("%s: child is not a span event" % here)
            continue
        validate_span(child, errors, here)


def span_names(event: dict) -> set:
    names = {event.get("name")}
    for child in event.get("children", ()) or ():
        names |= span_names(child)
    return names


def validate_events(events: list, required: list) -> list:
    """Return a list of problems (empty = valid)."""
    errors: list = []
    if not events:
        return ["empty trace"]
    if events[0].get("type") != "meta":
        errors.append("line 1: first event must be type 'meta'")
    seen_names: set = set()
    for lineno, event in enumerate(events, 1):
        where = "line %d" % lineno
        if not isinstance(event, dict):
            errors.append("%s: not a JSON object" % where)
            continue
        if event.get("schema") != SCHEMA:
            errors.append("%s: schema is %r, expected %r"
                          % (where, event.get("schema"), SCHEMA))
        kind = event.get("type")
        if kind not in EVENT_TYPES:
            errors.append("%s: unknown event type %r" % (where, kind))
        elif kind == "span":
            validate_span(event, errors, where)
            seen_names |= span_names(event)
        elif kind == "metrics":
            values = event.get("values")
            if not isinstance(values, dict):
                errors.append("%s: metrics event has no values object"
                              % where)
            else:
                for name, value in values.items():
                    if isinstance(value, bool) or not isinstance(
                            value, (int, float)):
                        errors.append("%s: metric %r is not a number"
                                      % (where, name))
    for name in required:
        if name not in seen_names:
            errors.append("required span %r not found (saw: %s)"
                          % (name, ", ".join(sorted(
                              n for n in seen_names if n)) or "none"))
    return errors


def read_events(path: str, errors: list = None) -> list:
    """Parse a JSONL trace; malformed lines append to ``errors``."""
    events = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                if errors is None:
                    raise
                errors.append("line %d: not JSON (%s)" % (lineno, exc))
    return events


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate a pymao.trace/1 JSONL event log")
    parser.add_argument("path", help="trace file (one JSON event per line)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="assert a span with this name exists "
                             "(repeatable)")
    parser.add_argument("--quiet", action="store_true",
                        help="print nothing on success")
    args = parser.parse_args(argv)

    errors = []
    events = read_events(args.path, errors)
    errors.extend(validate_events(events, args.require))

    if errors:
        for error in errors:
            print("INVALID: %s" % error, file=sys.stderr)
        return 1
    if not args.quiet:
        spans = sum(1 for e in events if e.get("type") == "span")
        metrics = [e for e in events if e.get("type") == "metrics"]
        values = sum(len(e.get("values", {})) for e in metrics)
        print("%s: valid %s trace (%d events, %d root spans, "
              "%d metric values)"
              % (args.path, SCHEMA, len(events), spans, values))
    return 0


if __name__ == "__main__":
    sys.exit(main())
