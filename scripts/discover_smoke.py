#!/usr/bin/env python3
"""CI smoke for `mao discover` + `mao profiles`: the full loop in seconds.

Runs the real CLI end to end:

1. ``mao discover --seed 5 --json -o prof.json`` — every drawn
   parameter of the hidden ``blinded_profile(5)`` must be recovered
   exactly and the cross-check battery must be cycle-exact;
2. the emitted ``pymao.uarch/1`` document is fed back through
   ``mao predict --core prof.json`` and must predict the same cycle
   count as the hidden model itself;
3. ``mao profiles list`` must include the data-only profiles
   (``skylake``, ``zen``) next to the legacy trio, and
   ``mao profiles show core2`` must emit a valid ``pymao.uarch/1`` doc;
4. a corrupt profile file must produce a one-line ``mao: ...`` error
   (exit 1, no traceback).

Run via ``make discover-smoke``.
"""

import json
import os
import subprocess
import sys
import tempfile

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import api  # noqa: E402
from repro.uarch import profiles, tables  # noqa: E402

SEED = 5


def run_cli(args, expect_rc=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run([sys.executable, "-m", "repro.cli"] + args,
                          capture_output=True, text=True, env=env)
    if proc.returncode != expect_rc:
        print("FAIL: mao %s exited %d (expected %d):\n%s"
              % (" ".join(args), proc.returncode, expect_rc, proc.stderr),
              file=sys.stderr)
        sys.exit(1)
    return proc


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="pymao-discover-smoke-") as work:
        prof_path = os.path.join(work, "discovered.json")
        proc = run_cli(["discover", "--seed", str(SEED), "--json",
                        "-o", prof_path])
        doc = json.loads(proc.stdout)
        assert doc["schema"] == "pymao.discover/1", doc["schema"]

        hidden = profiles.blinded_profile(SEED)
        discovered = tables.doc_to_model(doc["profile"])
        mismatches = []
        drawn = tables.drawn_paths(tables.load_ranges())
        for path in drawn:
            want = tables.param_value(hidden, path)
            got = tables.param_value(discovered, path)
            if got != want:
                mismatches.append((path, want, got))
        if mismatches:
            for path, want, got in mismatches:
                print("FAIL: %s hidden %r inferred %r" % (path, want, got),
                      file=sys.stderr)
            return 1
        cc = doc["crosscheck"]
        if cc["matched"] != cc["total"]:
            print("FAIL: crosscheck %s/%s" % (cc["matched"], cc["total"]),
                  file=sys.stderr)
            return 1
        print("discover: ok (seed %d, %d drawn parameters exact, "
              "crosscheck %d/%d)"
              % (SEED, len(drawn), cc["matched"], cc["total"]))

        # The emitted profile must behave identically to the hidden model.
        from repro.workloads import kernels
        asm = kernels.fig4_loop()
        unit = api.optimize(asm).unit
        want = api.predict(unit, hidden).cycles
        got = api.predict(unit, prof_path).cycles
        if want != got:
            print("FAIL: --core %s predicted %.2f, hidden model %.2f"
                  % (prof_path, got, want), file=sys.stderr)
            return 1
        print("profile round-trip: ok (--core file predicts %.2f cycles, "
              "identical to the hidden model)" % got)

        listing = run_cli(["profiles", "list"]).stdout
        for name in ("core2", "opteron", "pentium4", "skylake", "zen"):
            if name not in listing:
                print("FAIL: `mao profiles list` missing %r" % name,
                      file=sys.stderr)
                return 1
        shown = json.loads(run_cli(["profiles", "show", "core2"]).stdout)
        tables.validate_doc(shown, where="profiles show core2")
        print("profiles: ok (5 registry profiles listed, core2 doc valid)")

        corrupt = os.path.join(work, "corrupt.json")
        with open(corrupt, "w") as handle:
            handle.write('{"schema": "pymao.uarch/99"}\n')
        proc = run_cli(["predict",
                        os.path.join(_REPO_ROOT, "examples", "hot_loop.s"),
                        "--core", corrupt], expect_rc=1)
        if "Traceback" in proc.stderr or not proc.stderr.startswith("mao"):
            print("FAIL: corrupt profile did not produce a clean mao: "
                  "error:\n%s" % proc.stderr, file=sys.stderr)
            return 1
        print("corrupt profile: ok (clean one-line error, exit 1)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
