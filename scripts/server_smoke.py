#!/usr/bin/env python3
"""CI smoke for the optimization service: full lifecycle in seconds.

Starts a real ``mao serve`` subprocess on an ephemeral port, performs
one optimize round trip and one metrics scrape through
``repro.server.client``, then SIGTERMs it and requires a graceful-drain
exit code of 0.  Run via ``make server-smoke``.
"""

import os
import signal
import subprocess
import sys
import tempfile

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.server.client import Client  # noqa: E402

SOURCE = """
.text
.globl f
.type f, @function
f:
    andl $255, %eax
    mov %eax, %eax
    subl $16, %r15d
    testl %r15d, %r15d
    ret
"""


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    with tempfile.TemporaryDirectory(prefix="pymao-smoke-") as workdir:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--cache-dir", os.path.join(workdir, "cache")],
            stdout=subprocess.PIPE, text=True, env=env)
        try:
            line = proc.stdout.readline().strip()
            if "listening on" not in line:
                print("FAIL: server did not start: %r" % line,
                      file=sys.stderr)
                return 1
            port = int(line.rsplit(":", 1)[1])
            print(line)

            with Client(port=port, retries=3) as client:
                result = client.optimize(SOURCE,
                                         "REDZEE:REDTEST:REDMOV",
                                         request_id="smoke-1")
                assert result["schema"] == "pymao.server/1", result
                assert "testl" not in result["asm"], "REDTEST did not run"
                print("optimize: ok (cache=%s, %d bytes of asm)"
                      % (result["cache"], len(result["asm"])))

                metrics = client.metrics()
                assert metrics["type"] == "metrics", metrics
                assert "server.requests" in metrics["values"], \
                    "service counters missing from the registry snapshot"
                print("metrics: ok (%d series)" % len(metrics["values"]))
        finally:
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60)
        if code != 0:
            print("FAIL: drain exited %d, expected 0" % code,
                  file=sys.stderr)
            return 1
        print("graceful drain: ok (exit 0)")
        return 0


if __name__ == "__main__":
    sys.exit(main())
