#!/usr/bin/env python3
"""Render (and optionally gate on) the hot-path benchmark results.

Reads the ``BENCH_hotpath.json`` written by ``benchmarks/bench_hotpath.py``
and prints a human-readable report.  With ``--check`` it exits non-zero
when the fast path regresses: output not byte-identical, or the
repeated-relaxation speedup below ``--min-speedup`` (default 2.0) — CI
uses this to keep the perf trajectory honest.

Usage::

    python scripts/perf_report.py [BENCH_hotpath.json]
    python scripts/perf_report.py --check --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _row(label: str, value: str) -> None:
    print("  %-26s %s" % (label, value))


def render(results: dict) -> None:
    config = results.get("config", {})
    print("hot-path benchmark (%s)" % results.get("schema", "?"))
    _row("corpus scale", str(config.get("scale")))
    _row("relax repeats", str(config.get("repeats")))
    for key in ("relax_corpus", "relax_cascade"):
        section = results.get(key)
        if not section:
            continue
        print("%s:" % key)
        _row("baseline (reference, cold)", "%.4fs" % section["baseline_s"])
        _row("fast (incremental, warm)", "%.4fs" % section["fast_s"])
        _row("speedup", "%.2fx" % section["speedup"])
        _row("relax iterations", str(section["relax_iterations"]))
        _row("cache hit rate", "%.1f%%" % (100 * section["cache_hit_rate"]))
        _row("byte-identical", str(section["byte_identical"]))
    parallel = results.get("parallel_pipeline")
    if parallel:
        print("parallel_pipeline:")
        _row("spec", parallel["spec"])
        _row("jobs / backend", "%d / %s"
             % (parallel["jobs"], parallel["backend"]))
        _row("serial", "%.4fs" % parallel["serial_s"])
        _row("parallel", "%.4fs" % parallel["parallel_s"])
        _row("speedup vs serial", "%.2fx" % parallel["speedup"])
        _row("deterministic", str(parallel["deterministic"]))


def check(results: dict, min_speedup: float) -> int:
    failures = []
    for key in ("relax_corpus", "relax_cascade"):
        section = results.get(key)
        if not section:
            failures.append("missing section %r" % key)
            continue
        if not section["byte_identical"]:
            failures.append("%s: fast path output is NOT byte-identical"
                            % key)
    corpus = results.get("relax_corpus") or {}
    if corpus and corpus["speedup"] < min_speedup:
        failures.append("relax_corpus speedup %.2fx < required %.2fx"
                        % (corpus["speedup"], min_speedup))
    parallel = results.get("parallel_pipeline")
    if parallel and not parallel["deterministic"]:
        failures.append("parallel pipeline output diverged from serial")
    for failure in failures:
        print("CHECK FAILED: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="render/check BENCH_hotpath.json")
    parser.add_argument("path", nargs="?",
                        default=os.path.join(_REPO_ROOT,
                                             "BENCH_hotpath.json"))
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on regression")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required relax_corpus speedup (default 2.0)")
    args = parser.parse_args(argv)

    with open(args.path) as handle:
        results = json.load(handle)
    render(results)
    if args.check:
        return check(results, args.min_speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
