#!/usr/bin/env python3
"""Render (and optionally gate on) the perf benchmark results.

Understands the tracked benchmark files, dispatching on their ``schema``
field:

* ``BENCH_hotpath.json`` (``mao-bench-hotpath/1``) from
  ``benchmarks/bench_hotpath.py`` — encoding cache + incremental
  relaxation + parallel pass pipeline; its ``parallel_pipeline.pipeline``
  section is a versioned ``pymao.pipeline/1`` PipelineResult, rebuilt
  through ``PipelineResult.from_dict`` (no duck-typed dict poking);
* ``BENCH_sim.json`` (``mao-bench-sim/1``) from
  ``benchmarks/bench_sim_engine.py`` or ``scripts/bench_runner.py`` —
  block cache + streaming + loop fast-forward (plus, when produced by
  the runner, the sharded suite results);
* ``BENCH_batch.json`` (``mao-bench-batch/1``) from
  ``benchmarks/bench_batch.py`` — corpus batch engine: warm
  artifact-cache replay vs cold optimization (gated at >= 5x on full
  runs), 100% warm hit rate, byte-identical outputs, and jobs-1-vs-4
  determinism on both pool backends;
* ``BENCH_server.json`` (``mao-bench-server/1``) from
  ``benchmarks/bench_server.py`` — the asyncio optimization service
  under a closed-loop mixed workload: warm shared-cache throughput vs
  cold (gated at >= 3x on full runs), 100% warm hit rate,
  byte-identical responses, and a graceful SIGTERM drain;
* ``BENCH_fleet.json`` (``mao-bench-fleet/1``) from
  ``benchmarks/bench_server.py --fleet 1,2,4`` — the sharded fleet's
  capacity-scaling sweep: throughput at N workers vs 1 under a pinned
  per-request service floor (gated at >= 1.8x for 4 workers on full
  runs), zero errors, graceful drains at every width;
* ``BENCH_predict.json`` (``mao-bench-predict/1``) from
  ``benchmarks/bench_predict.py`` — the static throughput predictor
  cross-validated against trace simulation on every kernel x {core2,
  opteron}: per-config predicted-over-simulated ratios inside pinned
  bands, candidate-ranking agreement >= the pinned threshold, and
  prediction >= 100x faster than simulation;
* ``BENCH_tune.json`` (``mao-bench-tune/1``) from
  ``benchmarks/bench_tune.py`` — the pass-pipeline autotuner vs the
  hand-written default spec on the kernel corpus x {core2, opteron}:
  the tuned spec never predicted worse than ``REDTEST:LOOP16``,
  prefix-artifact caching + early stopping >= 3x fewer pass executions
  than exhaustive enumeration of the generated candidate set, and warm
  re-tunes replaying entirely from the shared store (zero executions,
  identical winner);
* ``BENCH_pgo.json`` (``mao-bench-pgo/1``) from
  ``benchmarks/bench_pgo.py`` — continuous profile-guided
  re-optimization on a Zipf-skewed request mix over the kernel corpus:
  the hot tier rides the tuner's winner while warm inputs take the
  default spec, so the request-weighted simulated-cycle total must
  strictly beat optimizing everything with the static default, at
  <= 1/3 of the pass executions a full autotune of the corpus costs.

Handlers self-register: decorating a class with
``@register("mao-bench-X/1")`` adds its ``render(results)`` /
``check(results, min_speedup)`` staticmethods to the dispatch table, so
a new benchmark schema plugs in with one class instead of another
if/elif arm.

``.jsonl`` paths are treated as ``pymao.trace/1`` event logs (the
``--trace-out`` / bench-runner format): validated with
``scripts/validate_trace.py`` and summarized.

With ``--check`` it exits non-zero when a fast path regresses: output
not identical to the reference, or the gated speedup below
``--min-speedup`` (default 2.0) — CI uses this to keep the perf
trajectory honest.  With no paths given, every tracked file that exists
is rendered/checked.

Usage::

    python scripts/perf_report.py [BENCH_hotpath.json BENCH_sim.json ...]
    python scripts/perf_report.py --check --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_FILES = ("BENCH_hotpath.json", "BENCH_sim.json",
                  "BENCH_batch.json", "BENCH_server.json",
                  "BENCH_fleet.json", "BENCH_predict.json",
                  "BENCH_tune.json", "BENCH_pgo.json",
                  "BENCH_discover.json")

if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import validate_trace  # noqa: E402  (sibling script)

#: Required warm-over-cold speedup on a full (non --quick) corpus run.
BATCH_FULL_MIN_SPEEDUP = 5.0

#: Required warm-over-cold throughput ratio on a full (non --quick) run.
SERVER_FULL_MIN_SPEEDUP = 3.0

#: Required 4-workers-over-1 throughput scaling on a full fleet sweep.
FLEET_FULL_MIN_SCALING = 1.8

#: Required prediction-over-simulation speedup — quick AND full runs:
#: the whole value proposition of the static model is the two orders of
#: magnitude, so the smoke gate is not relaxed.
PREDICT_MIN_SPEEDUP = 100.0

#: Required candidate-ranking agreement between the static model and
#: the trace simulator over the bench's optimization-candidate pairs.
PREDICT_MIN_AGREEMENT = 0.75


def _row(label: str, value: str) -> None:
    print("  %-26s %s" % (label, value))


def _load_pipeline(data: dict):
    """Rebuild a serialized PipelineResult; None if absent/invalid."""
    from repro.passes.manager import PipelineResult

    if not data:
        return None
    try:
        return PipelineResult.from_dict(data)
    except (ValueError, KeyError, TypeError):
        return None


# ---------------------------------------------------------------------------
# The schema registry.
# ---------------------------------------------------------------------------

#: schema string -> handler class (filled by :func:`register`).
_SCHEMAS: dict = {}


def register(schema: str):
    """Class decorator: route benchmark files with this ``schema`` field
    to the decorated class's ``render(results)`` and
    ``check(results, min_speedup)`` staticmethods."""
    def wrap(cls):
        cls.schema = schema
        _SCHEMAS[schema] = cls
        return cls
    return wrap


@register("mao-bench-hotpath/1")
class HotpathReport:
    """Encoding cache + incremental relaxation + parallel pipeline."""

    @staticmethod
    def render(results: dict) -> None:
        config = results.get("config", {})
        print("hot-path benchmark (%s)" % results.get("schema", "?"))
        _row("corpus scale", str(config.get("scale")))
        _row("relax repeats", str(config.get("repeats")))
        for key in ("relax_corpus", "relax_cascade"):
            section = results.get(key)
            if not section:
                continue
            print("%s:" % key)
            _row("baseline (reference, cold)",
                 "%.4fs" % section["baseline_s"])
            _row("fast (incremental, warm)", "%.4fs" % section["fast_s"])
            _row("speedup", "%.2fx" % section["speedup"])
            _row("relax iterations", str(section["relax_iterations"]))
            _row("cache hit rate",
                 "%.1f%%" % (100 * section["cache_hit_rate"]))
            _row("byte-identical", str(section["byte_identical"]))
        parallel = results.get("parallel_pipeline")
        if parallel:
            print("parallel_pipeline:")
            _row("spec", parallel["spec"])
            _row("jobs / backend", "%d / %s"
                 % (parallel["jobs"], parallel["backend"]))
            _row("serial", "%.4fs" % parallel["serial_s"])
            _row("parallel", "%.4fs" % parallel["parallel_s"])
            _row("speedup vs serial", "%.2fx" % parallel["speedup"])
            _row("deterministic", str(parallel["deterministic"]))
            pipeline = _load_pipeline(parallel.get("pipeline"))
            if pipeline is not None:
                for name in pipeline.pass_names():
                    totals = pipeline.stats_for(name)
                    summary = "  ".join("%s=%d" % (k, v)
                                        for k, v in sorted(totals.items()))
                    _row("pass %s" % name, summary or "(no stats)")

    @staticmethod
    def check(results: dict, min_speedup: float) -> list:
        failures = []
        for key in ("relax_corpus", "relax_cascade"):
            section = results.get(key)
            if not section:
                failures.append("missing section %r" % key)
                continue
            if not section["byte_identical"]:
                failures.append("%s: fast path output is NOT "
                                "byte-identical" % key)
        corpus = results.get("relax_corpus") or {}
        if corpus and corpus["speedup"] < min_speedup:
            failures.append("relax_corpus speedup %.2fx < required %.2fx"
                            % (corpus["speedup"], min_speedup))
        parallel = results.get("parallel_pipeline")
        if parallel:
            if not parallel["deterministic"]:
                failures.append("parallel pipeline output diverged from "
                                "serial")
            if "pipeline" in parallel \
                    and _load_pipeline(parallel["pipeline"]) is None:
                failures.append("parallel_pipeline.pipeline is not a valid "
                                "pymao.pipeline/1 document")
        return failures


@register("mao-bench-sim/1")
class SimReport:
    """Block cache + streaming + loop fast-forward (+ runner suite)."""

    @staticmethod
    def render(results: dict) -> None:
        config = results.get("config", {})
        print("simulation-engine benchmark (%s)"
              % results.get("schema", "?"))
        _row("steady-loop trip count", str(config.get("outer")))
        for key in ("sim_steady_loop", "sim_hash_kernel"):
            section = results.get(key)
            if not section:
                continue
            print("%s:" % key)
            _row("workload / model", "%s / %s"
                 % (section["workload"], section["model"]))
            _row("instructions", str(section["instructions"]))
            _row("baseline (interp + walk)", "%.4fs" % section["baseline_s"])
            _row("fast (blocks + stream + ff)", "%.4fs" % section["fast_s"])
            _row("speedup", "%.2fx" % section["speedup"])
            _row("block-cache hit rate",
                 "%.1f%%" % (100 * section["block_cache_hit_rate"]))
            _row("ff iterations / records", "%d / %d"
                 % (section["ff_iterations"], section["ff_records"]))
            _row("counter-identical", str(section["counter_identical"]))
        diff = results.get("differential")
        if diff:
            print("differential:")
            _row("kernel/model cases", str(diff["cases_checked"]))
            _row("counter-identical", str(diff["counter_identical"]))
            if diff.get("mismatches"):
                _row("mismatches", ", ".join(diff["mismatches"]))
        suite = results.get("suite")
        if suite:
            print("suite (%d shards):" % len(suite))
            for name in sorted(suite):
                shard = suite[name]
                _row(name, "%-7s %7.2fs"
                     % (shard["status"], shard["elapsed_s"]))

    @staticmethod
    def check(results: dict, min_speedup: float) -> list:
        failures = []
        steady = results.get("sim_steady_loop")
        if not steady:
            # A filtered runner merge legitimately omits the engine shard;
            # only a direct bench_sim_engine.py output must carry it.
            if "suite" not in results:
                failures.append("missing section 'sim_steady_loop'")
        else:
            if not steady["counter_identical"]:
                failures.append("sim_steady_loop: fast engine counters are "
                                "NOT identical to the reference walk")
            if steady["speedup"] < min_speedup:
                failures.append("sim_steady_loop speedup %.2fx < required "
                                "%.2fx" % (steady["speedup"], min_speedup))
        hashed = results.get("sim_hash_kernel")
        if hashed and not hashed["counter_identical"]:
            failures.append("sim_hash_kernel: fast engine counters are NOT "
                            "identical to the reference walk")
        diff = results.get("differential")
        if diff and not diff["counter_identical"]:
            failures.append("differential: mismatches on %s"
                            % ", ".join(diff.get("mismatches", ["?"])))
        for name, shard in sorted((results.get("suite") or {}).items()):
            if shard["status"] != "ok":
                failures.append("suite shard %s: %s"
                                % (name, shard["status"]))
        return failures


@register("mao-bench-batch/1")
class BatchReport:
    """Corpus batch engine: warm artifact-cache replay vs cold."""

    @staticmethod
    def render(results: dict) -> None:
        config = results.get("config", {})
        print("batch-engine benchmark (%s)" % results.get("schema", "?"))
        _row("corpus files", str(config.get("files")))
        _row("jobs / backend", "%s / %s"
             % (config.get("jobs"), config.get("parallel_backend")))
        _row("spec", str(config.get("spec")))
        for key in ("batch_cold", "batch_warm"):
            section = results.get(key)
            if not section:
                continue
            print("%s:" % key)
            _row("elapsed", "%.4fs" % section["elapsed_s"])
            _row("ok / errors", "%d / %d"
                 % (section["ok"], section["errors"]))
            _row("cache hits / misses", "%d / %d"
                 % (section["cache_hits"], section["cache_misses"]))
            _row("hit rate", "%.1f%%" % (100 * section["hit_rate"]))
        if results.get("speedup") is not None:
            _row("warm-over-cold speedup", "%.1fx" % results["speedup"])
        _row("byte-identical", str(results.get("byte_identical")))
        determinism = results.get("determinism")
        if determinism:
            _row("determinism (%s)"
                 % ", ".join(determinism.get("cases", ())),
                 str(determinism.get("identical")))

    @staticmethod
    def check(results: dict, min_speedup: float) -> list:
        failures = []
        warm = results.get("batch_warm")
        if not results.get("batch_cold") or not warm:
            failures.append("missing batch_cold/batch_warm section")
            return failures
        if warm["hit_rate"] != 1.0:
            failures.append("warm hit rate %.1f%% < 100%%"
                            % (100 * warm["hit_rate"]))
        if warm["errors"] or results["batch_cold"]["errors"]:
            failures.append("batch run reported per-file errors")
        if not results.get("byte_identical"):
            failures.append("warm batch output is NOT byte-identical to "
                            "cold")
        determinism = results.get("determinism") or {}
        if not determinism.get("identical"):
            failures.append("jobs=1 vs jobs=4 outputs/summaries diverged")
        # The 5x warm-replay claim is about a real corpus; --quick smoke
        # corpora only need the generic gate.
        required = min_speedup if results.get("config", {}).get("quick") \
            else max(min_speedup, BATCH_FULL_MIN_SPEEDUP)
        speedup = results.get("speedup")
        if speedup is None or speedup < required:
            failures.append("warm speedup %sx < required %.1fx"
                            % (speedup, required))
        return failures


@register("mao-bench-server/1")
class ServerReport:
    """The asyncio optimization service under a mixed workload."""

    @staticmethod
    def render(results: dict) -> None:
        config = results.get("config", {})
        print("optimization-service benchmark (%s)"
              % results.get("schema", "?"))
        _row("requests (opt + sim)", "%s (%s + %s)"
             % (config.get("requests"), config.get("optimize_requests"),
                config.get("simulate_requests")))
        _row("clients / max-inflight", "%s / %s"
             % (config.get("clients"), config.get("max_inflight")))
        _row("spec", str(config.get("spec")))
        for key in ("server_cold", "server_warm"):
            section = results.get(key)
            if not section:
                continue
            print("%s:" % key)
            _row("throughput", "%.2f req/s" % section["throughput_rps"])
            _row("latency p50 / p99", "%.1fms / %.1fms"
                 % (section["p50_ms"], section["p99_ms"]))
            _row("cache hits / misses", "%d / %d"
                 % (section["cache_hits"], section["cache_misses"]))
            _row("hit rate", "%.1f%%" % (100 * section["hit_rate"]))
            _row("errors", str(section["errors"]))
        if results.get("speedup") is not None:
            _row("warm-over-cold speedup", "%.1fx" % results["speedup"])
        _row("byte-identical", str(results.get("byte_identical")))
        _row("graceful exit", str(results.get("graceful_exit")))

    @staticmethod
    def check(results: dict, min_speedup: float) -> list:
        failures = []
        warm = results.get("server_warm")
        cold = results.get("server_cold")
        if not cold or not warm:
            failures.append("missing server_cold/server_warm section")
            return failures
        if warm["hit_rate"] != 1.0:
            failures.append("warm hit rate %.1f%% < 100%%"
                            % (100 * warm["hit_rate"]))
        if warm["errors"] or cold["errors"]:
            failures.append("load generator reported failed requests")
        if not results.get("byte_identical"):
            failures.append("warm responses NOT byte-identical to cold")
        if not results.get("graceful_exit"):
            failures.append("server did not drain to exit code 0 on "
                            "SIGTERM")
        # The 3x warm-replay claim is about the full 100-request
        # workload; --quick smoke runs only need the generic gate.
        required = min_speedup if results.get("config", {}).get("quick") \
            else max(min_speedup, SERVER_FULL_MIN_SPEEDUP)
        speedup = results.get("speedup")
        if speedup is None or speedup < required:
            failures.append("warm throughput speedup %sx < required %.1fx"
                            % (speedup, required))
        return failures


@register("mao-bench-fleet/1")
class FleetReport:
    """The sharded fleet's capacity-scaling sweep."""

    @staticmethod
    def render(results: dict) -> None:
        config = results.get("config", {})
        print("optimization-fleet benchmark (%s)"
              % results.get("schema", "?"))
        _row("requests / clients", "%s / %s"
             % (config.get("requests"), config.get("clients")))
        _row("per-worker inflight", str(config.get("per_worker_inflight")))
        _row("service floor", "%ss" % config.get("service_floor_s"))
        _row("host cpus", str(config.get("host_cpus")))
        for row in results.get("rounds", ()):
            _row("workers=%d" % row["workers"],
                 "%7.2f req/s  p50=%.0fms p99=%.0fms  errors=%d  "
                 "graceful=%s"
                 % (row["throughput_rps"], row["p50_ms"], row["p99_ms"],
                    row["errors"], row["graceful_exit"]))
        for label, value in sorted((results.get("scaling") or {}).items()):
            _row("scaling %s" % label, "%.2fx" % value)

    @staticmethod
    def check(results: dict, min_speedup: float) -> list:
        failures = []
        rounds = results.get("rounds") or []
        if not rounds:
            failures.append("missing fleet rounds")
            return failures
        for row in rounds:
            if row["errors"]:
                failures.append("workers=%d round reported %d failed "
                                "requests" % (row["workers"],
                                              row["errors"]))
            if not row["graceful_exit"]:
                failures.append("workers=%d fleet did not drain to exit "
                                "code 0 on SIGTERM" % row["workers"])
        # The capacity-scaling claim is pinned at 4 workers vs 1; a
        # sweep that measured that pair must clear the fleet gate
        # (--quick sweeps may legitimately stop at 2 workers).
        scaling = results.get("scaling_4v1")
        if not results.get("config", {}).get("quick"):
            if scaling is None:
                failures.append("full fleet sweep is missing the 4v1 "
                                "scaling measurement")
            elif scaling < FLEET_FULL_MIN_SCALING:
                failures.append("fleet scaling 4v1 %.2fx < required %.2fx"
                                % (scaling, FLEET_FULL_MIN_SCALING))
        elif scaling is not None and scaling < FLEET_FULL_MIN_SCALING:
            failures.append("fleet scaling 4v1 %.2fx < required %.2fx"
                            % (scaling, FLEET_FULL_MIN_SCALING))
        return failures


@register("mao-bench-predict/1")
class PredictReport:
    """Static throughput predictor vs trace simulation."""

    @staticmethod
    def render(results: dict) -> None:
        config = results.get("config", {})
        print("throughput-predictor benchmark (%s)"
              % results.get("schema", "?"))
        _row("cores", ", ".join(config.get("cores", ())))
        _row("configs x cores", str(len(results.get("kernels", ()))))
        print("cross-validation (predicted vs simulated cycles/iter):")
        for entry in results.get("kernels", ()):
            band = entry.get("band", (0, 0))
            note = " [%s]" % entry["diverges"] if entry.get("diverges") \
                else ""
            _row("%s/%s" % (entry["kernel"], entry["core"]),
                 "pred %6.2f sim %6.2f ratio %.2f in [%.2f, %.2f] %s%s"
                 % (entry["predicted_cycles"], entry["simulated_cycles"],
                    entry["ratio"], band[0], band[1],
                    "ok" if entry["within_band"] else "OUT", note))
        ranking = results.get("ranking", {})
        print("candidate ranking:")
        for pair in ranking.get("pairs", ()):
            _row("%s/%s" % (pair["kernel"], pair["core"]),
                 "sim says %-9s model says %-9s %s"
                 % (pair["simulated_winner"], pair["predicted_winner"],
                    "agree" if pair["agree"] else "DISAGREE"))
        if ranking.get("agreement") is not None:
            _row("ranking agreement", "%.2f (>= %.2f required)"
                 % (ranking["agreement"],
                    ranking.get("min_agreement", PREDICT_MIN_AGREEMENT)))
        timing = results.get("timing", {})
        if timing:
            _row("simulation total", "%.3fs (%d runs)"
                 % (timing["simulate_s"], timing["simulate_runs"]))
            _row("prediction total", "%.3fs (%d calls)"
                 % (timing["predict_s"], timing["predict_calls"]))
            _row("prediction speedup", "%.0fx" % timing["speedup"])

    @staticmethod
    def check(results: dict, min_speedup: float) -> list:
        failures = []
        kernels = results.get("kernels") or []
        if not kernels:
            failures.append("missing per-kernel cross-validation entries")
        for entry in kernels:
            if not entry.get("within_band"):
                failures.append(
                    "%s/%s: ratio %.2f outside pinned band [%.2f, %.2f]"
                    % (entry["kernel"], entry["core"], entry["ratio"],
                       entry["band"][0], entry["band"][1]))
        ranking = results.get("ranking") or {}
        agreement = ranking.get("agreement")
        min_agreement = ranking.get("min_agreement",
                                    PREDICT_MIN_AGREEMENT)
        if agreement is None:
            failures.append("missing ranking agreement")
        elif agreement < min_agreement:
            failures.append("ranking agreement %.2f < required %.2f"
                            % (agreement, min_agreement))
        # The >=100x claim IS the feature; quick runs are gated too.
        required = max(min_speedup, PREDICT_MIN_SPEEDUP)
        speedup = (results.get("timing") or {}).get("speedup")
        if speedup is None or speedup < required:
            failures.append("prediction speedup %sx < required %.0fx"
                            % (speedup, required))
        return failures


TUNE_MIN_EFFICIENCY = 3.0


@register("mao-bench-tune/1")
class TuneReport:
    """Pass-pipeline autotuner vs the hand-written default spec."""

    @staticmethod
    def render(results: dict) -> None:
        config = results.get("config", {})
        print("autotuner benchmark (%s)" % results.get("schema", "?"))
        _row("cores", ", ".join(config.get("cores", ())))
        _row("default spec", config.get("default_spec", "?"))
        print("tuned vs default (predicted cycles/iteration):")
        for entry in results.get("rows", ()):
            cold = entry.get("cold", {})
            warm = entry.get("warm", {})
            _row("%s/%s" % (entry["kernel"], entry["core"]),
                 "default %6.2f tuned %6.2f %-28s runs %d/%d warm %d "
                 "stop=%s %s"
                 % (entry["default_cycles"], entry["tuned_cycles"],
                    entry.get("winner_spec") or "<none>",
                    cold.get("executed", 0), cold.get("naive_steps", 0),
                    warm.get("executed", 0), entry.get("stop"),
                    "ok" if entry.get("never_worse") else "WORSE"))
        totals = results.get("totals", {})
        if totals:
            _row("pass executions", "%d for %d naive steps"
                 % (totals.get("executed", 0),
                    totals.get("naive_steps", 0)))
            _row("search efficiency", "%.2fx (>= %.1fx required)"
                 % (totals.get("efficiency", 0.0),
                    totals.get("min_efficiency", TUNE_MIN_EFFICIENCY)))
            _row("warm replay", "zero runs: %s, identical winners: %s"
                 % (totals.get("warm_zero_runs"),
                    totals.get("warm_winners_identical")))

    @staticmethod
    def check(results: dict, min_speedup: float) -> list:
        failures = []
        rows = results.get("rows") or []
        if not rows:
            failures.append("missing per-kernel tune rows")
        for entry in rows:
            if not entry.get("never_worse"):
                failures.append(
                    "%s/%s: tuned %.2f cycles worse than default %.2f"
                    % (entry["kernel"], entry["core"],
                       entry["tuned_cycles"], entry["default_cycles"]))
            if (entry.get("warm") or {}).get("executed", 1) != 0:
                failures.append(
                    "%s/%s: warm re-tune executed %d pass runs "
                    "(expected 0)"
                    % (entry["kernel"], entry["core"],
                       entry["warm"]["executed"]))
            if not entry.get("warm_winner_identical"):
                failures.append("%s/%s: warm re-tune changed the winner"
                                % (entry["kernel"], entry["core"]))
        totals = results.get("totals") or {}
        required = max(min_speedup,
                       totals.get("min_efficiency", TUNE_MIN_EFFICIENCY))
        efficiency = totals.get("efficiency")
        if efficiency is None or efficiency < required:
            failures.append("search efficiency %sx < required %.1fx"
                            % (efficiency, required))
        return failures


#: Required tune-all-over-PGO pass-execution factor: profile guidance
#: must spend at most 1/3 of what tuning every corpus input costs.
PGO_MIN_PASS_RUN_FACTOR = 3.0


@register("mao-bench-pgo/1")
class PgoReport:
    """Profile-guided re-optimization vs the static default spec."""

    @staticmethod
    def render(results: dict) -> None:
        config = results.get("config", {})
        print("profile-guided benchmark (%s)" % results.get("schema", "?"))
        _row("core", config.get("core", "?"))
        _row("default spec", config.get("default_spec", "?"))
        _row("hot fraction / tune budget", "%s / %s per input"
             % (config.get("hot_fraction"),
                config.get("tune_budget_per_input")))
        print("per input (simulated cycles, request-weighted mix):")
        for entry in results.get("rows", ()):
            _row("%s" % entry["kernel"],
                 "req %3d %-4s %-30s static %7d pgo %7d runs %d"
                 % (entry["requests"], entry.get("tier", "?"),
                    entry.get("spec") or "<passthrough>",
                    entry["static_cycles"], entry["pgo_cycles"],
                    entry.get("pgo_pass_runs", 0)))
        totals = results.get("totals", {})
        if totals:
            _row("weighted cycles", "static %d -> pgo %d (saved %d)"
                 % (totals.get("static_cycles", 0),
                    totals.get("pgo_cycles", 0),
                    totals.get("cycles_saved", 0)))
            _row("pass executions", "pgo %d vs tune-all %d "
                 "(<= 1/%.0f required)"
                 % (totals.get("pgo_pass_runs", 0),
                    totals.get("tune_all_pass_runs", 0),
                    totals.get("min_pass_run_factor",
                               PGO_MIN_PASS_RUN_FACTOR)))
            _row("hot inputs", str(totals.get("hot_inputs")))

    @staticmethod
    def check(results: dict, min_speedup: float) -> list:
        failures = []
        totals = results.get("totals") or {}
        if not results.get("rows"):
            failures.append("missing per-input pgo rows")
            return failures
        static = totals.get("static_cycles")
        pgo = totals.get("pgo_cycles")
        if static is None or pgo is None:
            failures.append("missing weighted cycle totals")
        elif not pgo < static:
            failures.append("pgo weighted cycles %s not strictly below "
                            "static default %s" % (pgo, static))
        factor = totals.get("min_pass_run_factor",
                            PGO_MIN_PASS_RUN_FACTOR)
        pgo_runs = totals.get("pgo_pass_runs")
        tune_all = totals.get("tune_all_pass_runs")
        if pgo_runs is None or tune_all is None:
            failures.append("missing pass-execution totals")
        elif pgo_runs * factor > tune_all:
            failures.append("pgo executed %s pass runs > 1/%.0f of the "
                            "%s a full autotune costs"
                            % (pgo_runs, factor, tune_all))
        if not totals.get("hot_inputs"):
            failures.append("no input classified hot — the mix exercises "
                            "nothing")
        return failures


@register("mao-bench-discover/1")
class DiscoverReport:
    """Discovery-harness exactness: inferred vs hidden blinded models."""

    @staticmethod
    def render(results: dict) -> None:
        config = results.get("config", {})
        print("discovery benchmark (%s)" % results.get("schema", "?"))
        _row("seeds", ", ".join(str(s) for s in config.get("seeds", ())))
        _row("parameters per seed", str(len(config.get("paths", ()))))
        for row in results.get("rows", ()):
            params = row.get("params", ())
            matched = sum(1 for p in params if p.get("match"))
            check = row.get("crosscheck", {})
            _row("seed %s" % row.get("seed"),
                 "%d/%d exact, crosscheck %s/%s, %.1fs"
                 % (matched, len(params), check.get("matched"),
                    check.get("total"), row.get("wall_s", 0.0)))
            for p in params:
                if not p.get("match"):
                    _row("  MISMATCH %s" % p.get("path"),
                         "hidden %r inferred %r"
                         % (p.get("hidden"), p.get("inferred")))
        determinism = results.get("determinism")
        if determinism:
            _row("jobs determinism",
                 "seed %s jobs %s: %s"
                 % (determinism.get("seed"), determinism.get("jobs"),
                    "byte-identical" if determinism.get("byte_identical")
                    else "DIFFERS"))

    @staticmethod
    def check(results: dict, min_speedup: float) -> list:
        failures = []
        rows = results.get("rows") or []
        seeds = {row.get("seed") for row in rows}
        if len(seeds) < 2:
            failures.append("needs >= 2 distinct blinded seeds, got %d"
                            % len(seeds))
        for row in rows:
            params = row.get("params") or []
            if not params:
                failures.append("seed %s carries no parameter rows"
                                % row.get("seed"))
                continue
            for p in params:
                if not p.get("match"):
                    failures.append(
                        "seed %s: %s inferred %r != hidden %r"
                        % (row.get("seed"), p.get("path"),
                           p.get("inferred"), p.get("hidden")))
            check = row.get("crosscheck") or {}
            if check.get("matched") != check.get("total"):
                failures.append("seed %s: crosscheck %s/%s not cycle-exact"
                                % (row.get("seed"), check.get("matched"),
                                   check.get("total")))
        determinism = results.get("determinism")
        if determinism is not None and not determinism.get("byte_identical"):
            failures.append("discovery output differs across jobs counts")
        return failures


# ---------------------------------------------------------------------------
# pymao.trace/1 event logs (.jsonl)
# ---------------------------------------------------------------------------

def _span_count(span: dict) -> int:
    return 1 + sum(_span_count(c) for c in span.get("children", ()))


def render_trace(path: str, events: list) -> None:
    spans = [e for e in events if e.get("type") == "span"]
    metrics = [e for e in events if e.get("type") == "metrics"]
    print("trace event log (%s)" % validate_trace.SCHEMA)
    _row("file", os.path.basename(path))
    _row("events", str(len(events)))
    _row("root spans", str(len(spans)))
    _row("total spans", str(sum(_span_count(s) for s in spans)))
    for span in spans:
        _row("span %s" % span["name"], "%.4fs" % span["dur_s"])
    for event in metrics:
        values = event.get("values", {})
        _row("metrics series", str(len(values)))


def check_trace(events: list) -> list:
    errors = validate_trace.validate_events(events, [])
    if errors:
        return errors
    if not any(e.get("type") == "span" for e in events):
        return ["trace log carries no spans"]
    return []


# ---------------------------------------------------------------------------
# Dispatch.
# ---------------------------------------------------------------------------

def process(path: str, do_check: bool, min_speedup: float) -> list:
    if path.endswith(".jsonl"):
        parse_errors: list = []
        events = validate_trace.read_events(path, parse_errors)
        render_trace(path, events)
        if not do_check:
            return []
        return ["%s: %s" % (os.path.basename(path), f)
                for f in parse_errors + check_trace(events)]
    with open(path) as handle:
        results = json.load(handle)
    schema = results.get("schema")
    handler = _SCHEMAS.get(schema)
    if handler is None:
        return ["%s: unknown schema %r (known: %s)"
                % (path, schema, ", ".join(sorted(_SCHEMAS)))]
    handler.render(results)
    if not do_check:
        return []
    return ["%s: %s" % (os.path.basename(path), f)
            for f in handler.check(results, min_speedup)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="render/check the tracked BENCH_*.json results")
    parser.add_argument("paths", nargs="*",
                        help="benchmark JSON files (default: every "
                             "tracked BENCH_*.json that exists)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on regression")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required gated speedup (default 2.0)")
    args = parser.parse_args(argv)

    paths = args.paths or [
        os.path.join(_REPO_ROOT, name) for name in _DEFAULT_FILES
        if os.path.exists(os.path.join(_REPO_ROOT, name))]
    if not paths:
        print("no benchmark files found", file=sys.stderr)
        return 2

    failures = []
    for i, path in enumerate(paths):
        if i:
            print()
        failures.extend(process(path, args.check, args.min_speedup))
    for failure in failures:
        print("CHECK FAILED: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
