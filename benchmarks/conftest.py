"""Bench fixtures and reporting hooks (table helpers in _bench_util)."""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (sims are deterministic
    and expensive; repetition adds nothing)."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)
    runner.benchmark = benchmark
    return runner


def pytest_terminal_summary(terminalreporter):
    """Emit every reproduction table past pytest's capture, so a plain
    `pytest benchmarks/ --benchmark-only | tee bench_output.txt` records
    the paper-vs-measured rows."""
    import _bench_util

    if not _bench_util.COLLECTED_TABLES:
        return
    terminalreporter.section("paper reproduction tables")
    for table in _bench_util.COLLECTED_TABLES:
        terminalreporter.write_line(table)
