"""§III.E.m: forward/backward instruction simulation from PMU samples.

"Using this technique, for the benchmarks presented in this paper, the
number of sampled effective addresses could be increased by factors
ranging from 4.1 to 6.3."
"""

from _bench_util import report

from repro.ir import parse_unit
from repro.passes.address_sim import recover_addresses
from repro.profiling import collect_samples
from repro.workloads import kernels
from repro.workloads.spec import build_benchmark

PAPER_RANGE = (4.1, 6.3)

PROGRAMS = {
    "mcf-fig1": lambda: kernels.mcf_fig1(False, outer=40),
    "eon-loop": lambda: kernels.eon_loop(outer=120),
    "spec/454.calculix": lambda: build_benchmark("454.calculix").source,
}


def test_address_recovery_factors(once):
    def run():
        results = {}
        for name, build in PROGRAMS.items():
            unit = parse_unit(build())
            samples = collect_samples(unit, period=23,
                                      max_steps=2_000_000)
            sampled_addresses = 0
            recovered_total = 0
            for entry, snapshot in samples.samples:
                recovered = recover_addresses(entry, snapshot,
                                              samples.program.symtab)
                direct = sum(1 for r in recovered
                             if r.direction == "sample")
                extra = sum(1 for r in recovered
                            if r.direction != "sample")
                sampled_addresses += direct
                recovered_total += direct + extra
            if sampled_addresses:
                results[name] = recovered_total / sampled_addresses
        return results

    factors = once(run)
    rows = [(name, "%.1fx" % factor) for name, factor in factors.items()]
    report("§III.E.m — effective addresses recovered per sampled address",
           ["program", "factor"], rows,
           extra="paper: factors ranging from %.1fx to %.1fx"
           % PAPER_RANGE)
    for name, factor in factors.items():
        once.benchmark.extra_info[name] = factor
        assert factor > 1.5, \
            "%s: simulation must multiply the sample yield" % name
    assert max(factors.values()) >= 3.0


PAPER_EXAMPLE = """
.text
.globl main
main:
    push %rbp
    mov %rsp, %rbp
    subq $64, %rsp
    leaq buf(%rip), %rax
    movq $300, %rcx
.Lloop:
    movl -8(%rbp), %edx
    movl %edx, (%rax)
    addl $1, -4(%rbp)
    addq $4, %rax
    subq $1, %rcx
    jne .Lloop
    leave
    ret
.section .bss
buf:
    .zero 4096
"""


def test_forward_and_backward_both_contribute(once):
    """The paper's IP1/IP2/IP3 example: a sample on the first mov lets
    forward simulation compute IP2's address; a sample on the addl lets
    backward simulation recover it too."""
    def run():
        unit = parse_unit(PAPER_EXAMPLE)
        samples = collect_samples(unit, period=7)
        directions = {"sample": 0, "forward": 0, "backward": 0}
        for entry, snapshot in samples.samples:
            for rec in recover_addresses(entry, snapshot,
                                         samples.program.symtab):
                directions[rec.direction] += 1
        return directions

    directions = once(run)
    report("§III.E.m — recovery by direction (the paper's IP1/IP2/IP3 "
           "shape)",
           ["direction", "addresses"],
           sorted(directions.items()))
    assert directions["sample"] > 0
    assert directions["forward"] > 0
    assert directions["backward"] > 0
