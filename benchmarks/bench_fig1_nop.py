"""Figure 1: a single NOP speeds up the 181.mcf unrolled loop by ~5%.

"Merely inserting the nop instruction right before label .L5 results in a
5% performance speed-up for this loop on a common Intel Core-2 platform."
"""

from _bench_util import measure, pct, report

from repro.uarch.profiles import core2
from repro.workloads import kernels

PAPER_SPEEDUP = 0.05


def test_fig1_single_nop(once):
    def run():
        pad = kernels.find_fig1_pad()
        base = measure(kernels.mcf_fig1(False, pad=pad), core2())
        with_nop = measure(kernels.mcf_fig1(True, pad=pad), core2())
        return pad, base, with_nop

    pad, base, with_nop = once(run)
    speedup = base.cycles / with_nop.cycles - 1.0
    report(
        "Fig. 1 — high-impact NOP in the mcf loop (Core-2)",
        ["variant", "cycles", "BR_MISP", "DECODE_LINES"],
        [
            ("without nop", base.cycles, base["BR_MISP"],
             base["DECODE_LINES"]),
            ("nop before .L5", with_nop.cycles, with_nop["BR_MISP"],
             with_nop["DECODE_LINES"]),
        ],
        extra="speedup from one NOP: %s  (paper: %s at placement pad=%d)"
        % (pct(speedup), pct(PAPER_SPEEDUP), pad))
    once.benchmark.extra_info["speedup"] = speedup
    once.benchmark.extra_info["paper"] = PAPER_SPEEDUP
    assert speedup > 0.02, "the single-NOP cliff must reproduce"
