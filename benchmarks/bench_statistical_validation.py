"""§V.B: statistical validation of a pass's effect.

"we ran the SPEC benchmarks more often than the three suggested times and
performed statistical valuation, ensuring that the results were
statistically significant."

The deterministic-simulator analogue: measure the baseline and the
optimized program across a distribution of Nopinizer layout perturbations
and run Welch's t-test on the two cycle distributions.
"""

from _bench_util import report

from repro.stats import layout_distribution, significant_speedup
from repro.uarch.profiles import core2
from repro.workloads import kernels


def test_sched_gain_is_statistically_significant(once):
    def run():
        source = kernels.hash_bench(False, trip=1200)
        base = layout_distribution(source, core2(), seeds=range(8),
                                   density=0.06)
        optimized = layout_distribution(source, core2(), spec="SCHED",
                                        seeds=range(8), density=0.06)
        return significant_speedup(base, optimized)

    result = once(run)
    report("§V.B — statistical valuation of SCHED on the hashing kernel",
           ["distribution", "cycles (mean ± CI)"],
           [("baseline (8 layouts)", str(result.baseline)),
            ("after SCHED (8 layouts)", str(result.variant))],
           extra=str(result))
    once.benchmark.extra_info["p_value"] = result.p_value
    assert result.significant, \
        "the SCHED gain must clear layout noise"
    assert result.speedup > 0.05


def test_null_transformation_is_not_significant(once):
    """A pass that does nothing must not appear significant — the
    methodology's sanity check against false positives."""
    def run():
        source = kernels.hash_bench(False, trip=1200)
        base = layout_distribution(source, core2(), seeds=range(8),
                                   density=0.06)
        # REDTEST finds nothing to remove in this kernel.
        same = layout_distribution(source, core2(), spec="REDTEST",
                                   seeds=range(8), density=0.06)
        return significant_speedup(base, same)

    result = once(run)
    report("§V.B — null-effect control (REDTEST on a test-free kernel)",
           ["distribution", "cycles (mean ± CI)"],
           [("baseline", str(result.baseline)),
            ("after no-op pass", str(result.variant))],
           extra=str(result))
    assert not result.significant
