"""§V.B, SPEC 2006 fp table: the Opteron "unknown LSD-like" effect.

    Benchmark      REDMOV    REDTEST   NOPKILL
    447.dealII     +2.78%    +3.21%    -0.12%
    454.calculix   +20.12%   +20.58%   -8.81%

"Since both passes only remove instructions, we suspect that another
second order effect takes hold, such as the loop stream detector.
However, we are not aware of a published LSD-like structure on AMD
platforms, therefore this result points to yet another unknown
micro-architectural effect."
"""

from _bench_util import delta_for_pass, measure, pct, report

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.uarch.profiles import opteron
from repro.workloads.spec import build_benchmark

PAPER = {
    "447.dealII": {"REDMOV": 2.78, "REDTEST": 3.21, "NOPKILL": -0.12},
    "454.calculix": {"REDMOV": 20.12, "REDTEST": 20.58, "NOPKILL": -8.81},
}


def test_calculix_dealii_table(once):
    def run():
        results = {}
        for name in PAPER:
            program = build_benchmark(name)
            results[name] = {
                spec: delta_for_pass(program, spec, opteron())
                for spec in ("REDMOV", "REDTEST", "NOPKILL")}
        return results

    measured = once(run)
    rows = []
    for name in PAPER:
        for spec in ("REDMOV", "REDTEST", "NOPKILL"):
            rows.append((name, spec, pct(measured[name][spec]),
                         "%+.2f%%" % PAPER[name][spec]))
    report("§V.B — REDMOV/REDTEST/NOPKILL on AMD Opteron (SPEC 2006 fp)",
           ["benchmark", "pass", "measured", "paper"], rows)

    calculix = measured["454.calculix"]
    dealii = measured["447.dealII"]
    assert calculix["REDMOV"] > 0.10, "large instruction-removal win"
    assert calculix["REDTEST"] > 0.10
    assert calculix["NOPKILL"] < -0.03, "alignment removal must hurt"
    assert 0 < dealii["REDMOV"] < calculix["REDMOV"], \
        "dealII shows the same effect, smaller"
    assert abs(dealii["NOPKILL"]) < 0.01
    for name, values in measured.items():
        for spec, value in values.items():
            once.benchmark.extra_info["%s/%s" % (name, spec)] = value


def test_effect_is_loop_streaming(once):
    """Confirm the mechanism: the pass tips the hot loop into the
    single-window loop buffer (LSD_UOPS goes from zero to nonzero)."""
    def run():
        program = build_benchmark("454.calculix")
        base = measure(program.unit(), opteron(),
                       max_steps=program.max_steps)
        unit = program.unit()
        run_passes(unit, "REDMOV")
        opt = measure(unit, opteron(), max_steps=program.max_steps)
        return base, opt

    base, opt = once(run)
    report("§V.B — mechanism check: calculix loop streaming (Opteron)",
           ["variant", "cycles", "LSD_UOPS"],
           [("base", base.cycles, base["LSD_UOPS"]),
            ("after REDMOV", opt.cycles, opt["LSD_UOPS"])],
           extra="the \"unknown micro-architectural effect\" is the loop "
                 "buffer engaging once the body fits one fetch window")
    # The dilution loop streams in both runs; the jump comes from the hot
    # loop joining it once REDMOV shrinks the body under 32 bytes.
    assert opt["LSD_UOPS"] > base["LSD_UOPS"] * 3
