"""§III.B: static pattern counts on the "Google core library" corpus.

Paper numbers (full-scale library):
  * ~1000 redundant zero-extensions; the MAO prototype catches >90% of the
    opportunities the compiler implementation handled;
  * 79763 test instructions, 19272 (24%) redundant;
  * 13362 redundant memory-access pairs.

The corpus generator synthesizes the same populations at a configurable
scale (0.1 here); counts scale linearly and the ratios are scale-free.
"""

from _bench_util import report

from repro.passes import run_passes
from repro.workloads.corpus import (
    CorpusConfig,
    PAPER_REDMOV,
    PAPER_TESTS_REDUNDANT,
    PAPER_TESTS_TOTAL,
    PAPER_ZEXT,
    generate_corpus,
)

SCALE = 0.1


def test_pattern_counts(once):
    def run():
        unit = generate_corpus(CorpusConfig(seed=0, scale=SCALE))
        result = run_passes(
            unit, "REDZEE=count_only[1]:REDTEST=count_only[1]"
                  ":REDMOV=count_only[1]:ADDADD=count_only[1]")
        return unit, result

    unit, result = once(run)
    zee_candidates = result.total("REDZEE", "candidates")
    zee_removed = result.total("REDZEE", "removed")
    tests_total = result.total("REDTEST", "tests")
    tests_removed = result.total("REDTEST", "removed")
    movs = result.total("REDMOV", "rewritten")
    folds = result.total("ADDADD", "folded")

    rows = [
        ("zero-extensions found", zee_removed,
         round(PAPER_ZEXT * SCALE), "~%d" % PAPER_ZEXT),
        ("zext catch rate", "%.0f%%" % (100 * zee_removed
                                        / max(zee_candidates, 1)),
         ">90%", ">90% (vs compiler impl.)"),
        ("test instructions", tests_total,
         round(PAPER_TESTS_TOTAL * SCALE), PAPER_TESTS_TOTAL),
        ("redundant tests", tests_removed,
         round(PAPER_TESTS_REDUNDANT * SCALE), PAPER_TESTS_REDUNDANT),
        ("redundant-test ratio",
         "%.0f%%" % (100 * tests_removed / max(tests_total, 1)),
         "24%", "24%"),
        ("redundant load pairs", movs,
         round(PAPER_REDMOV * SCALE), PAPER_REDMOV),
        ("add/add folds", folds, "-", "\"a plethora\""),
    ]
    report("§III.B — pattern populations at corpus scale %.2f" % SCALE,
           ["pattern", "measured", "expected @scale", "paper @1.0"],
           rows,
           extra="corpus: %d instructions across %d functions"
           % (unit.instruction_count(), len(unit.functions)))

    once.benchmark.extra_info["tests_ratio"] = tests_removed / tests_total
    assert abs(tests_removed / tests_total
               - PAPER_TESTS_REDUNDANT / PAPER_TESTS_TOTAL) < 0.04
    assert zee_removed / zee_candidates >= 0.90
    assert abs(movs - PAPER_REDMOV * SCALE) / (PAPER_REDMOV * SCALE) < 0.1
