"""§III.E.k: inverse prefetching.

"On Intel Core-2 platforms, a load instruction can be turned into a
non-temporal load by inserting a prefetch.nta instruction to the same
address before it ... We used a novel memory reuse distance profiler to
identify loads with little reuse ... Results of this technique are
promising."
"""

from _bench_util import measure, pct, report

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.passes.prefetch_nta import register_profile
from repro.profiling import reuse_distance_profile
from repro.sim import run_unit
from repro.uarch.profiles import core2

def _pollution_kernel() -> str:
    """Hot pointer-chase (latency-bound) + cold full-line stream.

    The hot working set is a 128-line linked ring shuffled into a random
    permutation (a sequential ring would be hidden by the next-line
    prefetcher): every eviction costs a full memory round trip on the
    critical path.  The stream sweeps 512 fresh lines per outer
    iteration; without NTA hints those fills evict the ring."""
    import random

    rng = random.Random(42)
    perm = list(range(128))
    rng.shuffle(perm)
    successor = {perm[i]: perm[(i + 1) % 128] for i in range(128)}
    chain = "\n".join("    .quad hot+%d\n    .zero 56"
                      % (successor[i] * 64) for i in range(128))
    return f"""
.text
.globl main
main:
    push %rbx
    leaq stream(%rip), %rsi
    movq $60, %rbx
    xorq %r9, %r9
.Louter:
    leaq hot(%rip), %rdi
    movq $128, %rax
.Lhot:
    movq (%rdi), %rdi
    subq $1, %rax
    jne .Lhot
    movq $512, %rcx
.Lstream:
    movq (%rsi,%r9,8), %rdx
    addq %rdx, %r11
    addq $8, %r9
    andq $0x3fff, %r9
    subq $1, %rcx
    jne .Lstream
    subq $1, %rbx
    jne .Louter
    pop %rbx
    ret
.section .data
.align 64
hot:
{chain}
.section .bss
.align 64
stream:
    .zero 131072
"""


POLLUTION_KERNEL = _pollution_kernel()


def test_inverse_prefetching(once):
    def run():
        # Profile reuse distances, feed the profile to the pass, measure.
        unit = parse_unit(POLLUTION_KERNEL)
        trace_run = run_unit(unit, collect_trace=True,
                             max_steps=4_000_000)
        profile = reuse_distance_profile(trace_run.trace)
        register_profile("bench-nta", profile)

        base = measure(POLLUTION_KERNEL, core2(), max_steps=4_000_000)
        optimized_unit = parse_unit(POLLUTION_KERNEL)
        result = run_passes(
            optimized_unit, "PREFNTA=profile[bench-nta]+threshold[512]")
        optimized = measure(optimized_unit, core2(),
                            max_steps=4_000_000)
        return base, optimized, result, profile

    base, optimized, result, profile = once(run)
    speedup = base.cycles / optimized.cycles - 1.0
    report("§III.E.k — inverse prefetching via reuse-distance profile "
           "(Core-2)",
           ["variant", "cycles", "L1D misses"],
           [("base", base.cycles, base["L1D_MISSES"]),
            ("prefetchnta on streaming loads", optimized.cycles,
             optimized["L1D_MISSES"])],
           extra="loads marked non-temporal: %d; speedup %s (paper: "
                 "\"promising\").  NTA trades cheap compulsory stream "
                 "misses for eliminating the expensive hot-set evictions"
           % (result.total("PREFNTA", "loads_marked"), pct(speedup)))
    once.benchmark.extra_info["speedup"] = speedup
    assert result.total("PREFNTA", "loads_marked") >= 1
    assert speedup > 0.2, "removing pollution must pay"
