#!/usr/bin/env python3
"""Static-predictor cross-validation harness: the analytical throughput
model vs the trace simulator on every anecdote kernel x {core2, opteron}.

Three claims, one tracked file:

* **Accuracy** — for each kernel configuration the predicted
  cycles-per-iteration is compared against the simulator's *steady
  state* (two runs at different outer counts; delta-cycles over
  delta-iterations, which cancels startup and warmup).  Each
  configuration carries a pinned ``[lo, hi]`` band for the
  predicted/simulated ratio; drifting outside the band fails the gate.
  The bands encode the model's documented divergences: the
  branch-prediction-dominated nest (``nested_short_loops``) sits far
  below 1.0 by design — a static model cannot see §III.C.g aliasing —
  and short-trip loops amortize exit mispredicts the model does not
  charge for.
* **Ranking** — for each optimization-candidate pair (the kernels'
  built-in before/after variants mirroring the LOOP16, LSD-fit, and
  SCHED transforms) the model must agree with the simulator on which
  candidate wins, with agreement >= the pinned threshold.  Candidates
  compare by :meth:`Prediction.ranking_score` — headline cycles first,
  the LSD-engaged rate as the tiebreak.
* **Speed** — total prediction wall time must be >= 100x cheaper than
  the simulation wall time it replaces, quick runs included: the two
  orders of magnitude are the reason the predictor exists.

Results land in ``BENCH_predict.json`` (schema ``mao-bench-predict/1``),
rendered and gated by ``scripts/perf_report.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_predict.py          # full run
    PYTHONPATH=src python benchmarks/bench_predict.py --quick  # CI smoke
    python scripts/perf_report.py BENCH_predict.json           # pretty-print
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import api  # noqa: E402
from repro.uarch.static_model import PREDICT_BENCH_SCHEMA  # noqa: E402
from repro.workloads import kernels  # noqa: E402

CORES = ("core2", "opteron")

#: Pinned ranking-agreement floor.  One known miss is priced in: on
#: opteron (32-byte decode lines, lsd_max_lines=1) the fig4 body is
#: never LSD-streamable, so the model ties the shifted/unshifted
#: variants that the simulator separates by one fetch line.
MIN_AGREEMENT = 0.75

#: Kernel configurations.  ``factory(outer)`` builds the source at an
#: outer scale; ``iters(outer)`` is how many times the measured loop
#: body executes at that scale; ``(lo, hi)`` are the two scales the
#: steady state is measured between; ``band`` is the pinned
#: predicted/simulated ratio window (both cores); ``diverges`` names a
#: documented model blind spot priced into the band.
CONFIGS = [
    {
        "name": "eon_loop",
        "factory": lambda outer: kernels.eon_loop(pre_bytes=9, outer=outer),
        "loop": ".Lloop",
        "iters": lambda outer: 8 * outer,
        "scales": (300, 900),
        "quick_scales": (150, 450),
        "band": (0.25, 0.80),
        "diverges": "short-trip exit mispredicts",
    },
    {
        "name": "eon_loop+align",
        "factory": lambda outer: kernels.eon_loop(pre_bytes=9, outer=outer,
                                                  aligned=True),
        "loop": ".Lloop",
        "iters": lambda outer: 8 * outer,
        "scales": (300, 900),
        "quick_scales": (150, 450),
        "band": (0.15, 0.70),
        "diverges": "short-trip exit mispredicts",
    },
    {
        "name": "fig4_loop",
        "factory": lambda outer: kernels.fig4_loop(iterations=outer),
        "loop": ".Ll0",
        "iters": lambda outer: outer,
        "scales": (1200, 3600),
        "quick_scales": (600, 1800),
        "band": (0.55, 1.10),
        "diverges": None,
    },
    {
        "name": "fig4_loop+shift",
        "factory": lambda outer: kernels.fig4_loop(shift_nops=6,
                                                   iterations=outer),
        "loop": ".Ll0",
        "iters": lambda outer: outer,
        "scales": (1200, 3600),
        "quick_scales": (600, 1800),
        "band": (0.75, 1.45),
        "diverges": "LSD engagement is trip-count-dependent",
    },
    {
        "name": "hash_bench",
        "factory": lambda outer: kernels.hash_bench(trip=outer),
        "loop": ".Lloop",
        "iters": lambda outer: outer,
        "scales": (1200, 3600),
        "quick_scales": (600, 1800),
        "band": (0.60, 1.20),
        "diverges": None,
    },
    {
        "name": "hash_bench+sched",
        "factory": lambda outer: kernels.hash_bench(scheduled=True,
                                                    trip=outer),
        "loop": ".Lloop",
        "iters": lambda outer: outer,
        "scales": (1200, 3600),
        "quick_scales": (600, 1800),
        "band": (0.75, 1.25),
        "diverges": None,
    },
    {
        "name": "mcf_fig1",
        "factory": lambda outer: kernels.mcf_fig1(outer=outer),
        "loop": ".L3",
        "iters": lambda outer: 50 * outer,
        "scales": (80, 240),
        "quick_scales": (40, 120),
        "band": (0.40, 1.10),
        "diverges": None,
    },
    {
        "name": "nested_short_loops",
        "factory": lambda outer: kernels.nested_short_loops(outer=outer),
        "loop": ".Lcol",
        "iters": lambda outer: 2 * outer,
        "scales": (600, 1800),
        "quick_scales": (300, 900),
        "band": (0.02, 0.30),
        "diverges": "branch-prediction aliasing (SS:III.C.g)",
    },
]

#: Candidate pairs for ranking: (base config name, candidate config
#: name, the pass the candidate mirrors).  Both sides reuse the
#: steady-state measurements of the matrix above — no extra simulation.
CANDIDATE_PAIRS = [
    ("eon_loop", "eon_loop+align", "LOOP16"),
    ("fig4_loop", "fig4_loop+shift", "LSD fit"),
    ("hash_bench", "hash_bench+sched", "SCHED"),
]

#: A simulated cycles/iteration difference below this fraction is noise
#: for ranking purposes; such a pair is recorded but not scored.
MIN_SIM_DELTA = 0.03


def steady_state_cycles(config, core, quick):
    """Simulated steady cycles/iteration + total simulate seconds."""
    lo, hi = config["quick_scales"] if quick else config["scales"]
    cycles = {}
    sim_s = 0.0
    for outer in (lo, hi):
        source = config["factory"](outer)
        start = time.perf_counter()
        sim = api.simulate(source, core)
        sim_s += time.perf_counter() - start
        cycles[outer] = sim.cycles
    iters = config["iters"]
    steady = (cycles[hi] - cycles[lo]) / float(iters(hi) - iters(lo))
    return steady, sim_s


def run_matrix(quick):
    """Cross-validate every configuration x core; returns the
    ``kernels`` rows, the prediction table (for ranking), and timing."""
    rows = []
    predictions = {}
    simulate_s = 0.0
    predict_s = 0.0
    simulate_runs = 0
    predict_calls = 0
    for config in CONFIGS:
        for core in CORES:
            _lo, hi = (config["quick_scales"] if quick
                       else config["scales"])
            source = config["factory"](hi)
            start = time.perf_counter()
            prediction = api.predict(source, core, loop=config["loop"])
            predict_s += time.perf_counter() - start
            predict_calls += 1

            steady, sim_s = steady_state_cycles(config, core, quick)
            simulate_s += sim_s
            simulate_runs += 2

            ratio = prediction.cycles / steady if steady else 0.0
            lo_band, hi_band = config["band"]
            predictions[(config["name"], core)] = prediction
            rows.append({
                "kernel": config["name"],
                "core": core,
                "loop": prediction.loop_label,
                "bottleneck": prediction.bottleneck,
                "predicted_cycles": round(prediction.cycles, 4),
                "simulated_cycles": round(steady, 4),
                "ratio": round(ratio, 4),
                "band": [lo_band, hi_band],
                "within_band": bool(lo_band <= ratio <= hi_band),
                "diverges": config["diverges"],
            })
            print("%-22s %-8s pred %6.2f  sim %6.2f  ratio %.2f %s"
                  % (config["name"], core, prediction.cycles, steady,
                     ratio,
                     "ok" if rows[-1]["within_band"] else "OUT OF BAND"))
    timing = {
        "simulate_s": round(simulate_s, 4),
        "simulate_runs": simulate_runs,
        "predict_s": round(predict_s, 4),
        "predict_calls": predict_calls,
        "speedup": round(simulate_s / predict_s, 1) if predict_s else None,
    }
    return rows, predictions, timing


def rank_candidates(rows, predictions):
    """Score each candidate pair: does the model pick the simulator's
    winner?  Ties in the model's ranking score count as a miss (the
    model failed to separate candidates the simulator separates)."""
    sim_cycles = {(r["kernel"], r["core"]): r["simulated_cycles"]
                  for r in rows}
    pairs = []
    agreements = []
    for base, candidate, transform in CANDIDATE_PAIRS:
        for core in CORES:
            sim_base = sim_cycles[(base, core)]
            sim_cand = sim_cycles[(candidate, core)]
            delta = abs(sim_base - sim_cand) / max(sim_base, sim_cand)
            scored = delta >= MIN_SIM_DELTA
            sim_winner = "base" if sim_base <= sim_cand else "candidate"
            score_base = predictions[(base, core)].ranking_score()
            score_cand = predictions[(candidate, core)].ranking_score()
            if score_base < score_cand:
                model_winner = "base"
            elif score_cand < score_base:
                model_winner = "candidate"
            else:
                model_winner = "tie"
            agree = scored and model_winner == sim_winner
            if scored:
                agreements.append(agree)
            pairs.append({
                "kernel": base,
                "candidate": candidate,
                "transform": transform,
                "core": core,
                "simulated_cycles": [sim_base, sim_cand],
                "predicted_scores": [list(score_base), list(score_cand)],
                "simulated_winner": sim_winner,
                "predicted_winner": model_winner,
                "scored": scored,
                "agree": agree,
            })
            print("rank %-12s %-8s (%s): sim %s, model %s -> %s"
                  % (base, core, transform, sim_winner, model_winner,
                     "agree" if agree else
                     ("skipped" if not scored else "DISAGREE")))
    agreement = (sum(agreements) / float(len(agreements))
                 if agreements else None)
    return {
        "pairs": pairs,
        "scored_pairs": len(agreements),
        "agreement": round(agreement, 4) if agreement is not None else None,
        "min_agreement": MIN_AGREEMENT,
    }


#: Kernels the ``--profile-matrix`` mode cross-validates on every
#: registry profile, and the broad sanity band applied there (new
#: data-only profiles have no hand-pinned per-kernel bands yet — the
#: matrix asserts the model stays within the same order of magnitude).
MATRIX_KERNELS = ("fig4_loop", "hash_bench", "hash_bench+sched")
MATRIX_BAND = (0.05, 3.0)


def run_profile_matrix(quick):
    """Every registry profile x MATRIX_KERNELS, broad-band validated.

    This is the payoff of data-driven profiles: ``skylake``/``zen``
    (and any future drop-in document) flow through predict + simulate
    with zero code changes.
    """
    from repro.uarch import tables

    profiles = tables.profile_names()
    configs = [c for c in CONFIGS if c["name"] in MATRIX_KERNELS]
    rows = []
    for config in configs:
        for core in profiles:
            _lo, hi = (config["quick_scales"] if quick
                       else config["scales"])
            source = config["factory"](hi)
            prediction = api.predict(source, core, loop=config["loop"])
            steady, _sim_s = steady_state_cycles(config, core, quick)
            ratio = prediction.cycles / steady if steady else 0.0
            lo_band, hi_band = MATRIX_BAND
            rows.append({
                "kernel": config["name"],
                "core": core,
                "predicted_cycles": round(prediction.cycles, 4),
                "simulated_cycles": round(steady, 4),
                "ratio": round(ratio, 4),
                "band": [lo_band, hi_band],
                "within_band": bool(lo_band <= ratio <= hi_band),
            })
            print("%-22s %-10s pred %6.2f  sim %6.2f  ratio %.2f %s"
                  % (config["name"], core, prediction.cycles, steady,
                     ratio,
                     "ok" if rows[-1]["within_band"] else "OUT OF BAND"))
    return {"profiles": profiles, "kernels": list(MATRIX_KERNELS),
            "band": list(MATRIX_BAND), "rows": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cross-validate the static throughput predictor "
                    "against the trace simulator")
    parser.add_argument("--quick", action="store_true",
                        help="smaller simulation scales for CI smoke")
    parser.add_argument("--profile-matrix", action="store_true",
                        help="cross-validate over the FULL profile "
                             "registry (core2/opteron/pentium4 plus "
                             "every data-only profile) instead of the "
                             "pinned two-core accuracy matrix")
    parser.add_argument("-o", "--output",
                        default=os.path.join(_REPO_ROOT,
                                             "BENCH_predict.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    if args.profile_matrix:
        matrix = run_profile_matrix(args.quick)
        results = {
            "schema": PREDICT_BENCH_SCHEMA,
            "config": {"quick": bool(args.quick), "mode": "profile-matrix"},
            "profile_matrix": matrix,
        }
        output = args.output
        if output.endswith("BENCH_predict.json"):
            output = output.replace("BENCH_predict.json",
                                    "BENCH_predict_matrix.json")
        with open(output, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % output)
        in_band = all(row["within_band"] for row in matrix["rows"])
        if not in_band:
            print("FAIL: profile-matrix rows out of band", file=sys.stderr)
            return 1
        return 0

    rows, predictions, timing = run_matrix(args.quick)
    ranking = rank_candidates(rows, predictions)

    results = {
        "schema": PREDICT_BENCH_SCHEMA,
        "config": {
            "quick": bool(args.quick),
            "cores": list(CORES),
            "configs": [c["name"] for c in CONFIGS],
            "min_sim_delta": MIN_SIM_DELTA,
        },
        "kernels": rows,
        "ranking": ranking,
        "timing": timing,
    }
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    print("simulate %.3fs over %d runs; predict %.3fs over %d calls; "
          "speedup %.0fx"
          % (timing["simulate_s"], timing["simulate_runs"],
             timing["predict_s"], timing["predict_calls"],
             timing["speedup"] or 0))
    if ranking["agreement"] is not None:
        print("ranking agreement %.2f over %d scored pairs"
              % (ranking["agreement"], ranking["scored_pairs"]))

    in_band = all(row["within_band"] for row in rows)
    agreed = (ranking["agreement"] is not None
              and ranking["agreement"] >= MIN_AGREEMENT)
    fast = (timing["speedup"] or 0) >= 100.0
    if not (in_band and agreed and fast):
        print("FAIL: bands=%s agreement=%s speedup>=100x=%s"
              % (in_band, agreed, fast), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
