"""§IV: semi-automatic micro-architectural parameter detection.

Fig. 6 determines instruction latencies from CYCLE-dependence
microbenchmarks; the section's broader goal is discovering features like
decode-line size, predictor indexing, and LSD capacity by experimentation.
Here the detectors run against *blinded* processor models — they see PMU
counters only — and must recover the hidden parameters.
"""

from _bench_util import report

from repro.mbench import Processor, detect
from repro.uarch.profiles import blinded_profile, core2, opteron

LATENCY_TEMPLATES = {
    "addq %r, %r": "alu",
    "imulq %r, %r": "mul",
    "movq (%r), %r": "load",
}


def test_instruction_latency_table(once):
    """Fig. 6's InstructionLatency over the known profiles."""
    def run():
        rows = []
        for model in (core2(), opteron()):
            proc = Processor(model)
            for template, key in LATENCY_TEMPLATES.items():
                measured = detect.InstructionLatency(proc, template,
                                                     trip_count=600)
                rows.append((model.name, template, measured,
                             model.latency[key]))
        return rows

    rows = once(run)
    report("§IV Fig. 6 — InstructionLatency vs model truth",
           ["processor", "template", "measured", "truth"], rows)
    for _, template, measured, truth in rows:
        assert measured == truth, template


def test_blinded_parameter_detection(once):
    """Full detection suite against blinded processors."""
    def run():
        results = []
        for seed in (1, 7, 13):
            model = blinded_profile(seed)
            proc = Processor(model)
            results.append({
                "seed": seed,
                "line": (detect.DetectDecodeLineSize(proc),
                         model.decode_line_bytes),
                "shift": (detect.DetectBranchPredictorShift(proc),
                          model.bp_index_shift),
                "mul": (detect.InstructionLatency(proc, "imulq %r, %r",
                                                  trip_count=400),
                        model.latency["mul"]),
            })
        return results

    results = once(run)
    rows = []
    correct = 0
    total = 0
    for entry in results:
        for key in ("line", "shift", "mul"):
            measured, truth = entry[key]
            rows.append(("blinded-%d" % entry["seed"], key, measured,
                         truth, "ok" if measured == truth else "MISS"))
            correct += measured == truth
            total += 1
    report("§IV — blinded parameter detection",
           ["processor", "parameter", "detected", "truth", ""], rows,
           extra="recovered %d/%d hidden parameters" % (correct, total))
    once.benchmark.extra_info["recovered"] = correct
    assert correct >= total - 1, "detection must recover the parameters"


def test_known_profile_structure_detection(once):
    """The Core-2 / Opteron structural parameters the paper documents."""
    def run():
        c2 = Processor(core2())
        amd = Processor(opteron())
        return {
            "core2 line": (detect.DetectDecodeLineSize(c2), 16),
            "core2 bp shift": (detect.DetectBranchPredictorShift(c2), 5),
            "core2 lsd lines": (detect.DetectLsdLineBudget(c2), 4),
            "core2 fw bw": (detect.DetectForwardingBandwidth(c2), 3),
            "opteron line": (detect.DetectDecodeLineSize(amd), 32),
            "opteron lsd lines": (detect.DetectLsdLineBudget(amd), 1),
        }

    results = once(run)
    rows = [(name, measured, truth)
            for name, (measured, truth) in results.items()]
    report("§IV — structural feature detection on the paper's platforms",
           ["feature", "detected", "expected"], rows)
    for name, (measured, truth) in results.items():
        assert measured == truth, name
