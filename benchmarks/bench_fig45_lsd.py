"""Figures 4/5: NOP-shifting a loop into the LSD's line budget.

"Inserting six nop instructions moves the code so as to now only span four
16-byte decoding lines ... The insertion of these nop instructions speeds
the loop up by a factor of two."
"""

from _bench_util import measure, report

from repro.uarch.profiles import core2
from repro.workloads import kernels

PAPER_FACTOR = 2.0


def test_fig45_lsd_fit(once):
    def run():
        base = measure(kernels.fig4_loop(0), core2())
        shifted = measure(kernels.fig4_loop(6), core2())
        return base, shifted

    base, shifted = once(run)
    factor = base.cycles / shifted.cycles
    report(
        "Figs. 4/5 — loop shifted into the Loop Stream Detector (Core-2)",
        ["variant", "cycles", "LSD_UOPS", "DECODE_LINES"],
        [
            ("initial layout (Fig. 4)", base.cycles, base["LSD_UOPS"],
             base["DECODE_LINES"]),
            ("+6 nops (Fig. 5)", shifted.cycles, shifted["LSD_UOPS"],
             shifted["DECODE_LINES"]),
        ],
        extra="speedup factor: %.2fx  (paper: %.1fx)"
        % (factor, PAPER_FACTOR))
    once.benchmark.extra_info["factor"] = factor
    assert base["LSD_UOPS"] == 0, "the wide layout must not stream"
    assert shifted["LSD_UOPS"] > 0, "the packed layout must stream"
    assert factor > 1.2


def test_fig45_lsdfit_pass_automates_it(once):
    """The LSDFIT pass finds and applies the same shift automatically."""
    from repro.ir import parse_unit
    from repro.passes import run_passes

    def run():
        base = measure(kernels.fig4_loop(0), core2())
        unit = parse_unit(kernels.fig4_loop(0))
        result = run_passes(unit, "LSDFIT")
        optimized = measure(unit, core2())
        return base, optimized, result

    base, optimized, result = once(run)
    factor = base.cycles / optimized.cycles
    report(
        "Figs. 4/5 — LSDFIT pass (automatic)",
        ["variant", "cycles", "LSD_UOPS"],
        [("before LSDFIT", base.cycles, base["LSD_UOPS"]),
         ("after LSDFIT", optimized.cycles, optimized["LSD_UOPS"])],
        extra="nops inserted by the pass: %d; speedup %.2fx"
        % (result.total("LSDFIT", "nops_inserted"), factor))
    assert optimized["LSD_UOPS"] > 0
    assert factor > 1.2
