"""§III.E.i: the Nopinizer as a discovery tool.

"The idea is that by inserting nop instructions, code gets shifted around
enough to expose micro-architectural cliffs ... Performing a large number
of experiments found a 4% opportunity in compression code on an older
Pentium 4 platform, which as of today, remains a mystery."
"""

import statistics

from _bench_util import measure, pct, report

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.uarch.profiles import pentium4
from repro.workloads.spec import build_benchmark

PAPER_P4_OPPORTUNITY = 0.04
SEEDS = range(12)


def test_nopinizer_seed_sweep_on_p4(once):
    """Sweep Nopinizer seeds on the compression benchmark (256.bzip2)
    against the Pentium-4-like model; report the distribution and the
    best discovered layout."""
    def run():
        program = build_benchmark("256.bzip2")
        base = measure(program.unit(), pentium4(),
                       max_steps=program.max_steps)
        deltas = []
        for seed in SEEDS:
            unit = program.unit()
            run_passes(unit, "NOPIN=seed[%d]+density[0.08]" % seed)
            variant = measure(unit, pentium4(),
                              max_steps=program.max_steps)
            deltas.append((seed, base.cycles / variant.cycles - 1.0))
        return deltas

    deltas = once(run)
    rows = [(seed, pct(delta)) for seed, delta in deltas]
    best_seed, best = max(deltas, key=lambda item: item[1])
    mean = statistics.mean(d for _, d in deltas)
    report("§III.E.i — Nopinizer seed sweep, compression code on the "
           "P4-like model",
           ["seed", "delta vs base"], rows,
           extra="best discovered layout: seed %d at %s (paper found a "
                 "4%% opportunity this way); mean %s"
           % (best_seed, pct(best), pct(mean)))
    once.benchmark.extra_info["best"] = best
    once.benchmark.extra_info["mean"] = mean
    # The sweep must produce a *distribution* — layout sensitivity is the
    # entire point of the experiment.
    values = [d for _, d in deltas]
    assert max(values) - min(values) > 0.005, \
        "seeds must produce measurably different layouts"
