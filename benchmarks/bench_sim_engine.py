#!/usr/bin/env python3
"""Simulation-engine performance harness: block cache + streaming +
loop fast-forward.

Measures the execute→time path on steady-state loop workloads (the bulk
of every micro-benchmark the detectors run) and records the numbers in
``BENCH_sim.json`` so the perf trajectory is tracked from PR to PR:

* **baseline** — the pre-trace-compiled configuration: per-instruction
  decode dispatch with the block cache disabled, a fully materialized
  trace list, and the reference (no fast-forward) pipeline walk;
* **fast** — trace-compiled basic blocks, records streamed straight into
  the pipeline, steady-state iterations fast-forwarded algebraically.

The fast path must be *counter-identical* to the baseline: the harness
diffs every ``SimStats`` counter (and the architectural run result) and
refuses to report a speedup for wrong timing.  A differential section
sweeps the paper's anecdote kernels on both processor models as an
extra equality net.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_engine.py            # full run
    PYTHONPATH=src python benchmarks/bench_sim_engine.py --quick    # CI smoke
    python scripts/perf_report.py BENCH_sim.json                    # pretty-print
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import api  # noqa: E402
from repro.ir import parse_unit  # noqa: E402
from repro.sim import interp  # noqa: E402
from repro.sim.interp import run_unit  # noqa: E402
from repro.uarch import pipeline  # noqa: E402
from repro.uarch.pipeline import simulate_reference  # noqa: E402
from repro.uarch.profiles import core2, opteron  # noqa: E402
from repro.workloads import kernels  # noqa: E402


def _run_state(result) -> tuple:
    """Architectural fingerprint of a finished run."""
    state = result.state
    return (result.steps, result.reason, tuple(sorted(state.gp.items())),
            tuple(sorted(state.flags.snapshot().items())), state.rip)


def bench_engine(name: str, source: str, model) -> dict:
    """One steady-state workload: baseline walk vs. the full fast path."""
    unit_base = parse_unit(source)
    unit_fast = parse_unit(source)

    interp.reset_block_cache_stats()
    pipeline.reset_fast_forward_stats()

    with interp.block_cache_disabled(), pipeline.fast_forward_disabled():
        start = time.perf_counter()
        result_base = run_unit(unit_base, collect_trace=True)
        stats_base = simulate_reference(result_base.trace, model)
        baseline_s = time.perf_counter() - start

    start = time.perf_counter()
    sim = api.simulate(unit_fast, model)
    result_fast, stats_fast = sim.result, sim.stats
    fast_s = time.perf_counter() - start

    blk = interp.block_cache_stats()
    ff = pipeline.fast_forward_stats()
    identical = (stats_base.counters == stats_fast.counters
                 and _run_state(result_base) == _run_state(result_fast))
    return {
        "workload": name,
        "model": model.name,
        "instructions": result_fast.steps,
        "cycles": stats_fast.cycles,
        "baseline_s": round(baseline_s, 6),
        "fast_s": round(fast_s, 6),
        "speedup": round(baseline_s / fast_s, 3) if fast_s else None,
        "counter_identical": identical,
        "block_cache_hits": int(blk["block_hits"]),
        "block_cache_compiled": int(blk["blocks_compiled"]),
        "block_cache_hit_rate": round(blk["hit_rate"], 4),
        "ff_loops": int(ff["loops_entered"]),
        "ff_iterations": int(ff["iterations_fast_forwarded"]),
        "ff_records": int(ff["records_fast_forwarded"]),
    }


def bench_differential(quick: bool) -> dict:
    """Counter equality of the fast path across the anecdote corpus."""
    scale = 0.25 if quick else 1.0
    outer = max(2, int(400 * scale))
    cases = [
        ("fig1_nop", kernels.mcf_fig1(insert_nop=True, outer=outer)),
        ("fig1_base", kernels.mcf_fig1(insert_nop=False, outer=outer)),
        ("fig4_lsd", kernels.fig4_loop(shift_nops=6,
                                       iterations=int(2000 * scale))),
        ("fig4_base", kernels.fig4_loop(shift_nops=0,
                                        iterations=int(2000 * scale))),
        ("hash_fwd", kernels.hash_bench(trip=int(3000 * scale))),
        ("nested", kernels.nested_short_loops(outer=int(1500 * scale))),
        ("eon", kernels.eon_loop(outer=int(600 * scale))),
    ]
    models = [core2(), opteron()]
    checked = 0
    mismatches = []
    for case_name, source in cases:
        for model in models:
            with interp.block_cache_disabled(), \
                    pipeline.fast_forward_disabled():
                base = run_unit(parse_unit(source), collect_trace=True)
                ref = simulate_reference(base.trace, model)
            sim = api.simulate(source, model)
            run, fast = sim.result, sim.stats
            checked += 1
            if (ref.counters != fast.counters
                    or _run_state(base) != _run_state(run)):
                mismatches.append("%s/%s" % (case_name, model.name))
    return {
        "cases_checked": checked,
        "mismatches": mismatches,
        "counter_identical": not mismatches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="simulation-engine perf harness (block cache + "
                    "streaming + loop fast-forward)")
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--outer", type=int, default=None,
                        help="outer trip count of the steady-loop "
                             "workload (default 2500, quick 600)")
    parser.add_argument("-o", "--output", default=None,
                        help="JSON output path (default: BENCH_sim.json "
                             "next to the repo root)")
    args = parser.parse_args(argv)

    outer = args.outer if args.outer is not None \
        else (1500 if args.quick else 8000)
    output = args.output or os.path.join(_REPO_ROOT, "BENCH_sim.json")

    # The steady loop: Fig. 4's three-block body at its unshifted
    # placement.  Frontend-bound with an iteration-invariant record
    # signature, so the fast-forward engine validates and skips it; the
    # hash kernel is backend-bound (drifting completion clocks) so the
    # engine soundly declines and only the block cache + streaming help.
    steady_src = kernels.fig4_loop(shift_nops=0, iterations=outer)
    hash_src = kernels.hash_bench(trip=outer * 2)
    model = core2()

    print("workload: fig4 steady loop x%d + hash kernel x%d (core2)"
          % (outer, outer * 2))

    steady = bench_engine("fig4_steady", steady_src, model)
    hashed = bench_engine("hash_fwd", hash_src, model)
    differential = bench_differential(args.quick)

    results = {
        "schema": "mao-bench-sim/1",
        "config": {
            "quick": args.quick,
            "outer": outer,
        },
        "sim_steady_loop": steady,
        "sim_hash_kernel": hashed,
        "differential": differential,
    }

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % output)

    ok = True
    for key in ("sim_steady_loop", "sim_hash_kernel"):
        r = results[key]
        print("%-16s %6.1fx speedup  (%.4fs -> %.4fs)  "
              "block-hit-rate %.1f%%  ff-records=%d  identical=%s"
              % (key, r["speedup"], r["baseline_s"], r["fast_s"],
                 100.0 * r["block_cache_hit_rate"], r["ff_records"],
                 r["counter_identical"]))
        ok = ok and r["counter_identical"]
    d = results["differential"]
    print("differential     %d kernel/model cases  identical=%s"
          % (d["cases_checked"], d["counter_identical"]))
    ok = ok and d["counter_identical"]

    if not ok:
        print("FAIL: fast engine diverged from the reference walk",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
