#!/usr/bin/env python3
"""Corpus-scale batch-engine harness: warm artifact-cache replay vs a
cold full optimization of the same corpus.

Models the deployment story (MAO inside a build pipeline, re-optimizing
every translation unit on every build): a generated corpus of assembly
files is optimized twice through ``repro.batch`` with a persistent
content-addressed artifact cache —

* **cold** — empty cache directory: every file parses and runs the full
  pass pipeline, and its artifact is published;
* **warm** — the same corpus and cache: every file must *hit* and replay
  its stored emitted assembly + ``pymao.pipeline/1`` report.

The warm run must have a 100% hit rate and produce byte-identical
assembly for every file, or the harness refuses to report a speedup.  A
determinism section additionally re-runs the cold configuration with
``jobs=1`` vs ``jobs=4`` on both the thread and the process backend and
diffs outputs and ``pymao.batch/1`` summaries.

Results land in ``BENCH_batch.json`` (schema ``mao-bench-batch/1``),
rendered and gated by ``scripts/perf_report.py`` (warm speedup >= 5x on
the full 100-file corpus).

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py            # full run
    PYTHONPATH=src python benchmarks/bench_batch.py --quick    # CI smoke
    python scripts/perf_report.py BENCH_batch.json             # pretty-print
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.batch import ArtifactCache, run_batch  # noqa: E402
from repro.workloads.corpus import CorpusConfig, generate_corpus_text  # noqa: E402,E501

SPEC = "REDZEE:REDTEST:REDMOV:ADDADD"


def build_corpus(directory: str, n_files: int, scale: float) -> list:
    """Write *n_files* seeded translation units and return their paths."""
    paths = []
    for index in range(n_files):
        config = CorpusConfig(seed=1000 + index, scale=scale, functions=2)
        path = os.path.join(directory, "tu_%03d.s" % index)
        with open(path, "w") as handle:
            handle.write(generate_corpus_text(config))
        paths.append(path)
    return paths


def run_once(paths: list, jobs: int, backend: str,
             cache_dir: str = None) -> tuple:
    cache = ArtifactCache(cache_dir) if cache_dir else None
    start = time.perf_counter()
    batch = run_batch(paths, SPEC, jobs=jobs, parallel_backend=backend,
                      cache=cache)
    elapsed = time.perf_counter() - start
    return batch, elapsed


def summarize(batch, elapsed: float) -> dict:
    looked_up = batch.cache_hits + batch.cache_misses
    return {
        "files": len(batch),
        "ok": batch.ok_count,
        "errors": batch.error_count,
        "cache_hits": batch.cache_hits,
        "cache_misses": batch.cache_misses,
        "hit_rate": round(batch.cache_hits / looked_up, 4)
        if looked_up else 0.0,
        "elapsed_s": round(elapsed, 6),
    }


def bench_determinism(paths: list) -> dict:
    """jobs=1 vs jobs=4, thread and process: outputs and summaries must
    be identical (no cache, so every case does the full work)."""
    cases = [("jobs1-thread", 1, "thread"),
             ("jobs4-thread", 4, "thread"),
             ("jobs4-process", 4, "process")]
    reference = None
    identical = True
    for _name, jobs, backend in cases:
        batch, _elapsed = run_once(paths, jobs, backend, cache_dir=None)
        fingerprint = ([item.asm for item in batch], batch.to_dict())
        if reference is None:
            reference = fingerprint
        elif fingerprint != reference:
            identical = False
    return {"cases": [name for name, _j, _b in cases],
            "identical": identical}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="batch-engine perf harness (artifact cache warm "
                    "replay vs cold corpus optimization)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny corpus for CI smoke runs")
    parser.add_argument("--files", type=int, default=None,
                        help="corpus size (default 100, quick 12)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the timed runs (default 4)")
    parser.add_argument("--parallel-backend",
                        choices=("thread", "process"), default="process",
                        help="worker pool kind for the timed runs "
                             "(default: process — the passes are "
                             "CPU-bound)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: a fresh tmpdir, "
                             "removed afterwards)")
    parser.add_argument("-o", "--output", default=None,
                        help="JSON output path (default: BENCH_batch.json "
                             "next to the repo root)")
    args = parser.parse_args(argv)

    n_files = args.files if args.files is not None \
        else (12 if args.quick else 100)
    scale = 0.002 if args.quick else 0.004
    output = args.output or os.path.join(_REPO_ROOT, "BENCH_batch.json")

    workdir = tempfile.mkdtemp(prefix="pymao-bench-batch-")
    cache_dir = args.cache_dir or os.path.join(workdir, "cache")
    try:
        corpus_dir = os.path.join(workdir, "corpus")
        os.makedirs(corpus_dir)
        paths = build_corpus(corpus_dir, n_files, scale)
        total_bytes = sum(os.path.getsize(p) for p in paths)
        print("corpus: %d files, %.1f KiB, spec %s"
              % (n_files, total_bytes / 1024.0, SPEC))

        cold_batch, cold_s = run_once(paths, args.jobs,
                                      args.parallel_backend, cache_dir)
        warm_batch, warm_s = run_once(paths, args.jobs,
                                      args.parallel_backend, cache_dir)
        byte_identical = ([item.asm for item in cold_batch]
                          == [item.asm for item in warm_batch])
        determinism = bench_determinism(paths)

        results = {
            "schema": "mao-bench-batch/1",
            "config": {
                "quick": args.quick,
                "files": n_files,
                "jobs": args.jobs,
                "parallel_backend": args.parallel_backend,
                "spec": SPEC,
                "corpus_bytes": total_bytes,
            },
            "batch_cold": summarize(cold_batch, cold_s),
            "batch_warm": summarize(warm_batch, warm_s),
            "speedup": round(cold_s / warm_s, 3) if warm_s else None,
            "byte_identical": byte_identical,
            "determinism": determinism,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % output)

    warm = results["batch_warm"]
    print("cold  %.4fs  (hits=%d misses=%d)"
          % (cold_s, results["batch_cold"]["cache_hits"],
             results["batch_cold"]["cache_misses"]))
    print("warm  %.4fs  (hits=%d misses=%d hit-rate=%.1f%%)"
          % (warm_s, warm["cache_hits"], warm["cache_misses"],
             100.0 * warm["hit_rate"]))
    print("speedup %.1fx  byte-identical=%s  deterministic=%s"
          % (results["speedup"], byte_identical,
             determinism["identical"]))

    ok = (byte_identical and determinism["identical"]
          and warm["hit_rate"] == 1.0 and warm["errors"] == 0)
    if not ok:
        print("FAIL: warm replay diverged from the cold run",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
