"""§III.C.e: the 252.eon short-loop decode-line cliff.

"We found a 7% performance degradation in the SPEC 2000 int benchmark
252.eon between GCC 4.3 and the previous GCC 4.2 ... The degraded version
was identical, except it crossed a 16-byte alignment boundary."
"""

from _bench_util import measure, pct, report

from repro.uarch.profiles import core2
from repro.workloads import kernels

PAPER_DEGRADATION = 0.07


def test_eon_alignment_sweep(once):
    """Slide the eon loop across a 16-byte grid: crossing offsets pay."""
    def run():
        rows = []
        for pre in range(0, 16, 3):
            plain = measure(kernels.eon_loop(pre_bytes=pre), core2())
            aligned = measure(kernels.eon_loop(pre_bytes=pre,
                                               aligned=True), core2())
            rows.append((pre, plain, aligned))
        return rows

    rows = once(run)
    table = []
    worst = 0.0
    for pre, plain, aligned in rows:
        degradation = plain.cycles / aligned.cycles - 1.0
        worst = max(worst, degradation)
        table.append((pre, plain.cycles, aligned.cycles,
                      pct(degradation)))
    report(
        "§III.C.e — eon loop vs 16-byte placement (Core-2)",
        ["pre-bytes", "cycles", "cycles aligned", "unaligned cost"],
        table,
        extra="worst crossing penalty: %s  (paper: ~%s)"
        % (pct(worst), pct(PAPER_DEGRADATION)))
    once.benchmark.extra_info["worst_penalty"] = worst
    assert worst > 0.03, "the decode-line cliff must reproduce"
