"""§III.F: scheduling the hashing microbenchmark.

"We found significant performance opportunity (21%) in one of our hashing
micro benchmarks, simply from scheduling instructions differently ... the
performance degradation correlated with a proportional increase in
reservation station stalls as measured by RESOURCE_STALLS:RS_FULL ...
This resulted in a 15% performance improvement in the hashing
microbenchmark."
"""

from _bench_util import measure, pct, report

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.uarch.profiles import core2

from repro.workloads import kernels

PAPER_HAND_OPPORTUNITY = 0.21
PAPER_PASS_IMPROVEMENT = 0.15


def test_hand_scheduled_opportunity(once):
    def run():
        base = measure(kernels.hash_bench(False), core2())
        hand = measure(kernels.hash_bench(True), core2())
        return base, hand

    base, hand = once(run)
    opportunity = base.cycles / hand.cycles - 1.0
    report(
        "§III.F — hashing kernel, hand-modified schedule (Core-2)",
        ["variant", "cycles", "RS_FULL stalls"],
        [("original order", base.cycles,
          base["RESOURCE_STALLS_RS_FULL"]),
         ("hand-scheduled", hand.cycles,
          hand["RESOURCE_STALLS_RS_FULL"])],
        extra="opportunity: %s  (paper: %s); stalls track the gap, as the "
        "paper's PMU analysis found"
        % (pct(opportunity), pct(PAPER_HAND_OPPORTUNITY)))
    once.benchmark.extra_info["opportunity"] = opportunity
    assert base["RESOURCE_STALLS_RS_FULL"] \
        > hand["RESOURCE_STALLS_RS_FULL"] * 5
    assert opportunity > 0.10


def test_sched_pass_improvement(once):
    def run():
        base = measure(kernels.hash_bench(False), core2())
        unit = parse_unit(kernels.hash_bench(False))
        result = run_passes(unit, "SCHED")
        scheduled = measure(unit, core2())
        return base, scheduled, result

    base, scheduled, result = once(run)
    improvement = base.cycles / scheduled.cycles - 1.0
    report(
        "§III.F — SCHED pass on the hashing kernel",
        ["variant", "cycles", "RS_FULL stalls"],
        [("before SCHED", base.cycles,
          base["RESOURCE_STALLS_RS_FULL"]),
         ("after SCHED", scheduled.cycles,
          scheduled["RESOURCE_STALLS_RS_FULL"])],
        extra="instructions moved: %d; improvement: %s  (paper: %s)"
        % (result.total("SCHED", "instructions_moved"),
           pct(improvement), pct(PAPER_PASS_IMPROVEMENT)))
    once.benchmark.extra_info["improvement"] = improvement
    assert result.total("SCHED", "instructions_moved") > 0
    assert improvement > 0.0
