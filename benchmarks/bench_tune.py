#!/usr/bin/env python3
"""Autotuner harness: `mao tune` vs the hand-written default spec on
every anecdote kernel x {core2, opteron}.

Three claims, one tracked file:

* **Never worse** — the tuned spec's predicted cycles-per-iteration is
  <= the default ``REDTEST:LOOP16`` pipeline's on every kernel x core.
  The default spec is always in the tuner's seed set, so this holds by
  construction whenever the seeds are scored; the gate additionally
  covers the early-stop path (where the baseline already sits on the
  static lower bound and nothing is scored at all).
* **Search efficiency** — prefix-artifact sharing + early stopping must
  execute >= 3x fewer pass runs than exhaustively materializing every
  generated candidate from scratch (``total_steps`` in the tune
  accounting: sum of spec lengths over all candidates the search
  created, including ones never admitted).
* **Warm replay** — a second tune of the same input through a fresh
  cache handle over the same store must execute **zero** pass runs and
  return the identical winner: the search is fully replayed from the
  shared artifact store.

Results land in ``BENCH_tune.json`` (schema ``mao-bench-tune/1``),
rendered and gated by ``scripts/perf_report.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_tune.py          # full run
    PYTHONPATH=src python benchmarks/bench_tune.py --quick  # CI smoke
    python scripts/perf_report.py BENCH_tune.json           # pretty-print
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import api  # noqa: E402
from repro.batch.cache import ArtifactCache  # noqa: E402
from repro.tune import DEFAULT_SPEC, TUNE_BENCH_SCHEMA  # noqa: E402
from repro.workloads import kernels  # noqa: E402

CORES = ("core2", "opteron")

KERNELS = ("mcf_fig1", "eon_loop", "fig4_loop", "hash_bench",
           "nested_short_loops")

QUICK_KERNELS = ("mcf_fig1", "fig4_loop", "hash_bench")

#: The gate: caching + early stop must beat exhaustive enumeration of
#: the same candidate set by at least this factor in pass executions.
MIN_EFFICIENCY = 3.0


def default_cycles(source: str, core: str) -> float:
    """Predicted cycles/iteration of the hand-written default spec —
    exactly what an untuned `mao --mao=REDTEST:LOOP16` run would get."""
    optimized = api.optimize(source, DEFAULT_SPEC)
    return api.predict(optimized.unit, core).cycles


def tune_row(name: str, core: str, cache_root: str) -> dict:
    source = getattr(kernels, name)()
    base_cycles = default_cycles(source, core)

    cache_dir = os.path.join(cache_root, "%s-%s" % (name, core))
    start = time.perf_counter()
    cold = api.tune(source, core, cache=ArtifactCache(cache_dir))
    cold_s = time.perf_counter() - start

    # Warm replay through a *fresh* handle over the same store: the
    # search must reconstruct every prefix from disk, running nothing.
    start = time.perf_counter()
    warm = api.tune(source, core, cache=ArtifactCache(cache_dir))
    warm_s = time.perf_counter() - start

    row = {
        "kernel": name,
        "core": core,
        "default_spec": DEFAULT_SPEC,
        "default_cycles": round(base_cycles, 4),
        "tuned_cycles": round(cold.winner_cycles, 4),
        "winner_spec": cold.winner_spec,
        "winner_origin": cold.winner.get("origin"),
        "stop": cold.early_stop.get("reason"),
        "lower_bound": cold.early_stop.get("lower_bound"),
        "never_worse": bool(cold.winner_cycles <= base_cycles + 1e-9),
        "cold": {
            "executed": cold.pass_runs.get("executed", 0),
            "cache_hits": cold.pass_runs.get("cache_hits", 0),
            "naive_steps": cold.pass_runs.get("total_steps", 0),
            "saved": cold.pass_runs.get("saved", 0),
            "seconds": round(cold_s, 4),
        },
        "warm": {
            "executed": warm.pass_runs.get("executed", 0),
            "cache_hits": warm.pass_runs.get("cache_hits", 0),
            "seconds": round(warm_s, 4),
        },
        "warm_winner_identical": bool(warm.winner == cold.winner),
    }
    print("%-20s %-8s default %6.2f tuned %6.2f %-28s runs %3d/%3d "
          "warm %d stop=%s%s"
          % (name, core, base_cycles, cold.winner_cycles,
             cold.winner_spec or "<none>",
             row["cold"]["executed"], row["cold"]["naive_steps"],
             row["warm"]["executed"], row["stop"],
             "" if row["never_worse"] else "  WORSE THAN DEFAULT"))
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the pass-pipeline autotuner against the "
                    "default spec")
    parser.add_argument("--quick", action="store_true",
                        help="smaller kernel matrix for CI smoke")
    parser.add_argument("-o", "--output",
                        default=os.path.join(_REPO_ROOT, "BENCH_tune.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    names = QUICK_KERNELS if args.quick else KERNELS
    cores = ("core2",) if args.quick else CORES

    rows = []
    with tempfile.TemporaryDirectory(prefix="pymao-bench-tune-") as root:
        for name in names:
            for core in cores:
                rows.append(tune_row(name, core, root))

    naive = sum(row["cold"]["naive_steps"] for row in rows)
    executed = sum(row["cold"]["executed"] for row in rows)
    efficiency = naive / float(executed) if executed else float(naive or 1)
    totals = {
        "naive_steps": naive,
        "executed": executed,
        "efficiency": round(efficiency, 2),
        "min_efficiency": MIN_EFFICIENCY,
        "all_never_worse": all(row["never_worse"] for row in rows),
        "warm_zero_runs": all(row["warm"]["executed"] == 0
                              for row in rows),
        "warm_winners_identical": all(row["warm_winner_identical"]
                                      for row in rows),
    }

    results = {
        "schema": TUNE_BENCH_SCHEMA,
        "config": {
            "quick": bool(args.quick),
            "cores": list(cores),
            "kernels": list(names),
            "default_spec": DEFAULT_SPEC,
        },
        "rows": rows,
        "totals": totals,
    }
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    print("pass runs: %d executed for %d naive steps -> %.2fx efficiency "
          "(>= %.1fx required)"
          % (executed, naive, efficiency, MIN_EFFICIENCY))

    ok = (totals["all_never_worse"]
          and totals["warm_zero_runs"]
          and totals["warm_winners_identical"]
          and efficiency >= MIN_EFFICIENCY)
    print("gates: %s" % ("ok" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
