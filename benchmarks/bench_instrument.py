"""§III.E.l: dynamic-instrumentation NOP placement.

"While the insertion of the nop instructions was expected to result in
degradations because of larger I-cache footprint and added instructions,
it actually resulted in no degradations overall, as well as an unexpected
8% improvement in an image processing benchmark.  This is due to an
alignment effect."
"""

import statistics

from _bench_util import delta_for_pass, measure, pct, report

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.uarch.profiles import core2
from repro.workloads.spec import SPEC2000_INT, build_benchmark


def test_instrumentation_overhead(once):
    names = ["164.gzip", "197.parser", "254.gap", "255.vortex",
             "175.vpr", "300.twolf", "252.eon"]

    def run():
        return {name: delta_for_pass(build_benchmark(name), "INSTRUMENT",
                                     core2())
                for name in names}

    measured = once(run)
    rows = [(name, pct(value)) for name, value in measured.items()]
    mean = statistics.mean(measured.values())
    best = max(measured.values())
    report("§III.E.l — INSTRUMENT pass overhead (5-byte nops at "
           "entry/exit)",
           ["benchmark", "delta"], rows,
           extra="mean %s (paper: \"no degradations overall\"); best %s "
                 "(paper saw an unexpected +8%% outlier)"
           % (pct(mean), pct(best)))
    once.benchmark.extra_info["mean"] = mean
    # Entry/exit nops execute once per call: overall effect ~noise.
    assert abs(mean) < 0.05


def test_instrumentation_points_are_patchable(once):
    """Every inserted nop is a single 5-byte instruction that does not
    cross a 64-byte cache line — the atomic-patch precondition."""
    from repro.analysis.relax import relax_section

    def run():
        program = build_benchmark("176.gcc")
        unit = program.unit()
        result = run_passes(unit, "INSTRUMENT")
        layout = relax_section(unit, unit.get_section(".text"))
        points = []
        for entry, place in layout.placement.items():
            if entry.is_instruction and entry.insn.mnemonic == "nopl":
                points.append(place)
        return result, points

    result, points = once(run)
    crossings = sum(1 for p in points
                    if p.address // 64 != (p.address + p.size - 1) // 64)
    report("§III.E.l — instrumentation point properties",
           ["metric", "value"],
           [("instrumentation points", len(points)),
            ("5-byte encodings", sum(1 for p in points if p.size == 5)),
            ("cache-line crossings", crossings)])
    assert points, "entry/exit points must be instrumented"
    assert all(p.size == 5 for p in points)
    assert crossings == 0
