"""§III.C.g: branch-predictor aliasing of two short-running loops.

"Since both loops were short running with iteration counts of 1 or 2, the
branch predictor gets constantly confused ... Moving the second branch
instruction down via NOP insertion so that the two branch instructions ...
have two different PC >> 5 values speeds up a full image manipulation
benchmark by 3%."
"""

from _bench_util import measure, pct, report

from repro.uarch.profiles import core2
from repro.workloads import kernels

PAPER_SPEEDUP = 0.03


def test_branch_alias_separation(once):
    def run():
        base = measure(kernels.nested_short_loops(False), core2())
        separated = measure(kernels.nested_short_loops(True), core2())
        return base, separated

    base, separated = once(run)
    speedup = base.cycles / separated.cycles - 1.0
    report(
        "§III.C.g — de-aliasing the nested short loops (Core-2)",
        ["variant", "cycles", "BR_MISP"],
        [("aliased branches", base.cycles, base["BR_MISP"]),
         ("separated (+nops)", separated.cycles, separated["BR_MISP"])],
        extra="kernel-level speedup: %s  (paper: %s on the full image "
        "benchmark)" % (pct(speedup), pct(PAPER_SPEEDUP)))
    once.benchmark.extra_info["speedup"] = speedup
    assert separated["BR_MISP"] < base["BR_MISP"]
    assert speedup > 0.02


def test_bralign_pass_automates_it(once):
    from repro.ir import parse_unit
    from repro.passes import run_passes

    def run():
        base = measure(kernels.nested_short_loops(False), core2())
        unit = parse_unit(kernels.nested_short_loops(False))
        result = run_passes(unit, "BRALIGN")
        optimized = measure(unit, core2())
        return base, optimized, result

    base, optimized, result = once(run)
    report(
        "§III.C.g — BRALIGN pass (automatic)",
        ["variant", "cycles", "BR_MISP"],
        [("before BRALIGN", base.cycles, base["BR_MISP"]),
         ("after BRALIGN", optimized.cycles, optimized["BR_MISP"])],
        extra="pairs separated: %d, nops inserted: %d"
        % (result.total("BRALIGN", "pairs_separated"),
           result.total("BRALIGN", "nops_inserted")))
    assert optimized["BR_MISP"] <= base["BR_MISP"]
