"""§V.B, first table: the counter-intuitive 252.eon regressions.

    Benchmark     NOPIN     NOPKILL   REDTEST
    C++/252.eon   -9.23%    -5.34%    -5.97%
"""

import statistics

from _bench_util import delta_for_pass, pct, report

from repro.uarch.profiles import core2
from repro.workloads.spec import build_benchmark

PAPER = {"NOPIN": -0.0923, "NOPKILL": -0.0534, "REDTEST": -0.0597}


def test_spec_eon_regressions(once):
    def run():
        program = build_benchmark("252.eon")
        # NOPIN is a randomized experiment: average a few seeds, the way
        # one actually uses the Nopinizer.
        nopin = statistics.mean(
            -delta_for_pass(program, "NOPIN=seed[%d]" % seed, core2())
            for seed in range(5))
        nopkill = -delta_for_pass(program, "NOPKILL", core2())
        redtest = -delta_for_pass(program, "REDTEST", core2())
        return {"NOPIN": -nopin, "NOPKILL": -nopkill, "REDTEST": -redtest}

    measured = once(run)
    rows = [(name, pct(measured[name]), "%+.2f%%" % (PAPER[name] * 100))
            for name in ("NOPIN", "NOPKILL", "REDTEST")]
    report("§V.B — 252.eon under NOPIN / NOPKILL / REDTEST (Core-2)",
           ["pass", "measured", "paper"], rows,
           extra="(NOPIN averaged over 5 seeds)")
    for name, value in measured.items():
        once.benchmark.extra_info[name] = value
        assert value < 0.0, "%s must regress eon as in the paper" % name
