#!/usr/bin/env python3
"""Hot-path performance harness: encoding cache + incremental relaxation +
parallel pass pipeline.

Measures the optimize→assemble hot path on a repeated-relaxation workload
(the paper's §III overhead argument: MAO must be cheap enough to sit inside
every compile) and records the numbers in ``BENCH_hotpath.json`` so the
perf trajectory is tracked from PR to PR:

* **baseline** — the pre-fast-path configuration: reference full-re-walk
  relaxation with the encoding cache disabled;
* **fast** — incremental relaxation with a warm encoding cache;
* **parallel** — the pass pipeline at ``--jobs N`` vs. serial.

The fast path must be *bit-identical* to the baseline: the harness
diffs section images and symbol tables and refuses to report a speedup
for wrong output.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # CI smoke
    python scripts/perf_report.py BENCH_hotpath.json             # pretty-print
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import api  # noqa: E402
from repro.analysis.relax import (  # noqa: E402
    relax_section,
    relax_section_reference,
)
from repro.ir import parse_unit  # noqa: E402
from repro.workloads.corpus import CorpusConfig, generate_corpus_text  # noqa: E402
from repro.x86 import encoder  # noqa: E402

#: A relaxation-heavy kernel: chained branch spans sized so promotions
#: ripple backward one per sweep — the worst case that motivated repeated
#: relaxation (paper §II).
def _cascade_text(chains: int) -> str:
    parts = [".text", "casc:"]
    filler = "\n".join("    addl $1, %eax" for _ in range(41))
    for i in range(chains):
        parts.append("    jmp .T%d" % i)
        parts.append(filler)
        if i > 0:
            parts.append(".T%d:" % (i - 1))
    parts.append("    jmp .Tend")
    parts.append(".T%d:" % (chains - 1))
    parts.append("\n".join("    addl $2, %ebx" for _ in range(45)))
    parts.append(".Tend:")
    parts.append("    ret")
    return "\n".join(parts) + "\n"


def _layout_fingerprint(layout) -> tuple:
    return (layout.size, layout.iterations, layout.symtab,
            layout.code_image())


def bench_relax(text: str, repeats: int) -> dict:
    """Repeated relaxation: baseline (reference + cold cache) vs. fast
    (incremental + warm cache)."""
    unit_base = parse_unit(text)
    unit_fast = parse_unit(text)
    section_base = unit_base.get_section(".text")
    section_fast = unit_fast.get_section(".text")

    encoder.reset_encoding_cache()
    with encoder.encoding_cache_disabled():
        start = time.perf_counter()
        for _ in range(repeats):
            layout_base = relax_section_reference(unit_base, section_base)
        baseline_s = time.perf_counter() - start

    encoder.reset_encoding_cache()
    start = time.perf_counter()
    for _ in range(repeats):
        layout_fast = relax_section(unit_fast, section_fast)
    fast_s = time.perf_counter() - start
    cache = encoder.encoding_cache_stats()

    identical = (_layout_fingerprint(layout_base)
                 == _layout_fingerprint(layout_fast))
    return {
        "repeats": repeats,
        "baseline_s": round(baseline_s, 6),
        "fast_s": round(fast_s, 6),
        "speedup": round(baseline_s / fast_s, 3) if fast_s else None,
        "relax_iterations": layout_fast.iterations,
        "byte_identical": identical,
        "cache_hits": int(cache["hits"]),
        "cache_misses": int(cache["misses"]),
        "cache_bypasses": int(cache["bypasses"]),
        "cache_hit_rate": round(cache["hit_rate"], 4),
    }


def bench_parallel(text: str, spec: str, jobs: int, backend: str) -> dict:
    """Pass pipeline: serial vs. --jobs N, with a determinism check.

    Both runs go through the ``repro.api`` facade on pre-parsed units
    (so only the pass pipeline is timed); the serial run's PipelineResult
    ships in the output under its versioned ``pymao.pipeline/1`` schema
    for ``perf_report.py`` to consume.
    """
    unit_serial = parse_unit(text)
    unit_parallel = parse_unit(text)

    start = time.perf_counter()
    serial = api.optimize(unit_serial, spec)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = api.optimize(unit_parallel, spec, jobs=jobs,
                            parallel_backend=backend)
    parallel_s = time.perf_counter() - start

    reports_match = ([r.to_dict() for r in serial.reports]
                     == [r.to_dict() for r in parallel.reports])
    return {
        "spec": spec,
        "jobs": jobs,
        "backend": backend,
        "functions": len(unit_serial.functions),
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "deterministic": (serial.to_asm() == parallel.to_asm()
                          and reports_match),
        "pipeline": serial.pipeline.to_dict(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="hot-path perf harness (cache + incremental relax + "
                    "parallel pipeline)")
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--scale", type=float, default=None,
                        help="corpus scale (default 0.02, quick 0.005)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="relaxation sweeps to time (default 20, "
                             "quick 5)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel measurement")
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("-o", "--output", default=None,
                        help="JSON output path (default: "
                             "BENCH_hotpath.json next to the repo root)")
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None \
        else (0.005 if args.quick else 0.02)
    repeats = args.repeats if args.repeats is not None \
        else (5 if args.quick else 20)
    output = args.output or os.path.join(_REPO_ROOT, "BENCH_hotpath.json")

    corpus_text = generate_corpus_text(CorpusConfig(seed=1, scale=scale))
    cascade_text = _cascade_text(chains=4 if args.quick else 8)

    print("workload: corpus scale=%s (%d bytes of asm), %d relax repeats"
          % (scale, len(corpus_text), repeats))

    corpus = bench_relax(corpus_text, repeats)
    cascade = bench_relax(cascade_text, repeats)
    parallel = bench_parallel(corpus_text, "REDTEST:REDZEE:ADDADD",
                              args.jobs, args.backend)

    results = {
        "schema": "mao-bench-hotpath/1",
        "config": {
            "quick": args.quick,
            "scale": scale,
            "repeats": repeats,
            "jobs": args.jobs,
            "backend": args.backend,
        },
        "relax_corpus": corpus,
        "relax_cascade": cascade,
        "parallel_pipeline": parallel,
    }

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % output)

    ok = True
    for key in ("relax_corpus", "relax_cascade"):
        r = results[key]
        print("%-14s %6.1fx speedup  (%.4fs -> %.4fs)  "
              "hit-rate %.1f%%  iters=%d  identical=%s"
              % (key, r["speedup"], r["baseline_s"], r["fast_s"],
                 100.0 * r["cache_hit_rate"], r["relax_iterations"],
                 r["byte_identical"]))
        ok = ok and r["byte_identical"]
    p = results["parallel_pipeline"]
    print("parallel       %6.2fx vs serial (%s backend, jobs=%d)  "
          "deterministic=%s"
          % (p["speedup"], p["backend"], p["jobs"], p["deterministic"]))
    ok = ok and p["deterministic"]

    if not ok:
        print("FAIL: fast path output diverged from baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
