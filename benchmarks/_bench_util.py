"""Shared helpers for the reproduction benches.

Every bench regenerates one table or figure from the paper's evaluation and
prints it as ``paper vs measured`` rows (collected into
``bench_output.txt`` by the top-level run).  pytest-benchmark wraps the
dominant computation of each bench so the harness also reports wall-clock
cost; reproduction numbers ride along in ``benchmark.extra_info``.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from repro import api
from repro.uarch.pipeline import SimStats


def measure(source_or_unit, model, max_steps=4_000_000,
            args=None) -> SimStats:
    """Interpret + time a program on a processor model (streaming)."""
    sim = api.simulate(source_or_unit, model, max_steps=max_steps,
                       args=args)
    assert sim.result.reason == "ret", sim.result.reason
    return sim.stats


def delta_for_pass(program, spec: str, model) -> float:
    """Relative speedup (positive = pass helped) of a pass pipeline."""
    base = measure(program.unit(), model, max_steps=program.max_steps)
    opt_unit = api.optimize(program.unit(), spec).unit
    opt = measure(opt_unit, model, max_steps=program.max_steps)
    return base.cycles / opt.cycles - 1.0


#: Rendered tables accumulated during the session; the bench conftest
#: prints them in the terminal summary (past pytest's output capture) so
#: `pytest benchmarks/ --benchmark-only | tee bench_output.txt` records
#: every paper-vs-measured row without needing ``-s``.
COLLECTED_TABLES: List[str] = []


def report(title: str, header: List[str],
           rows: List[Tuple], extra: Optional[str] = None) -> None:
    """Render one reproduction table (emitted in the session summary)."""
    lines = ["", "=== %s ===" % title]
    widths = [max(len(str(header[i])),
                  max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    lines.append(line)
    lines.append("-" * len(line))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(row, widths)))
    if extra:
        lines.append(extra)
    text = "\n".join(lines)
    COLLECTED_TABLES.append(text)
    sys.stdout.write(text + "\n")      # visible immediately under -s
    sys.stdout.flush()


def pct(value: float) -> str:
    return "%+.2f%%" % (value * 100.0)


