"""Figure 7: transformation counts and aggregate performance, SPEC2000 int.

The paper's table reports, per benchmark, how often the basic passes
transformed the code (L = LOOP16 alignments, NOP = Nopinizer insertions,
M = REDMOV rewrites, T = REDTEST removals, SCHED = instructions moved) and
the aggregate performance of the combined pipeline on an Intel platform:
geomean +0.38%, or +0.61% excluding the 253.perlbmk regression (-2.14%).

Our corpora are ~100x smaller than SPEC binaries, so the static counts are
proportionally smaller; the shape targets are the signs, perlbmk being the
outlier regression, and a small positive geomean.
"""

import math

from _bench_util import measure, pct, report

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.uarch.profiles import core2
from repro.workloads.spec import SPEC2000_INT, build_benchmark

PIPELINE = "LOOP16:NOPIN=seed[2]:REDMOV:REDTEST:SCHED"

PAPER_PERF = {
    "164.gzip": 0.02, "175.vpr": 1.06, "176.gcc": 1.29, "181.mcf": 0.13,
    "186.crafty": 0.43, "197.parser": 0.18, "252.eon": 1.01,
    "253.perlbmk": -2.14, "254.gap": 0.12, "255.vortex": 0.44,
    "256.bzip2": 1.04, "300.twolf": 0.97,
}
PAPER_GEOMEAN = 0.38
PAPER_GEOMEAN_NO_PERLBMK = 0.61


def test_fig7_counts_and_aggregate(once):
    def run():
        table = {}
        for name in SPEC2000_INT:
            program = build_benchmark(name)
            base = measure(program.unit(), core2(),
                           max_steps=program.max_steps)
            unit = program.unit()
            result = run_passes(unit, PIPELINE)
            opt = measure(unit, core2(), max_steps=program.max_steps)
            table[name] = {
                "L": result.stats_for("LOOP16").get("aligned", 0),
                "NOP": result.stats_for("NOPIN").get("nops_inserted", 0),
                "M": result.stats_for("REDMOV").get("rewritten", 0),
                "T": result.stats_for("REDTEST").get("removed", 0),
                "SCHED": result.stats_for("SCHED").get(
                    "instructions_moved", 0),
                "perf": base.cycles / opt.cycles - 1.0,
            }
        return table

    table = once(run)
    rows = []
    for name in SPEC2000_INT:
        entry = table[name]
        rows.append((name, entry["L"], entry["NOP"], entry["M"],
                     entry["T"], entry["SCHED"], pct(entry["perf"]),
                     "%+.2f%%" % PAPER_PERF[name]))
    perfs = [table[name]["perf"] for name in SPEC2000_INT]
    geomean = math.exp(sum(math.log(1 + p) for p in perfs)
                       / len(perfs)) - 1
    no_perl = [table[n]["perf"] for n in SPEC2000_INT
               if n != "253.perlbmk"]
    geomean_no_perl = math.exp(sum(math.log(1 + p) for p in no_perl)
                               / len(no_perl)) - 1
    report(
        "Fig. 7 — transformation counts and aggregate perf "
        "(pipeline %s)" % PIPELINE,
        ["benchmark", "L", "NOP", "M", "T", "SCHED", "perf",
         "paper perf"],
        rows,
        extra="geomean %s (paper %+.2f%%)   w/o 253.perlbmk %s "
              "(paper %+.2f%%)"
        % (pct(geomean), PAPER_GEOMEAN, pct(geomean_no_perl),
           PAPER_GEOMEAN_NO_PERLBMK))

    once.benchmark.extra_info["geomean"] = geomean
    once.benchmark.extra_info["geomean_no_perlbmk"] = geomean_no_perl
    # Shape assertions.
    assert geomean > 0, "aggregate must be a small net win"
    assert geomean_no_perl > geomean, \
        "perlbmk must drag the aggregate down"
    assert table["253.perlbmk"]["perf"] < 0, \
        "perlbmk is the paper's outlier regression"
    assert min(table[n]["NOP"] for n in SPEC2000_INT) >= 0
    # Benchmarks with no short loops report L = 0, like the paper's '-'.
    assert table["164.gzip"]["L"] == 0
