#!/usr/bin/env python3
"""Discovery-harness exactness gate: ``repro.discover`` vs hidden models.

The claim: ``mao discover --seed S`` recovers **every discoverable
parameter** of ``blinded_profile(S)`` exactly — all fourteen drawn
parameters of ``data/blinded.ranges.json`` (line size, decode width,
LSD capacity and threshold, predictor shift and penalty, five
latencies, forwarding bandwidth, two port sets) — for multiple distinct
seeds, with the assembled model cycle-exact against the oracle on the
cross-check battery, and byte-identical output at any ``--jobs`` count.

Results land in ``BENCH_discover.json`` (schema
``mao-bench-discover/1``), rendered and gated by
``scripts/perf_report.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_discover.py          # full run
    PYTHONPATH=src python benchmarks/bench_discover.py --quick  # CI smoke
    python scripts/perf_report.py BENCH_discover.json           # pretty-print
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import api  # noqa: E402
from repro.discover import DISCOVER_BENCH_SCHEMA  # noqa: E402
from repro.uarch import profiles, tables  # noqa: E402

FULL_SEEDS = (3, 9, 11)
QUICK_SEEDS = (3, 9)

#: The seed whose full run is repeated at jobs=4 to pin determinism.
DETERMINISM_SEED = 3


def run_seed(seed: int, paths) -> dict:
    """Discover one blinded profile and compare against the hidden model."""
    start = time.perf_counter()
    result = api.discover(seed=seed)
    wall = time.perf_counter() - start
    hidden = profiles.blinded_profile(seed)
    params = []
    for path in paths:
        want = tables.param_value(hidden, path)
        got = result.params.get(path)
        params.append({"path": path, "hidden": want, "inferred": got,
                       "match": got == want})
    crosscheck = result.crosscheck
    row = {
        "seed": seed,
        "params": params,
        "all_match": all(p["match"] for p in params),
        "crosscheck": {"matched": crosscheck.get("matched"),
                       "total": crosscheck.get("total")},
        "wall_s": round(wall, 3),
    }
    print("seed %2d: %d/%d parameters exact, crosscheck %s/%s (%.1fs)"
          % (seed, sum(p["match"] for p in params), len(params),
             crosscheck.get("matched"), crosscheck.get("total"), wall))
    for p in params:
        if not p["match"]:
            print("   MISMATCH %-42s hidden %r inferred %r"
                  % (p["path"], p["hidden"], p["inferred"]))
    return row, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="gate the discovery harness: exact parameter "
                    "recovery on seeded blinded profiles")
    parser.add_argument("--quick", action="store_true",
                        help="fewer seeds, skip the jobs-determinism "
                             "re-run (CI smoke)")
    parser.add_argument("-o", "--output",
                        default=os.path.join(_REPO_ROOT,
                                             "BENCH_discover.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    seeds = QUICK_SEEDS if args.quick else FULL_SEEDS
    paths = tables.drawn_paths(tables.load_ranges())
    rows = []
    results = {}
    for seed in seeds:
        row, result = run_seed(seed, paths)
        rows.append(row)
        results[seed] = result

    determinism = None
    if not args.quick:
        reference = json.dumps(results[DETERMINISM_SEED].to_dict(),
                               sort_keys=True)
        rerun = api.discover(seed=DETERMINISM_SEED, jobs=4)
        identical = json.dumps(rerun.to_dict(), sort_keys=True) == reference
        determinism = {"seed": DETERMINISM_SEED, "jobs": [1, 4],
                       "byte_identical": identical}
        print("determinism seed %d jobs 1 vs 4: %s"
              % (DETERMINISM_SEED,
                 "byte-identical" if identical else "DIFFERS"))

    doc = {
        "schema": DISCOVER_BENCH_SCHEMA,
        "config": {"quick": bool(args.quick), "seeds": list(seeds),
                   "paths": list(paths)},
        "rows": rows,
        "determinism": determinism,
        "totals": {
            "seeds": len(rows),
            "params_checked": sum(len(r["params"]) for r in rows),
            "params_matched": sum(sum(p["match"] for p in r["params"])
                                  for r in rows),
        },
    }
    with open(args.output, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    exact = all(r["all_match"] for r in rows)
    checked = all(r["crosscheck"]["matched"] == r["crosscheck"]["total"]
                  for r in rows)
    deterministic = determinism is None or determinism["byte_identical"]
    if not (exact and checked and deterministic and len(rows) >= 2):
        print("FAIL: exact=%s crosscheck=%s deterministic=%s seeds=%d"
              % (exact, checked, deterministic, len(rows)),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
