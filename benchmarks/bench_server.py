#!/usr/bin/env python3
"""Closed-loop load generator for the optimization service.

Models the deployment story the server exists for: a fleet of build
workers hammering one long-lived ``mao serve`` process, which amortizes
one warm artifact cache and one worker pool across all of them.  The
harness starts a real server subprocess (``mao serve --port 0``), then
drives a mixed 100-request workload — optimize requests over distinct
translation units plus a slice of simulate requests — through
``repro.server.client`` from several closed-loop client threads:

* **cold** — empty cache directory: every optimize request parses and
  runs the full pass pipeline server-side;
* **warm** — the identical workload again: every optimize request must
  *hit* and replay its stored artifact.

Recorded per round: throughput (requests/s), p50/p99 latency, optimize
cache hit rate, errors.  The server is then SIGTERMed and must drain to
exit code 0.  Results land in ``BENCH_server.json`` (schema
``mao-bench-server/1``), rendered and gated by
``scripts/perf_report.py`` — warm throughput >= 3x cold on full runs,
100% warm hit rate, byte-identical asm across rounds, graceful exit.

**Fleet mode** (``--fleet 1,2,4``) sweeps the same closed-loop workload
over ``mao fleet`` at increasing worker counts and records throughput
scaling into ``BENCH_fleet.json`` (schema ``mao-bench-fleet/1``).  The
sweep measures *capacity* scaling: each worker runs one execution slot
with a pinned per-request service floor (the server's ``test_delay_s``
hook) on top of the real optimize/simulate CPU work.  The floor models
the I/O-wait share of real traffic, and it is what makes the sweep
honest on small hosts: sleeps overlap across worker processes, so
adding workers multiplies capacity even on one core — on a multicore
host the CPU share parallelizes on top.  The gate
(``scripts/perf_report.py``) requires >= 1.8x throughput at 4 workers
vs 1, zero errors, and graceful drains.

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py            # full run
    PYTHONPATH=src python benchmarks/bench_server.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_server.py --fleet 1,2,4
    python scripts/perf_report.py BENCH_server.json             # pretty-print
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.server.client import Client  # noqa: E402
from repro.workloads.corpus import CorpusConfig, generate_corpus_text  # noqa: E402,E501

SPEC = "REDZEE:REDTEST:REDMOV:ADDADD"
SIM_MAX_STEPS = 60_000

#: Pinned per-request service floor for the fleet sweep (seconds).
FLEET_FLOOR_S = 0.25


def build_workload(n_requests: int, sim_share: float,
                   scale: float) -> list:
    """The mixed request list: ``("optimize", index, source)`` over
    distinct seeded translation units, plus ``("simulate",)`` items,
    deterministically interleaved."""
    n_sim = int(n_requests * sim_share)
    n_opt = n_requests - n_sim
    items = []
    for index in range(n_opt):
        config = CorpusConfig(seed=4000 + index, scale=scale, functions=2)
        items.append(("optimize", index, generate_corpus_text(config)))
    items.extend([("simulate",)] * n_sim)
    random.Random(42).shuffle(items)
    return items


class ServerProcess:
    """One ``mao serve`` subprocess on an ephemeral port."""

    def __init__(self, cache_dir: str, max_inflight: int) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--cache-dir", cache_dir,
             "--max-inflight", str(max_inflight),
             "--max-queue", "256"],
            stdout=subprocess.PIPE, text=True, env=env)
        line = self.proc.stdout.readline().strip()
        if "listening on" not in line:
            raise RuntimeError("server failed to start: %r" % line)
        self.port = int(line.rsplit(":", 1)[1])

    def shutdown(self) -> int:
        """SIGTERM and return the exit code (0 = graceful drain)."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return -9


class FleetProcess:
    """One ``mao fleet`` subprocess (front door + workers) on an
    ephemeral port."""

    def __init__(self, workers: int, cache_dir: str, salt: str,
                 floor_s: float) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "fleet", "--port", "0",
             "--workers", str(workers),
             "--worker-inflight", "1",
             "--worker-queue", "256",
             "--max-queue", "256",
             "--cache-dir", cache_dir,
             "--cache-salt", salt,
             "--test-delay-s", "%g" % floor_s],
            stdout=subprocess.PIPE, text=True, env=env)
        line = self.proc.stdout.readline().strip()
        if "listening on" not in line:
            raise RuntimeError("fleet failed to start: %r" % line)
        address = line.split("listening on ", 1)[1].split()[0]
        self.port = int(address.rsplit(":", 1)[1])

    def shutdown(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return -9


def run_round(port: int, workload: list, clients: int,
              sim_max_steps: int = SIM_MAX_STEPS) -> dict:
    """Drive the whole workload closed-loop from *clients* threads."""
    work: "queue.Queue" = queue.Queue()
    for item in workload:
        work.put(item)
    latencies = []
    asm_by_index = {}
    hits = misses = other = errors = 0
    lock = threading.Lock()

    def worker() -> None:
        nonlocal hits, misses, other, errors
        with Client(port=port, retries=8, backoff_s=0.05) as client:
            while True:
                try:
                    item = work.get_nowait()
                except queue.Empty:
                    return
                start = time.perf_counter()
                try:
                    if item[0] == "optimize":
                        result = client.optimize(item[2], SPEC,
                                                 filename="tu_%d.s"
                                                 % item[1])
                    else:
                        result = client.simulate(workload="hash_bench",
                                                 core="core2",
                                                 max_steps=sim_max_steps)
                except Exception:
                    with lock:
                        errors += 1
                    continue
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
                    if item[0] == "optimize":
                        asm_by_index[item[1]] = result["asm"]
                        state = result.get("cache")
                        if state == "hit":
                            hits += 1
                        elif state == "miss":
                            misses += 1
                        else:
                            other += 1

    start = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    latencies.sort()

    def percentile(fraction: float) -> float:
        if not latencies:
            return 0.0
        return latencies[int(fraction * (len(latencies) - 1))]

    looked_up = hits + misses + other
    return {
        "requests": len(workload),
        "errors": errors,
        "elapsed_s": round(elapsed, 6),
        "throughput_rps": round(len(workload) / elapsed, 3),
        "p50_ms": round(percentile(0.50) * 1000, 3),
        "p99_ms": round(percentile(0.99) * 1000, 3),
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": round(hits / looked_up, 4) if looked_up else 0.0,
        "_asm": asm_by_index,
    }


def run_fleet_sweep(worker_counts: list, n_requests: int, clients: int,
                    floor_s: float, quick: bool, output: str) -> int:
    """The fleet scaling sweep: the same workload at each worker count,
    every round cold (a per-round cache salt defeats cross-round hits),
    throughput compared against the 1-worker baseline.

    Requests are deliberately light (small translation units, short
    simulations) so the pinned service floor — not this one host's CPU
    — is the dominant per-request cost; that is what makes the measured
    number *capacity* scaling rather than a proxy for core count."""
    workload = build_workload(n_requests, sim_share=0.1, scale=0.0005)
    print("fleet sweep: %d requests, %d clients, workers %s, "
          "service floor %.2fs, host cpus %s"
          % (n_requests, clients,
             ",".join(str(n) for n in worker_counts), floor_s,
             os.cpu_count()))

    rounds = []
    workdir = tempfile.mkdtemp(prefix="pymao-bench-fleet-")
    try:
        for workers in worker_counts:
            fleet = FleetProcess(workers,
                                 os.path.join(workdir, "cache"),
                                 "bench-fleet-w%d" % workers, floor_s)
            try:
                row = run_round(fleet.port, workload, clients,
                                sim_max_steps=20_000)
            finally:
                exit_code = fleet.shutdown()
            row.pop("_asm")
            row["workers"] = workers
            row["graceful_exit"] = exit_code == 0
            rounds.append(row)
            print("workers=%-2d %7.2f req/s  p50=%.0fms p99=%.0fms  "
                  "errors=%d graceful-exit=%s"
                  % (workers, row["throughput_rps"], row["p50_ms"],
                     row["p99_ms"], row["errors"], row["graceful_exit"]))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    base = next((r for r in rounds if r["workers"] == 1), rounds[0])
    scaling = {}
    for row in rounds:
        if row is not base and base["throughput_rps"]:
            scaling["%dv%d" % (row["workers"], base["workers"])] = round(
                row["throughput_rps"] / base["throughput_rps"], 3)

    results = {
        "schema": "mao-bench-fleet/1",
        "config": {
            "quick": quick,
            "requests": n_requests,
            "clients": clients,
            "worker_counts": worker_counts,
            "per_worker_inflight": 1,
            "service_floor_s": floor_s,
            "host_cpus": os.cpu_count(),
            "spec": SPEC,
        },
        "rounds": rounds,
        "scaling": scaling,
        "scaling_4v1": scaling.get("4v1"),
    }
    with open(output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % output)
    if scaling:
        print("scaling: %s" % "  ".join(
            "%s=%.2fx" % pair for pair in sorted(scaling.items())))

    ok = all(r["errors"] == 0 and r["graceful_exit"] for r in rounds)
    if not ok:
        print("FAIL: a fleet round dropped requests or did not drain "
              "gracefully", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop load generator for mao serve (warm "
                    "shared-cache replay vs cold optimization)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny workload for CI smoke runs")
    parser.add_argument("--requests", type=int, default=None,
                        help="workload size (default 100, quick 16)")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop client threads (default 4)")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="server execution slots (default 4)")
    parser.add_argument("--fleet", default=None, metavar="N,N,...",
                        help="run the fleet scaling sweep at these "
                             "worker counts (e.g. 1,2,4) instead of the "
                             "cold/warm single-server rounds; writes "
                             "BENCH_fleet.json")
    parser.add_argument("-o", "--output", default=None,
                        help="JSON output path (default: "
                             "BENCH_server.json / BENCH_fleet.json next "
                             "to the repo root)")
    args = parser.parse_args(argv)

    if args.fleet is not None:
        worker_counts = [int(n) for n in args.fleet.split(",") if n]
        n_requests = args.requests if args.requests is not None \
            else (16 if args.quick else 40)
        clients = max(args.clients, 2 * max(worker_counts))
        output = args.output or os.path.join(_REPO_ROOT,
                                             "BENCH_fleet.json")
        return run_fleet_sweep(worker_counts, n_requests, clients,
                               FLEET_FLOOR_S, args.quick, output)

    n_requests = args.requests if args.requests is not None \
        else (16 if args.quick else 100)
    scale = 0.002 if args.quick else 0.004
    output = args.output or os.path.join(_REPO_ROOT, "BENCH_server.json")

    workload = build_workload(n_requests, sim_share=0.12, scale=scale)
    n_opt = sum(1 for item in workload if item[0] == "optimize")
    print("workload: %d requests (%d optimize + %d simulate), "
          "%d clients, spec %s"
          % (n_requests, n_opt, n_requests - n_opt, args.clients, SPEC))

    workdir = tempfile.mkdtemp(prefix="pymao-bench-server-")
    try:
        server = ServerProcess(os.path.join(workdir, "cache"),
                               args.max_inflight)
        try:
            cold = run_round(server.port, workload, args.clients)
            warm = run_round(server.port, workload, args.clients)
        finally:
            exit_code = server.shutdown()
        cold_asm = cold.pop("_asm")
        warm_asm = warm.pop("_asm")
        byte_identical = cold_asm == warm_asm and len(cold_asm) == n_opt
        speedup = round(warm["throughput_rps"] / cold["throughput_rps"], 3) \
            if cold["throughput_rps"] else None

        results = {
            "schema": "mao-bench-server/1",
            "config": {
                "quick": args.quick,
                "requests": n_requests,
                "optimize_requests": n_opt,
                "simulate_requests": n_requests - n_opt,
                "clients": args.clients,
                "max_inflight": args.max_inflight,
                "spec": SPEC,
            },
            "server_cold": cold,
            "server_warm": warm,
            "speedup": speedup,
            "byte_identical": byte_identical,
            "graceful_exit": exit_code == 0,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % output)

    for name in ("server_cold", "server_warm"):
        row = results[name]
        print("%-12s %7.2f req/s  p50=%.1fms p99=%.1fms  "
              "hits=%d misses=%d errors=%d"
              % (name, row["throughput_rps"], row["p50_ms"], row["p99_ms"],
                 row["cache_hits"], row["cache_misses"], row["errors"]))
    print("speedup %.1fx  byte-identical=%s  graceful-exit=%s"
          % (speedup, byte_identical, results["graceful_exit"]))

    ok = (byte_identical and results["graceful_exit"]
          and warm["hit_rate"] == 1.0
          and warm["errors"] == 0 and cold["errors"] == 0)
    if not ok:
        print("FAIL: warm round diverged from cold, dropped requests, "
              "or the drain was not graceful", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
