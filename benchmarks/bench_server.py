#!/usr/bin/env python3
"""Closed-loop load generator for the optimization service.

Models the deployment story the server exists for: a fleet of build
workers hammering one long-lived ``mao serve`` process, which amortizes
one warm artifact cache and one worker pool across all of them.  The
harness starts a real server subprocess (``mao serve --port 0``), then
drives a mixed 100-request workload — optimize requests over distinct
translation units plus a slice of simulate requests — through
``repro.server.client`` from several closed-loop client threads:

* **cold** — empty cache directory: every optimize request parses and
  runs the full pass pipeline server-side;
* **warm** — the identical workload again: every optimize request must
  *hit* and replay its stored artifact.

Recorded per round: throughput (requests/s), p50/p99 latency, optimize
cache hit rate, errors.  The server is then SIGTERMed and must drain to
exit code 0.  Results land in ``BENCH_server.json`` (schema
``mao-bench-server/1``), rendered and gated by
``scripts/perf_report.py`` — warm throughput >= 3x cold on full runs,
100% warm hit rate, byte-identical asm across rounds, graceful exit.

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py            # full run
    PYTHONPATH=src python benchmarks/bench_server.py --quick    # CI smoke
    python scripts/perf_report.py BENCH_server.json             # pretty-print
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.server.client import Client  # noqa: E402
from repro.workloads.corpus import CorpusConfig, generate_corpus_text  # noqa: E402,E501

SPEC = "REDZEE:REDTEST:REDMOV:ADDADD"
SIM_MAX_STEPS = 60_000


def build_workload(n_requests: int, sim_share: float,
                   scale: float) -> list:
    """The mixed request list: ``("optimize", index, source)`` over
    distinct seeded translation units, plus ``("simulate",)`` items,
    deterministically interleaved."""
    n_sim = int(n_requests * sim_share)
    n_opt = n_requests - n_sim
    items = []
    for index in range(n_opt):
        config = CorpusConfig(seed=4000 + index, scale=scale, functions=2)
        items.append(("optimize", index, generate_corpus_text(config)))
    items.extend([("simulate",)] * n_sim)
    random.Random(42).shuffle(items)
    return items


class ServerProcess:
    """One ``mao serve`` subprocess on an ephemeral port."""

    def __init__(self, cache_dir: str, max_inflight: int) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--cache-dir", cache_dir,
             "--max-inflight", str(max_inflight),
             "--max-queue", "256"],
            stdout=subprocess.PIPE, text=True, env=env)
        line = self.proc.stdout.readline().strip()
        if "listening on" not in line:
            raise RuntimeError("server failed to start: %r" % line)
        self.port = int(line.rsplit(":", 1)[1])

    def shutdown(self) -> int:
        """SIGTERM and return the exit code (0 = graceful drain)."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=120)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return -9


def run_round(port: int, workload: list, clients: int) -> dict:
    """Drive the whole workload closed-loop from *clients* threads."""
    work: "queue.Queue" = queue.Queue()
    for item in workload:
        work.put(item)
    latencies = []
    asm_by_index = {}
    hits = misses = other = errors = 0
    lock = threading.Lock()

    def worker() -> None:
        nonlocal hits, misses, other, errors
        with Client(port=port, retries=8, backoff_s=0.05) as client:
            while True:
                try:
                    item = work.get_nowait()
                except queue.Empty:
                    return
                start = time.perf_counter()
                try:
                    if item[0] == "optimize":
                        result = client.optimize(item[2], SPEC,
                                                 filename="tu_%d.s"
                                                 % item[1])
                    else:
                        result = client.simulate(workload="hash_bench",
                                                 core="core2",
                                                 max_steps=SIM_MAX_STEPS)
                except Exception:
                    with lock:
                        errors += 1
                    continue
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
                    if item[0] == "optimize":
                        asm_by_index[item[1]] = result["asm"]
                        state = result.get("cache")
                        if state == "hit":
                            hits += 1
                        elif state == "miss":
                            misses += 1
                        else:
                            other += 1

    start = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    latencies.sort()

    def percentile(fraction: float) -> float:
        if not latencies:
            return 0.0
        return latencies[int(fraction * (len(latencies) - 1))]

    looked_up = hits + misses + other
    return {
        "requests": len(workload),
        "errors": errors,
        "elapsed_s": round(elapsed, 6),
        "throughput_rps": round(len(workload) / elapsed, 3),
        "p50_ms": round(percentile(0.50) * 1000, 3),
        "p99_ms": round(percentile(0.99) * 1000, 3),
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": round(hits / looked_up, 4) if looked_up else 0.0,
        "_asm": asm_by_index,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop load generator for mao serve (warm "
                    "shared-cache replay vs cold optimization)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny workload for CI smoke runs")
    parser.add_argument("--requests", type=int, default=None,
                        help="workload size (default 100, quick 16)")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop client threads (default 4)")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="server execution slots (default 4)")
    parser.add_argument("-o", "--output", default=None,
                        help="JSON output path (default: "
                             "BENCH_server.json next to the repo root)")
    args = parser.parse_args(argv)

    n_requests = args.requests if args.requests is not None \
        else (16 if args.quick else 100)
    scale = 0.002 if args.quick else 0.004
    output = args.output or os.path.join(_REPO_ROOT, "BENCH_server.json")

    workload = build_workload(n_requests, sim_share=0.12, scale=scale)
    n_opt = sum(1 for item in workload if item[0] == "optimize")
    print("workload: %d requests (%d optimize + %d simulate), "
          "%d clients, spec %s"
          % (n_requests, n_opt, n_requests - n_opt, args.clients, SPEC))

    workdir = tempfile.mkdtemp(prefix="pymao-bench-server-")
    try:
        server = ServerProcess(os.path.join(workdir, "cache"),
                               args.max_inflight)
        try:
            cold = run_round(server.port, workload, args.clients)
            warm = run_round(server.port, workload, args.clients)
        finally:
            exit_code = server.shutdown()
        cold_asm = cold.pop("_asm")
        warm_asm = warm.pop("_asm")
        byte_identical = cold_asm == warm_asm and len(cold_asm) == n_opt
        speedup = round(warm["throughput_rps"] / cold["throughput_rps"], 3) \
            if cold["throughput_rps"] else None

        results = {
            "schema": "mao-bench-server/1",
            "config": {
                "quick": args.quick,
                "requests": n_requests,
                "optimize_requests": n_opt,
                "simulate_requests": n_requests - n_opt,
                "clients": args.clients,
                "max_inflight": args.max_inflight,
                "spec": SPEC,
            },
            "server_cold": cold,
            "server_warm": warm,
            "speedup": speedup,
            "byte_identical": byte_identical,
            "graceful_exit": exit_code == 0,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % output)

    for name in ("server_cold", "server_warm"):
        row = results[name]
        print("%-12s %7.2f req/s  p50=%.1fms p99=%.1fms  "
              "hits=%d misses=%d errors=%d"
              % (name, row["throughput_rps"], row["p50_ms"], row["p99_ms"],
                 row["cache_hits"], row["cache_misses"], row["errors"]))
    print("speedup %.1fx  byte-identical=%s  graceful-exit=%s"
          % (speedup, byte_identical, results["graceful_exit"]))

    ok = (byte_identical and results["graceful_exit"]
          and warm["hit_rate"] == 1.0
          and warm["errors"] == 0 and cold["errors"] == 0)
    if not ok:
        print("FAIL: warm round diverged from cold, dropped requests, "
              "or the drain was not graceful", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
