"""§V.A: compile-time cost of MAO.

"MAO is based on gas, which, during normal operation, only performs one
"pass" over the assembly instructions.  MAO performs multiple passes ...
for a typical set of passes, MAO is about five times slower than gas."

The stand-in for "gas alone" is parse + one relaxation/encode; "MAO" runs
the typical optimization pipeline on top before emitting.
"""

import time

from _bench_util import report

from repro.analysis.relax import relax_section
from repro.ir import parse_unit
from repro.passes import run_passes
from repro.workloads.corpus import CorpusConfig, generate_corpus_text

PAPER_SLOWDOWN = 5.0
PIPELINE = "REDZEE:REDTEST:REDMOV:ADDADD:LOOP16:SCHED"


def _assemble_only(source):
    unit = parse_unit(source)
    relax_section(unit, unit.get_section(".text"))
    return unit


def _full_mao(source):
    unit = parse_unit(source)
    run_passes(unit, PIPELINE)
    relax_section(unit, unit.get_section(".text"))
    unit.to_asm()
    return unit


def test_compile_time_ratio(once):
    source = generate_corpus_text(CorpusConfig(seed=2, scale=0.02))

    def run():
        t0 = time.perf_counter()
        _assemble_only(source)
        gas_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        _full_mao(source)
        mao_time = time.perf_counter() - t0
        return gas_time, mao_time

    gas_time, mao_time = once(run)
    ratio = mao_time / gas_time
    report(
        "§V.A — compile time: \"gas\" (parse+encode) vs MAO "
        "(parse+%s+encode+emit)" % PIPELINE,
        ["stage", "seconds"],
        [("assemble only", "%.3f" % gas_time),
         ("full MAO pipeline", "%.3f" % mao_time)],
        extra="slowdown: %.1fx  (paper: ~%.0fx for a typical set of "
              "passes)" % (ratio, PAPER_SLOWDOWN))
    once.benchmark.extra_info["slowdown"] = ratio
    assert ratio > 1.5, "multiple passes must cost measurably more"
    assert ratio < 30, "but stay within an order of magnitude"
