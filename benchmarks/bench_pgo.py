#!/usr/bin/env python3
"""Profile-guided re-optimization vs the static default pipeline on a
skewed (Zipf-like) request mix over the anecdote kernel corpus.

The serving fiction: each kernel is a compilation input arriving with a
different request rate.  A profile (``pymao.profile/1``) is ingested per
input with weight = its request count; the PGO engine classifies the
corpus into hot / warm / cold tiers and spends the tuning budget only on
the hot decile, optimizing the rest with the default ``REDTEST:LOOP16``
spec (warm) or passing it through untouched (cold).

Two claims, one tracked file:

* **Cheaper than tuning everything** — profile-guided mode must execute
  <= 1/3 of the pass runs a full autotune of every corpus input costs
  (``pgo_pass_runs * 3 <= tune_all_pass_runs``).
* **Better than the static default** — the request-weighted total of
  *simulated* cycles under profile-guided specs must be strictly below
  optimizing every input with the static default spec.  The win comes
  from the hot tier riding the tuner's winner; warm inputs tie the
  static default by construction.

Results land in ``BENCH_pgo.json`` (schema ``mao-bench-pgo/1``),
rendered and gated by ``scripts/perf_report.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_pgo.py          # full run
    PYTHONPATH=src python benchmarks/bench_pgo.py --quick  # CI smoke
    python scripts/perf_report.py BENCH_pgo.json           # pretty-print
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src", "repro")):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import api  # noqa: E402
from repro.batch.cache import ArtifactCache  # noqa: E402
from repro.pgo import (  # noqa: E402
    PGO_BENCH_SCHEMA,
    PgoPolicy,
    ProfileStore,
    build_profile,
)
from repro.tune import DEFAULT_SPEC  # noqa: E402
from repro.workloads import kernels  # noqa: E402

CORE = "core2"

#: Zipf-like request mix: (kernel, factory kwargs, requests).  The
#: unmodified ``fig4_loop`` carries the bulk of the traffic, so the hot
#: tier concentrates the tuning budget where the cycles actually
#: accrue; the long tail is kernel *variants* (shifted alignment,
#: injected nops, prefix padding) — each a distinct input the
#: tune-everything strawman has to pay full search cost for.
MIX = (
    ("fig4_loop", {}, 64),
    ("mcf_fig1", {}, 18),
    ("eon_loop", {}, 9),
    ("nested_short_loops", {}, 6),
    ("hash_bench", {}, 4),
    ("fig4_loop", {"shift_nops": 2}, 3),
    ("fig4_loop", {"shift_nops": 4}, 2),
    ("mcf_fig1", {"insert_nop": True}, 2),
    ("eon_loop", {"pre_bytes": 8}, 1),
    ("hash_bench", {"scheduled": True}, 1),
)

QUICK_MIX = (
    ("fig4_loop", {}, 60),
    ("mcf_fig1", {}, 20),
    ("eon_loop", {}, 10),
    ("fig4_loop", {"shift_nops": 2}, 6),
    ("fig4_loop", {"shift_nops": 4}, 4),
    ("mcf_fig1", {"insert_nop": True}, 4),
)

#: Sampling parameters for the ingested profiles.
PERIOD = 97
SEED = 7

#: Candidate budget handed to each hot-tier tune (and to the
#: tune-everything strawman, so the comparison is apples-to-apples).
TUNE_BUDGET_PER_INPUT = 24

#: Hot = the smallest weight-descending prefix covering this fraction
#: of total sample weight.  0.55 puts exactly the heaviest input in the
#: hot tier for both mixes above.
HOT_FRACTION = 0.55

#: The cost gate: PGO may spend at most 1/(this factor) of the pass
#: executions a full autotune of the corpus costs.
MIN_PASS_RUN_FACTOR = 3.0


def input_label(kernel: str, kwargs: dict) -> str:
    if not kwargs:
        return kernel
    inner = ",".join("%s=%s" % (key, kwargs[key]) for key in sorted(kwargs))
    return "%s[%s]" % (kernel, inner)


def policy() -> PgoPolicy:
    return PgoPolicy(hot_fraction=HOT_FRACTION,
                     tune_budget=10_000,
                     tune_budget_per_input=TUNE_BUDGET_PER_INPUT)


def simulated_cycles(asm: str) -> int:
    return int(api.simulate(asm, CORE).cycles)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark profile-guided re-optimization against "
                    "the static default spec and a full autotune")
    parser.add_argument("--quick", action="store_true",
                        help="smaller kernel mix for CI smoke")
    parser.add_argument("-o", "--output",
                        default=os.path.join(_REPO_ROOT, "BENCH_pgo.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    mix = [(input_label(kernel, kwargs),
            getattr(kernels, kernel)(**kwargs), count)
           for kernel, kwargs, count in (QUICK_MIX if args.quick else MIX)]

    rows = {name: {"kernel": name, "requests": count}
            for name, _, count in mix}

    with tempfile.TemporaryDirectory(prefix="pymao-bench-pgo-") as root:
        # -- Mode A: static default spec on every input -------------------
        for name, source, _ in mix:
            optimized = api.optimize(source, DEFAULT_SPEC)
            rows[name]["static_cycles"] = simulated_cycles(
                optimized.unit.to_asm())

        # -- Mode B: full autotune of every input (the strawman) ----------
        tune_all_runs = 0
        start = time.perf_counter()
        for index, (name, source, _) in enumerate(mix):
            cache = ArtifactCache(os.path.join(root, "tune-all",
                                               "input-%d" % index))
            tuned = api.tune(source, CORE,
                             budget=TUNE_BUDGET_PER_INPUT, cache=cache)
            executed = tuned.pass_runs.get("executed", 0)
            tune_all_runs += executed
            rows[name]["tune_all_cycles"] = simulated_cycles(tuned.asm)
            rows[name]["tune_all_pass_runs"] = executed
        tune_all_s = time.perf_counter() - start

        # -- Mode C: profile-guided ---------------------------------------
        store = ProfileStore(os.path.join(root, "profiles"))
        for name, source, count in mix:
            store.ingest(build_profile(source, period=PERIOD,
                                       seed=SEED, weight=float(count)))
        start = time.perf_counter()
        guided = api.optimize_many(
            [(name, source) for name, source, _ in mix],
            profile_guided=True,
            core=CORE,
            profile_dir=store.root,
            pgo_policy=policy(),
            cache=ArtifactCache(os.path.join(root, "pgo-cache"),
                                salt="bench-pgo"))
        pgo_s = time.perf_counter() - start
        pgo_runs = 0
        for item in guided:
            if not item.ok:
                print("FATAL: guided optimize failed for %s: %s"
                      % (item.name, item.error))
                return 1
            row = rows[item.name]
            row["tier"] = item.pgo["tier"]
            row["origin"] = item.pgo["origin"]
            row["spec"] = item.pgo["spec"]
            row["pgo_cycles"] = simulated_cycles(item.asm)
            row["pgo_pass_runs"] = item.pgo.get("pass_runs", 0)
            pgo_runs += row["pgo_pass_runs"]

    ordered = [rows[name] for name, _, _ in mix]
    for row in ordered:
        row["weighted_static_cycles"] = \
            row["static_cycles"] * row["requests"]
        row["weighted_pgo_cycles"] = row["pgo_cycles"] * row["requests"]
        print("%-20s req %3d tier %-4s %-32s static %7d pgo %7d runs %3d"
              % (row["kernel"], row["requests"], row["tier"],
                 row["spec"] or "<passthrough>", row["static_cycles"],
                 row["pgo_cycles"], row["pgo_pass_runs"]))

    static_total = sum(row["weighted_static_cycles"] for row in ordered)
    pgo_total = sum(row["weighted_pgo_cycles"] for row in ordered)
    totals = {
        "static_cycles": static_total,
        "pgo_cycles": pgo_total,
        "cycles_saved": static_total - pgo_total,
        "pgo_pass_runs": pgo_runs,
        "tune_all_pass_runs": tune_all_runs,
        "min_pass_run_factor": MIN_PASS_RUN_FACTOR,
        "hot_inputs": sum(1 for row in ordered if row["tier"] == "hot"),
        "pgo_beats_static": bool(pgo_total < static_total),
        "pgo_within_budget": bool(
            pgo_runs * MIN_PASS_RUN_FACTOR <= tune_all_runs),
        "tune_all_seconds": round(tune_all_s, 4),
        "pgo_seconds": round(pgo_s, 4),
    }

    results = {
        "schema": PGO_BENCH_SCHEMA,
        "config": {
            "quick": bool(args.quick),
            "core": CORE,
            "mix": [[name, count] for name, _, count in mix],
            "default_spec": DEFAULT_SPEC,
            "period": PERIOD,
            "seed": SEED,
            "hot_fraction": HOT_FRACTION,
            "tune_budget_per_input": TUNE_BUDGET_PER_INPUT,
        },
        "rows": ordered,
        "totals": totals,
    }
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    print("cycles: static %d -> pgo %d (saved %d); pass runs: pgo %d vs "
          "tune-all %d (<= 1/%.0f required)"
          % (static_total, pgo_total, totals["cycles_saved"], pgo_runs,
             tune_all_runs, MIN_PASS_RUN_FACTOR))

    ok = totals["pgo_beats_static"] and totals["pgo_within_budget"]
    print("gates: %s" % ("ok" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
