"""§III.C.h: the prefetcher PC-alias quirk and the PREFALIGN pass.

"For example, on a specific Intel platform prefetchable loads should not
be located at multiples of 256 bytes.  We have not yet implemented a pass
to address this issue."  — this repo does implement it (PREFALIGN), and
this bench shows the quirk and the fix.

The kernel chases prefetch-friendly sequential lines through a dependent
chain, so dead prefetching shows up in cycles, not just miss counts.
"""

from _bench_util import measure, pct, report

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.sim import load_unit
from repro.uarch.profiles import core2


def kernel(pad):
    nops = "\n".join("    nop" for _ in range(pad))
    # Each loaded value is folded into the next address computation, so a
    # miss stalls the loop (latency-bound streaming).
    return f"""
.text
.globl main
main:
    leaq buf(%rip), %rdi
    movq $1200, %rbp
    xorq %r9, %r9
{nops}
.Lload:
    movq (%rdi,%r9,8), %rdx
    addq %rdx, %rax
    addq %rdx, %r9
    addq $8, %r9
    andq $0x1fff, %r9
    subq $1, %rbp
    jne .Lload
    ret
.section .bss
.align 64
buf:
    .zero 65536
"""


def find_aliased_pad():
    for pad in range(300):
        program = load_unit(parse_unit(kernel(pad)))
        if program.symtab[".Lload"] % 256 == 0:
            return pad
    raise AssertionError("no aliased placement")


def test_prefetch_alias_quirk(once):
    def run():
        pad = find_aliased_pad()
        aliased = measure(kernel(pad), core2(), max_steps=1_000_000)
        unit = parse_unit(kernel(pad))
        result = run_passes(unit, "PREFALIGN")
        fixed = measure(unit, core2(), max_steps=1_000_000)
        return pad, aliased, fixed, result

    pad, aliased, fixed, result = once(run)
    speedup = aliased.cycles / fixed.cycles - 1.0
    report(
        "§III.C.h — load at a 256-byte multiple (prefetch-table alias)",
        ["variant", "cycles", "L1D misses"],
        [("load PC % 256 == 0", aliased.cycles, aliased["L1D_MISSES"]),
         ("after PREFALIGN (+%d nop)" % result.total("PREFALIGN",
                                                     "loads_moved"),
          fixed.cycles, fixed["L1D_MISSES"])],
        extra="speedup from one NOP: %s  (the paper reports the quirk "
              "but had no pass; PREFALIGN is this repo's extension)"
        % pct(speedup))
    once.benchmark.extra_info["speedup"] = speedup
    assert aliased["L1D_MISSES"] > fixed["L1D_MISSES"] * 5
    assert speedup > 0.0
