"""Ablation benches for the design choices DESIGN.md calls out.

1. SCHED cost function: critical-path priority vs source order vs reverse
   order — the paper's claim that the cost function is the heuristic's
   seat ("By changing the cost functions ... different scheduling
   heuristics can be implemented").
2. Basic-block vs extended-basic-block scheduling — the paper's future
   work ("We expect the impact to become much higher once we extend the
   pass to schedule across basic blocks").
3. LSD on/off — isolates how much of the Figs. 4/5 speedup is the Loop
   Stream Detector rather than plain decode-line count.
4. Branch-predictor table size — the aliasing effects of §III.C.g only
   exist because the tables are small and untagged.
"""

import dataclasses

from _bench_util import measure, pct, report

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.passes.scheduler import (
    DependenceDAG,
    ListSchedulingPass,
    critical_path_cost,
)
from repro.uarch.profiles import core2
from repro.workloads import kernels

SPLIT_HASH = """
.text
.globl main
main:
    movl $0x9e3779b9, %ebx
    movl $0x85ebca6b, %ecx
    movl $0xc2b2ae35, %edx
    movl $17, %edi
    movl $99, %r8d
    movq $3000, %rbp
.Lloop:
    imull $0x5bd1e995, %ecx, %r10d
    xorl %edi, %ebx
    subl %ebx, %ecx
.Lsplit1:
    subl %ebx, %edx
    movl %ebx, %edi
    shrl $12, %edi
    xorl %edi, %edx
.Lsplit2:
    leal (%r8,%rdi), %eax
    movl %eax, %ecx
    sarl %ecx
    xorl %r10d, %ecx
    movl %ecx, %r11d
    xorb $1, %r11b
    leal 2(%r11), %r8d
    subq $1, %rbp
    jne .Lloop
    movl %edx, %eax
    ret
"""


def _source_order_cost(dag: DependenceDAG):
    return [float(len(dag.entries) - i) for i in range(len(dag.entries))]


def _anti_critical_cost(dag: DependenceDAG):
    return [-c for c in critical_path_cost(dag)]


def test_sched_cost_function_ablation(once):
    from repro.passes.manager import register_func_pass

    @register_func_pass("SCHED_SRC")
    class SourceOrderSched(ListSchedulingPass):
        cost_function = staticmethod(_source_order_cost)

    @register_func_pass("SCHED_ANTI")
    class AntiCriticalSched(ListSchedulingPass):
        cost_function = staticmethod(_anti_critical_cost)

    def run():
        results = {}
        for label, spec in [("no scheduling", None),
                            ("critical path (default)", "SCHED"),
                            ("source order", "SCHED_SRC"),
                            ("anti-critical (worst case)", "SCHED_ANTI")]:
            unit = parse_unit(kernels.hash_bench(False))
            if spec:
                run_passes(unit, spec)
            results[label] = measure(unit, core2())
        return results

    results = once(run)
    base = results["no scheduling"].cycles
    rows = [(label, stats.cycles, pct(base / stats.cycles - 1.0))
            for label, stats in results.items()]
    report("Ablation — SCHED cost functions on the hashing kernel",
           ["cost function", "cycles", "vs no scheduling"], rows)
    assert results["critical path (default)"].cycles <= base
    assert results["source order"].cycles == base
    assert results["anti-critical (worst case)"].cycles \
        >= results["critical path (default)"].cycles


def test_ebb_scheduling_ablation(once):
    def run():
        results = {}
        for label, spec in [("baseline", None),
                            ("SCHED (single BB, as the paper ships)",
                             "SCHED"),
                            ("SCHED ebb[1] (the paper's future work)",
                             "SCHED=ebb[1]")]:
            unit = parse_unit(SPLIT_HASH)
            result = run_passes(unit, spec) if spec else None
            results[label] = (measure(unit, core2()), result)
        return results

    results = once(run)
    base = results["baseline"][0].cycles
    rows = []
    for label, (stats, result) in results.items():
        moved = result.total("SCHED", "instructions_moved") if result \
            else 0
        rows.append((label, stats.cycles, moved,
                     pct(base / stats.cycles - 1.0)))
    report("Ablation — single-BB vs extended-BB scheduling "
           "(label-split hashing kernel)",
           ["variant", "cycles", "moved", "delta"], rows,
           extra="the paper: \"We expect the impact to become much higher"
                 " once we extend the pass to schedule across basic "
                 "blocks\" — confirmed")
    single = results["SCHED (single BB, as the paper ships)"][0].cycles
    extended = results["SCHED ebb[1] (the paper's future work)"][0].cycles
    assert extended < single, "EBB scheduling must beat single-BB here"


def test_lsd_ablation(once):
    def run():
        with_lsd = measure(kernels.fig4_loop(6), core2())
        model = core2()
        model.lsd_enabled = False
        without_lsd = measure(kernels.fig4_loop(6), model)
        return with_lsd, without_lsd

    with_lsd, without_lsd = once(run)
    report("Ablation — Loop Stream Detector on/off (Fig. 5 layout)",
           ["model", "cycles", "LSD_UOPS"],
           [("LSD enabled", with_lsd.cycles, with_lsd["LSD_UOPS"]),
            ("LSD disabled", without_lsd.cycles,
             without_lsd["LSD_UOPS"])],
           extra="the Figs. 4/5 speedup is the LSD, not the line count "
                 "alone: %.2fx"
           % (without_lsd.cycles / with_lsd.cycles))
    assert without_lsd.cycles > with_lsd.cycles


def test_bp_table_size_ablation(once):
    def run():
        rows = []
        for size in (64, 512, 4096):
            model = core2()
            model.bp_table_size = size
            stats = measure(kernels.nested_short_loops(False), model)
            rows.append((size, stats.cycles, stats["BR_MISP"]))
        return rows

    rows = once(run)
    report("Ablation — branch-predictor table size "
           "(aliased nested loops)",
           ["table entries", "cycles", "BR_MISP"], rows,
           extra="aliasing persists across sizes: the branches share one "
                 "bucket because of the PC>>5 *index*, not capacity")
    # The two aliased branches are < 32 bytes apart: no table size fixes
    # the same-bucket collision.
    mispredicts = [r[2] for r in rows]
    assert max(mispredicts) - min(mispredicts) < max(mispredicts) * 0.2
