"""§II: repeated relaxation behaviour.

"Relaxation in the general case is an NP-complete problem.  In the
implementation there is a built-in limit of 100 iterations, but in
practice almost every relaxation succeeds in a few iterations, and it
never fails."
"""

import collections
import random

from _bench_util import report

from repro.analysis.relax import relax_section
from repro.ir import parse_unit
from repro.passes import run_passes
from repro.workloads.corpus import CorpusConfig, generate_corpus


def test_relaxation_iterations(once):
    """Relax the corpus (plus nop-perturbed variants): iteration histogram."""
    def run():
        histogram = collections.Counter()
        rng = random.Random(0)
        unit = generate_corpus(CorpusConfig(seed=1, scale=0.02))
        layout = relax_section(unit, unit.get_section(".text"))
        histogram[layout.iterations] += 1
        # Nopinizer perturbations force re-relaxation with moved code —
        # the workload that motivated repeated relaxation.
        for seed in range(8):
            perturbed = generate_corpus(CorpusConfig(seed=1, scale=0.02))
            run_passes(perturbed, "NOPIN=seed[%d]+density[0.2]" % seed)
            layout = relax_section(perturbed,
                                   perturbed.get_section(".text"))
            assert layout.converged
            histogram[layout.iterations] += 1
        return histogram

    histogram = once(run)
    rows = [("%d iteration(s)" % k, v)
            for k, v in sorted(histogram.items())]
    report("§II — relaxation convergence over corpus variants",
           ["iterations to converge", "layouts"], rows,
           extra="paper: \"almost every relaxation succeeds in a few "
                 "iterations, and it never fails\" (limit: 100)")
    once.benchmark.extra_info["max_iterations"] = max(histogram)
    assert max(histogram) <= 10, "must converge in a few iterations"


def test_relaxation_cascade(once):
    """A worst-case cascade: overlapping branch spans sized so each
    branch fits rel8 only while the next one stays short — one promotion
    per iteration ripples backward through the chain."""
    N = 8

    def run():
        parts = [".text", "f:"]
        filler = "\n".join("    addl $1, %eax" for _ in range(41))
        for i in range(N):
            parts.append("    jmp .T%d" % i)
            parts.append(filler)                   # 123 bytes
            if i > 0:
                parts.append(".T%d:" % (i - 1))
        parts.append("    jmp .Tend")
        parts.append(".T%d:" % (N - 1))
        parts.append("\n".join("    addl $2, %ebx"
                                for _ in range(45)))  # force the last long
        parts.append(".Tend:")
        parts.append("    ret")
        unit = parse_unit("\n".join(parts) + "\n")
        return relax_section(unit, unit.get_section(".text"))

    layout = once(run)
    report("§II — engineered relaxation cascade",
           ["metric", "value"],
           [("branches", N + 1),
            ("iterations", layout.iterations),
            ("converged", layout.converged),
            ("final size (bytes)", layout.size)])
    assert layout.converged
    assert layout.iterations >= 3, "the cascade must actually ripple"
    assert layout.iterations <= 100
