"""§II: indirect-branch resolution tiers.

"When we updated the internal compiler to a newer version, we found that
246 out of 320 indirect branches could no longer be resolved.  After
adding a single pattern that uses the data flow framework's reaching
definitions functionality, only 4 out of the 320 indirect branches (1.2%)
remained unresolved."
"""

from _bench_util import report

from repro.analysis.cfg import build_cfg
from repro.workloads.corpus import CorpusConfig, generate_corpus

PAPER_TOTAL = 320
PAPER_UNRESOLVED_BASE = 246
PAPER_UNRESOLVED_WITH_RD = 4


def test_indirect_branch_resolution(once):
    def run():
        unit = generate_corpus(CorpusConfig(seed=0, scale=1.0,
                                            filler_run=2,
                                            indirect_only=True))
        base_unresolved = 0
        rd_unresolved = 0
        total = 0
        tiers = {"operand": 0, "reaching-defs": 0}
        for function in unit.functions:
            # Base patterns only (tier 1).
            cfg1 = build_cfg(function, unit, resolve_indirect=False)
            base_unresolved += len(cfg1.unresolved_branches)
            # Plus the reaching-definitions pattern (tier 2).
            cfg2 = build_cfg(function, unit, resolve_indirect=True)
            rd_unresolved += len(cfg2.unresolved_branches)
            for _, tier in cfg2.resolved_branches:
                tiers[tier] += 1
            total += len(cfg2.resolved_branches) \
                + len(cfg2.unresolved_branches)
        return total, base_unresolved, rd_unresolved, tiers

    total, base_unresolved, rd_unresolved, tiers = once(run)
    report(
        "§II — indirect branch resolution (corpus at paper scale)",
        ["stage", "unresolved", "paper"],
        [
            ("base patterns only", "%d / %d" % (base_unresolved, total),
             "%d / %d" % (PAPER_UNRESOLVED_BASE, PAPER_TOTAL)),
            ("+ reaching-definitions pattern",
             "%d / %d (%.1f%%)" % (rd_unresolved, total,
                                   100.0 * rd_unresolved / total),
             "%d / %d (1.2%%)" % (PAPER_UNRESOLVED_WITH_RD, PAPER_TOTAL)),
        ],
        extra="resolved by operand pattern: %d, by reaching-defs: %d"
        % (tiers["operand"], tiers["reaching-defs"]))

    once.benchmark.extra_info["total"] = total
    once.benchmark.extra_info["unresolved"] = rd_unresolved
    assert total == PAPER_TOTAL
    assert base_unresolved == PAPER_UNRESOLVED_BASE
    assert rd_unresolved == PAPER_UNRESOLVED_WITH_RD
