"""§V.B, SCHED table: single-basic-block scheduling on SPEC 2006.

    410.bwaves      +1.29%
    434.zeusmp      +1.20%
    483.xalancbmk   +1.25%
    429.mcf         +1.43%
    464.h264ref     +1.75%
"""

from _bench_util import delta_for_pass, pct, report

from repro.uarch.profiles import core2
from repro.workloads.spec import SPEC2006_SCHED, build_benchmark

PAPER = {"410.bwaves": 1.29, "434.zeusmp": 1.20, "483.xalancbmk": 1.25,
         "429.mcf": 1.43, "464.h264ref": 1.75}


def test_sched_spec2006(once):
    def run():
        return {name: delta_for_pass(build_benchmark(name), "SCHED",
                                     core2())
                for name in SPEC2006_SCHED}

    measured = once(run)
    rows = [(name, pct(measured[name]), "%+.2f%%" % PAPER[name])
            for name in SPEC2006_SCHED]
    report("§V.B — SCHED (list scheduling) on SPEC 2006",
           ["benchmark", "measured", "paper"], rows,
           extra="gains are modest, as in the paper: the pass schedules "
                 "single basic blocks only")
    for name, value in measured.items():
        once.benchmark.extra_info[name] = value
        assert value > 0, "%s must benefit from scheduling" % name
        assert value < 0.08, "gains must stay modest"
