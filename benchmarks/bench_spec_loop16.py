"""§V.B, LOOP16 tables: short-loop alignment on Core-2 and Opteron.

    Core-2:                      Opteron:
    C++/252.eon   -4.43%         C++/252.eon   -5.86%
    C/175.vpr     +1.25%         C/181.mcf     +2.47%
    C/176.gcc     +1.41%         C/186.crafty  +2.45%
    C/300.twolf   +1.18%
"""

from _bench_util import delta_for_pass, pct, report

from repro.uarch.profiles import core2, opteron
from repro.workloads.spec import build_benchmark

PAPER_CORE2 = {"252.eon": -4.43, "175.vpr": 1.25, "176.gcc": 1.41,
               "300.twolf": 1.18}
PAPER_OPTERON = {"252.eon": -5.86, "181.mcf": 2.47, "186.crafty": 2.45}


def _sweep(names, model):
    results = {}
    for name in names:
        results[name] = delta_for_pass(build_benchmark(name), "LOOP16",
                                       model)
    return results


def test_loop16_core2(once):
    measured = once(_sweep, list(PAPER_CORE2), core2())
    rows = [(name, pct(measured[name]), "%+.2f%%" % PAPER_CORE2[name])
            for name in PAPER_CORE2]
    report("§V.B — LOOP16 on Intel Core-2",
           ["benchmark", "measured", "paper"], rows)
    assert measured["252.eon"] < 0
    for name in ("175.vpr", "176.gcc", "300.twolf"):
        assert measured[name] > 0
        once.benchmark.extra_info[name] = measured[name]


def test_loop16_opteron(once):
    measured = once(_sweep, list(PAPER_OPTERON), opteron())
    rows = [(name, pct(measured[name]), "%+.2f%%" % PAPER_OPTERON[name])
            for name in PAPER_OPTERON]
    report("§V.B — the same LOOP16 transformation on AMD Opteron",
           ["benchmark", "measured", "paper"], rows,
           extra="a different set of benchmarks benefits — and eon still "
                 "degrades — matching the paper's cross-platform story")
    assert measured["252.eon"] < 0
    assert measured["181.mcf"] > 0
    assert measured["186.crafty"] > 0
    for name, value in measured.items():
        once.benchmark.extra_info[name] = value


def test_loop16_platform_crossover(once):
    """mcf/crafty gain on Opteron but stay near-flat on Core-2 (they are
    absent from the paper's Core-2 table)."""
    measured = once(_sweep, ["181.mcf", "186.crafty"], core2())
    report("§V.B — LOOP16 crossover check (Core-2 side)",
           ["benchmark", "measured", "paper"],
           [(n, pct(v), "(not listed: ~0)")
            for n, v in measured.items()])
    for value in measured.values():
        assert abs(value) < 0.02
