PYTHON ?= python

.PHONY: test bench bench-quick perf-report clean

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_hotpath.py
	$(PYTHON) scripts/perf_report.py --check

bench-quick:
	$(PYTHON) benchmarks/bench_hotpath.py --quick
	$(PYTHON) scripts/perf_report.py

perf-report:
	$(PYTHON) scripts/perf_report.py

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
