PYTHON ?= python

.PHONY: test bench bench-quick bench-suite perf-report clean

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_hotpath.py
	$(PYTHON) benchmarks/bench_sim_engine.py
	$(PYTHON) scripts/perf_report.py --check

bench-quick:
	$(PYTHON) benchmarks/bench_hotpath.py --quick
	$(PYTHON) benchmarks/bench_sim_engine.py --quick
	$(PYTHON) scripts/perf_report.py

bench-suite:
	PYTHONPATH=src $(PYTHON) scripts/bench_runner.py --quick
	$(PYTHON) scripts/perf_report.py --check

perf-report:
	$(PYTHON) scripts/perf_report.py

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
