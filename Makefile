PYTHON ?= python

.PHONY: test bench bench-quick bench-suite bench-batch-smoke \
	bench-predict-smoke perf-report trace-smoke server-smoke \
	bench-server-smoke fleet-smoke bench-fleet-smoke tune-smoke \
	bench-tune-smoke pgo-smoke bench-pgo-smoke discover-smoke \
	bench-discover-smoke check-tracked-artifacts clean

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_hotpath.py
	$(PYTHON) benchmarks/bench_sim_engine.py
	$(PYTHON) benchmarks/bench_batch.py
	$(PYTHON) benchmarks/bench_server.py
	$(PYTHON) benchmarks/bench_server.py --fleet 1,2,4
	$(PYTHON) benchmarks/bench_predict.py
	$(PYTHON) benchmarks/bench_tune.py
	$(PYTHON) benchmarks/bench_pgo.py
	$(PYTHON) benchmarks/bench_discover.py
	$(PYTHON) scripts/perf_report.py --check

bench-quick:
	$(PYTHON) benchmarks/bench_hotpath.py --quick
	$(PYTHON) benchmarks/bench_sim_engine.py --quick
	$(PYTHON) scripts/perf_report.py

bench-suite:
	PYTHONPATH=src $(PYTHON) scripts/bench_runner.py --quick
	$(PYTHON) scripts/perf_report.py --check

# Tiny-corpus batch smoke: the bench itself exits non-zero unless the
# warm run hits 100% and replays byte-identical output, and the report
# gate re-checks the recorded JSON.
bench-batch-smoke:
	$(PYTHON) benchmarks/bench_batch.py --quick \
		-o /tmp/pymao_bench_batch.json
	$(PYTHON) scripts/perf_report.py --check /tmp/pymao_bench_batch.json

# Throughput-predictor smoke: cross-validate the static model against
# the trace simulator at --quick scales; the bench and the report gate
# both require every kernel x core in its pinned band, ranking
# agreement >= 0.75, and a >=100x prediction-over-simulation speedup.
bench-predict-smoke:
	$(PYTHON) benchmarks/bench_predict.py --quick \
		-o /tmp/pymao_bench_predict.json
	$(PYTHON) scripts/perf_report.py --check /tmp/pymao_bench_predict.json

# Autotuner CLI smoke: a cold `mao tune` whose winner must beat (or
# tie) the default spec on predicted cycles, then a warm re-tune that
# must replay every pipeline prefix from the artifact cache with zero
# pass executions and an identical winner.
tune-smoke:
	$(PYTHON) scripts/tune_smoke.py

# Autotuner bench smoke: tuned-never-worse + >=3x fewer pass runs than
# exhaustive enumeration + zero-execution warm replay, on the --quick
# kernel matrix; the report gate re-checks the recorded JSON.
bench-tune-smoke:
	$(PYTHON) benchmarks/bench_tune.py --quick \
		-o /tmp/pymao_bench_tune.json
	$(PYTHON) scripts/perf_report.py --check /tmp/pymao_bench_tune.json

# Profile-guided loop smoke: two `mao profile --ingest` CLI runs, a
# hot/warm guided optimize whose second run replays from the
# epoch-salted cache, a targeted epoch invalidation, and a
# /v1/profile ingest + lookup round-trip against a live server.
pgo-smoke:
	$(PYTHON) scripts/pgo_smoke.py

# Profile-guided bench smoke: on the --quick Zipf mix, PGO must beat
# the static default spec on request-weighted simulated cycles while
# executing <= 1/3 of a full corpus autotune's pass runs; the report
# gate re-checks the recorded JSON.
bench-pgo-smoke:
	$(PYTHON) benchmarks/bench_pgo.py --quick \
		-o /tmp/pymao_bench_pgo.json
	$(PYTHON) scripts/perf_report.py --check /tmp/pymao_bench_pgo.json

# Discovery CLI smoke: `mao discover --seed` must recover every drawn
# parameter of the hidden blinded profile exactly, the emitted
# pymao.uarch/1 doc must predict identically via --core file, the
# profile registry must list the data-only cores, and a corrupt
# profile must die with a clean one-line error.
discover-smoke:
	$(PYTHON) scripts/discover_smoke.py

# Discovery bench smoke: two distinct seeds, every drawn parameter
# exact and the assembled model cycle-exact on the cross-check
# battery; the report gate re-checks the recorded JSON.
bench-discover-smoke:
	$(PYTHON) benchmarks/bench_discover.py --quick \
		-o /tmp/pymao_bench_discover.json
	$(PYTHON) scripts/perf_report.py --check /tmp/pymao_bench_discover.json

# Fail if any compiled artifact is tracked: __pycache__ directories
# and *.pyc files must never re-enter the index.
check-tracked-artifacts:
	@bad=$$(git ls-files | grep -E '(^|/)__pycache__(/|$$)|\.py[cod]$$' \
		|| true); \
	if [ -n "$$bad" ]; then \
		echo "tracked compiled artifacts:" >&2; echo "$$bad" >&2; \
		exit 1; \
	fi
	@echo "no tracked compiled artifacts"

# Service lifecycle smoke: start `mao serve` on an ephemeral port, one
# optimize + one metrics scrape through repro.server.client, SIGTERM,
# and require a graceful-drain exit code of 0.
server-smoke:
	$(PYTHON) scripts/server_smoke.py

# Tiny-workload service bench: the harness exits non-zero unless the
# warm round hits 100%, replays byte-identical asm, and drains clean;
# the report gate re-checks the recorded JSON.
bench-server-smoke:
	$(PYTHON) benchmarks/bench_server.py --quick \
		-o /tmp/pymao_bench_server.json
	$(PYTHON) scripts/perf_report.py --check /tmp/pymao_bench_server.json

# Fleet lifecycle smoke: front door + 2 workers, mixed requests,
# cache-affinity + cross-worker hits, a rolling restart fired
# mid-stream against zero-retry clients (zero dropped admitted
# requests), and a graceful SIGTERM drain of the whole fleet.
fleet-smoke:
	$(PYTHON) scripts/fleet_smoke.py

# Tiny fleet scaling sweep (1 and 2 workers): the harness exits
# non-zero on any dropped request or non-graceful drain; the report
# gate re-checks the recorded JSON (the 1.8x gate applies to the full
# 1,2,4 sweep that produces the tracked BENCH_fleet.json).
bench-fleet-smoke:
	$(PYTHON) benchmarks/bench_server.py --quick --fleet 1,2 \
		-o /tmp/pymao_bench_fleet.json
	$(PYTHON) scripts/perf_report.py --check /tmp/pymao_bench_fleet.json

perf-report:
	$(PYTHON) scripts/perf_report.py

trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli --mao=REDTEST:LOOP16 \
		--sim core2 --jobs 2 --trace-out /tmp/pymao_trace.jsonl \
		-o /tmp/pymao_trace_out.s examples/hot_loop.s
	$(PYTHON) scripts/validate_trace.py /tmp/pymao_trace.jsonl \
		--require optimize --require parse --require pass:REDTEST \
		--require relax --require simulate
	$(PYTHON) scripts/perf_report.py --check /tmp/pymao_trace.jsonl

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis
