# A small optimize+simulate smoke input: a redundant test to delete
# (REDTEST), a short loop for LOOP16 to consider, and a `main` entry the
# simulator can run to completion.  Used by `make trace-smoke` and CI.
.text
.globl main
.type main, @function
main:
    movl $200, %ecx
    xorl %eax, %eax
.Lloop:
    addl $3, %eax
    testl %eax, %eax
    subl $1, %ecx
    jne .Lloop
    mov %eax, %eax
    ret
