#!/usr/bin/env python3
"""Chasing micro-architectural performance cliffs (paper §III.C).

Reproduces the paper's two headline alignment anecdotes on the simulated
Core-2:

1. the 252.eon short loop that runs ~20% slower when it straddles a
   16-byte decode line — and the LOOP16 pass fixing it;
2. the Fig. 4/5 loop that doubles in speed once six NOPs shift it into the
   Loop Stream Detector's four-line budget — via the LSDFIT pass.

Run:  python examples/alignment_cliffs.py
"""

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.sim import run_unit
from repro.uarch import core2, simulate_trace
from repro.workloads import kernels


def cycles_of(source, spec=None):
    unit = parse_unit(source)
    if spec:
        run_passes(unit, spec)
    result = run_unit(unit, collect_trace=True, max_steps=3_000_000)
    return simulate_trace(result.trace, core2())


def eon_cliff() -> None:
    print("== the 252.eon decode-line cliff ==")
    for pre in (0, 9):
        base = cycles_of(kernels.eon_loop(pre_bytes=pre))
        fixed = cycles_of(kernels.eon_loop(pre_bytes=pre), "LOOP16")
        print("  loop at +%d bytes: %6d cycles | after LOOP16: %6d "
              "(%+.1f%%)" % (pre, base.cycles, fixed.cycles,
                             100 * (base.cycles / fixed.cycles - 1)))


def lsd_cliff() -> None:
    print("\n== the Fig. 4/5 Loop Stream Detector cliff ==")
    base = cycles_of(kernels.fig4_loop(0))
    fixed = cycles_of(kernels.fig4_loop(0), "LSDFIT")
    print("  initial layout: %d cycles (LSD uops: %d)"
          % (base.cycles, base["LSD_UOPS"]))
    print("  after LSDFIT:   %d cycles (LSD uops: %d) -> %.2fx"
          % (fixed.cycles, fixed["LSD_UOPS"],
             base.cycles / fixed.cycles))


if __name__ == "__main__":
    eon_cliff()
    lsd_cliff()
