#!/usr/bin/env python3
"""Profile-guided inverse prefetching (paper §III.E.k).

The full flow the paper describes: run the program once under a memory
reuse-distance profiler, identify loads with little reuse, then let the
PREFNTA pass turn exactly those loads non-temporal (a `prefetchnta` to the
same address right before the load, so its fill replaces a single cache
way).  Cache pollution drops; the hot working set survives.

Run:  python examples/profile_guided_prefetch.py
"""

from repro.ir import parse_unit
from repro.passes import run_passes
from repro.passes.prefetch_nta import register_profile
from repro.profiling import reuse_distance_profile
from repro.sim import run_unit
from repro.uarch import core2, simulate_trace

# Hot pointer-chase ring + cold streaming sweep: the stream evicts the
# ring unless its fills are non-temporal.
import random as _random
_rng = _random.Random(42)
# A shuffled ring: sequential layouts would be hidden by the next-line
# prefetcher, so the chase order is a random permutation.
_perm = list(range(128))
_rng.shuffle(_perm)
_next = {_perm[_i]: _perm[(_i + 1) % 128] for _i in range(128)}
CHAIN = "\n".join("    .quad hot+%d\n    .zero 56" % (_next[i] * 64)
                  for i in range(128))
SOURCE = f"""
.text
.globl main
main:
    push %rbx
    leaq stream(%rip), %rsi
    movq $40, %rbx
    xorq %r9, %r9
.Louter:
    leaq hot(%rip), %rdi
    movq $128, %rax
.Lchase:
    movq (%rdi), %rdi
    subq $1, %rax
    jne .Lchase
    movq $512, %rcx
.Lstream:
    movq (%rsi,%r9,8), %rdx
    addq %rdx, %r11
    addq $8, %r9
    andq $0x3fff, %r9
    subq $1, %rcx
    jne .Lstream
    subq $1, %rbx
    jne .Louter
    pop %rbx
    ret
.section .data
.align 64
hot:
{CHAIN}
.section .bss
.align 64
stream:
    .zero 131072
"""


def cycles_of(unit):
    result = run_unit(unit, collect_trace=True, max_steps=3_000_000)
    return simulate_trace(result.trace, core2())


def main() -> None:
    # 1. Profile: reuse distance per load site, over a real execution.
    profiled = run_unit(parse_unit(SOURCE), collect_trace=True,
                        max_steps=3_000_000)
    profile = reuse_distance_profile(profiled.trace)
    print("reuse profile (source line -> median distance in lines):")
    for lineno, distance in sorted(profile.items()):
        print("   line %3d: %s" % (lineno, distance))

    # 2. Optimize: the pass marks loads whose reuse distance exceeds the
    #    cache capacity.
    register_profile("example", profile)
    base = cycles_of(parse_unit(SOURCE))
    unit = parse_unit(SOURCE)
    result = run_passes(unit, "PREFNTA=profile[example]+threshold[512]")
    optimized = cycles_of(unit)

    print("\nloads marked non-temporal: %d"
          % result.total("PREFNTA", "loads_marked"))
    print("base:      %7d cycles, %5d L1D misses"
          % (base.cycles, base["L1D_MISSES"]))
    print("optimized: %7d cycles, %5d L1D misses"
          % (optimized.cycles, optimized["L1D_MISSES"]))
    print("speedup: %.2fx" % (base.cycles / optimized.cycles))


if __name__ == "__main__":
    main()
