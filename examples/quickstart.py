#!/usr/bin/env python3
"""Quickstart: parse assembly, run MAO passes, emit optimized assembly.

PyMAO is an assembly-to-assembly optimizer: it takes (compiler-generated)
assembly text, builds the MAO IR, runs named optimization passes over it,
and emits assembly again — exactly the paper's flow

    compiler -> asm -> MAO passes -> asm -> assembler

Run:  python examples/quickstart.py
"""

from repro.ir import parse_unit
from repro.passes import run_passes

# Compiler output with the classic GCC weaknesses from paper §III.B:
# a redundant zero-extension, a redundant test, a repeated load, and an
# add/add chain.
SOURCE = """
.text
.globl compute
.type compute, @function
compute:
    push %rbp
    mov %rsp, %rbp
    andl $255, %eax
    mov %eax, %eax            # zero-extension already happened
    subl $16, %r15d
    testl %r15d, %r15d        # flags already set by the subl
    je .Lzero
    movq 24(%rsp), %rdx
    movq 24(%rsp), %rcx       # same load again
    addq $3, %rsi
    addq $4, %rsi             # foldable
.Lzero:
    leave
    ret
"""


def main() -> None:
    unit = parse_unit(SOURCE)
    print("before: %d instructions" % unit.instruction_count())

    # Pass pipelines are named, ordered specs — the same grammar as the
    # command line's --mao=REDZEE:REDTEST:REDMOV:ADDADD.
    result = run_passes(unit, "REDZEE:REDTEST:REDMOV:ADDADD")

    for name in ("REDZEE", "REDTEST", "REDMOV", "ADDADD"):
        print("%-8s %s" % (name, result.stats_for(name)))
    print("after:  %d instructions" % unit.instruction_count())
    print("\noptimized assembly:\n")
    print(unit.to_asm())


if __name__ == "__main__":
    main()
