#!/usr/bin/env python3
"""Semi-automatic micro-architectural parameter detection (paper §IV).

The paper ships a Python microbenchmark framework (Processor /
InstructionSequence / Loop / Benchmark) to discover processor parameters
by experiment.  Here we point it at a processor whose parameters are
*hidden* (a blinded model) and recover them from PMU measurements alone —
then check the answers.

Run:  python examples/discover_microarchitecture.py [seed]
"""

import sys

from repro.mbench import Processor, detect
from repro.uarch.profiles import blinded_profile


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    hidden = blinded_profile(seed)
    proc = Processor(hidden)
    print("detecting parameters of %r (seed %d)...\n"
          % (hidden.name, seed))

    # Fig. 6: instruction latency from a CYCLE-dependence chain.
    for template, truth_key in [("addq %r, %r", "alu"),
                                ("imulq %r, %r", "mul"),
                                ("movq (%r), %r", "load")]:
        measured = detect.InstructionLatency(proc, template,
                                             trip_count=500)
        truth = hidden.latency[truth_key]
        print("  latency  %-16s measured %d   (truth %d)  %s"
              % (template, measured, truth,
                 "ok" if measured == truth else "MISS"))

    line = detect.DetectDecodeLineSize(proc)
    print("  decode-line size      measured %-3d (truth %d)  %s"
          % (line, hidden.decode_line_bytes,
             "ok" if line == hidden.decode_line_bytes else "MISS"))

    shift = detect.DetectBranchPredictorShift(proc)
    print("  BP index shift        measured %-3d (truth %d)  %s"
          % (shift, hidden.bp_index_shift,
             "ok" if shift == hidden.bp_index_shift else "MISS"))


if __name__ == "__main__":
    main()
