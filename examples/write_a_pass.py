#!/usr/bin/env python3
"""Writing a custom MAO pass (the paper's Fig. 3 template).

"Writing a pass is easy and follows the template shown in Figure 3 ...
The optimization pass is a C++ class derived from a base class
MaoFunctionPass and contains a Go() function ... To make passes externally
visible, an invocation of REGISTER_FUNC_PASS is required."

The Python equivalents: subclass MaoFunctionPass, implement Go(), decorate
with @register_func_pass.  This example implements the Fig. 3
name-printing pass plus a small real one: rewriting `movl $0, %reg` into
the shorter `xorl %reg, %reg` when flags are dead.

Run:  python examples/write_a_pass.py
"""

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import FLAG_PREFIX, Liveness
from repro.ir import parse_unit
from repro.passes import MaoFunctionPass, run_passes
from repro.passes.manager import register_func_pass
from repro.x86.instruction import Instruction
from repro.x86.operands import Immediate, RegisterOperand


@register_func_pass("HELLO")
class HelloPass(MaoFunctionPass):
    """The paper's Fig. 3 minimal pass: print the function name."""

    def Go(self) -> bool:
        self.Trace(0, "Func: %s", self.function.name)
        return True


@register_func_pass("ZEROIDIOM")
class ZeroIdiomPass(MaoFunctionPass):
    """Rewrite `movl $0, %reg` to `xorl %reg, %reg` (2 bytes shorter).

    xor writes flags while mov does not, so the rewrite needs flag
    liveness — the same data-flow apparatus the built-in passes use.
    """

    OPTIONS = {"count_only": False}

    def Go(self) -> bool:
        cfg = build_cfg(self.function, self.unit)
        liveness = Liveness(cfg)
        for block in cfg.blocks:
            for entry in block.entries:
                insn = entry.insn
                if not (insn.base == "mov" and len(insn.operands) == 2):
                    continue
                src, dst = insn.operands
                if not (isinstance(src, Immediate) and src.value == 0
                        and src.symbol is None
                        and isinstance(dst, RegisterOperand)
                        and dst.reg.width in (32, 64)):
                    continue
                live_flags = {
                    loc for loc in liveness.live_after(block, entry)
                    if loc.startswith(FLAG_PREFIX)}
                if live_flags:
                    continue       # xor would clobber observed flags
                self.bump("rewritten")
                if not self.option("count_only"):
                    entry.insn = Instruction(
                        "xorl" if dst.reg.width == 32 else "xorq",
                        [RegisterOperand(dst.reg), dst])
        return True


SOURCE = """
.text
.globl f
.type f, @function
f:
    movl $0, %eax          # rewritable (flags dead)
    movl $0, %ebx
    cmpl %ecx, %edx
    movl $0, %esi          # NOT rewritable: the jcc below reads flags
    je .L
    addl $1, %eax
.L:
    ret
"""


def main() -> None:
    unit = parse_unit(SOURCE)
    result = run_passes(unit, "HELLO:ZEROIDIOM")
    print("rewritten:", result.total("ZEROIDIOM", "rewritten"))
    print(unit.to_asm())


if __name__ == "__main__":
    main()
