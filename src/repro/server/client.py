"""``repro.server.client`` — the blocking client for the service.

A thin, dependency-free wrapper over :mod:`http.client` with the retry
discipline the server's backpressure contract calls for:

* **503** is not an error, it is *load shedding*: the client honours the
  ``Retry-After`` header (floored by its own jittered exponential
  backoff) and retries up to ``retries`` times before raising
  :class:`ServerBusy`;
* **connection resets / refusals** are retried the same way (a draining
  server closes idle connections; a restarting one refuses briefly) and
  end in :class:`ServerUnavailable`;
* every other non-2xx status raises :class:`ServerError` immediately —
  a 400 will not become a 200 by retrying.

One :class:`Client` keeps **one keep-alive connection** and reuses it
across sequential requests — reconnecting per call would multiply
connection churn by the request count, and a fleet front door funnelling
N workers' traffic multiplies it again (``client.connects`` counts real
connections; the scripted-fake test pins it at one per client).  A
reused connection can go *stale*: a server is allowed to close an idle
keep-alive socket at any time (a draining fleet worker always does), and
the client only discovers that when the next send fails.  That failure
says nothing about server health, so it is **replayed once on a fresh
connection without consuming the retry budget or sleeping** — only a
failure on a never-used connection counts against ``retries``.

Backoff is exponential with full jitter (``uniform(0, base * 2^attempt)``,
capped) so a thundering herd of rejected clients does not re-arrive in
lockstep.  One :class:`Client` owns one connection and is **not**
thread-safe; use one per thread (the bench does).
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

DEFAULT_PORT = 8423


class ServerError(Exception):
    """A non-2xx response that retrying cannot fix."""

    def __init__(self, status: int, message: str,
                 payload: Optional[Dict[str, Any]] = None) -> None:
        super().__init__("HTTP %d: %s" % (status, message))
        self.status = status
        self.payload = payload or {}


class ServerBusy(ServerError):
    """503 backpressure outlasted the retry budget."""


class ServerUnavailable(ServerError):
    """Could not complete a request at the transport level."""

    def __init__(self, message: str) -> None:
        super(ServerError, self).__init__(message)
        self.status = 0
        self.payload = {}


class Client:
    """Blocking JSON client with retry-with-jittered-backoff."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                 timeout: float = 120.0,
                 retries: int = 5,
                 backoff_s: float = 0.05,
                 max_backoff_s: float = 2.0,
                 rng: Optional[random.Random] = None) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self._rng = rng if rng is not None else random.Random()
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Retry telemetry, mostly for tests and the bench: how many
        #: sends were re-issued after a 503 / transport failure, how
        #: many connections were ever opened, and how many stale
        #: keep-alive sockets were transparently replayed.
        self.retries_on_busy = 0
        self.retries_on_transport = 0
        self.connects = 0
        self.stale_replays = 0
        #: Responses served over the current connection — a send failure
        #: on a connection that already served one is a stale keep-alive
        #: socket, not a server failure.
        self._conn_served = 0

    # -- transport ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            self._conn_served = 0
            self.connects += 1
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
            self._conn_served = 0

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _sleep(self, attempt: int, floor_s: float = 0.0) -> None:
        cap = min(self.backoff_s * (2 ** attempt), self.max_backoff_s)
        delay = max(floor_s, self._rng.uniform(0.0, cap))
        if delay > 0:
            time.sleep(delay)

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None,
                request_id: Optional[str] = None) -> Dict[str, Any]:
        """One request through the retry discipline; returns the decoded
        JSON body of the 2xx response."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if request_id is not None:
            headers["X-Request-Id"] = request_id

        last_error: Optional[str] = None
        attempt = 0
        replayed_stale = False
        while attempt <= self.retries:
            was_reused = self._conn is not None and self._conn_served > 0
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                self._conn_served += 1
                replayed_stale = False
                if response.will_close:
                    # Honour Connection: close now, or the next attempt
                    # burns a retry discovering the socket is dead.
                    self.close()
            except (ConnectionError, http.client.HTTPException,
                    socket.timeout, OSError) as exc:
                self.close()
                last_error = "%s: %s" % (type(exc).__name__, exc)
                if was_reused and not replayed_stale \
                        and not isinstance(exc, socket.timeout):
                    # A keep-alive socket the server closed while idle:
                    # the failure says nothing about server health, so
                    # replay immediately on a fresh connection without
                    # spending the retry budget (once — a second failure
                    # is a real one and falls through to the budget).
                    replayed_stale = True
                    self.stale_replays += 1
                    continue
                # A dead fresh connection tells us nothing about the
                # next attempt on another one — reconnect after backoff.
                if attempt >= self.retries:
                    break
                self.retries_on_transport += 1
                self._sleep(attempt)
                attempt += 1
                continue
            if response.status == 503:
                if attempt >= self.retries:
                    raise ServerBusy(503, "server busy after %d retries"
                                     % self.retries,
                                     _decode(raw))
                self.retries_on_busy += 1
                retry_after = _retry_after_seconds(response)
                # Retry-After is a floor, not a schedule: jitter on top
                # so shed clients do not return in lockstep.
                self._sleep(attempt, floor_s=retry_after)
                attempt += 1
                continue
            data = _decode(raw)
            if not 200 <= response.status < 300:
                message = data.get("error", "HTTP %d" % response.status) \
                    if isinstance(data, dict) else raw.decode(
                        "utf-8", "replace")
                raise ServerError(response.status, message,
                                  data if isinstance(data, dict) else None)
            return data if isinstance(data, dict) else {"body": data}
        raise ServerUnavailable("request to %s:%d failed after %d "
                                "attempts (%s)"
                                % (self.host, self.port, self.retries + 1,
                                   last_error))

    # -- endpoints ----------------------------------------------------------

    def optimize(self, source: str,
                 spec: Union[None, str, List[Tuple[str, Dict[str, Any]]]]
                 = None, *,
                 filename: Optional[str] = None,
                 request_id: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"source": source}
        if spec is not None:
            payload["spec"] = spec
        if filename is not None:
            payload["filename"] = filename
        return self.request("POST", "/v1/optimize", payload,
                            request_id=request_id)

    def batch(self, inputs: Iterable[Tuple[str, str]],
              spec: Union[None, str, List[Tuple[str, Dict[str, Any]]]]
              = None, *,
              request_id: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "inputs": [[name, source] for name, source in inputs]}
        if spec is not None:
            payload["spec"] = spec
        return self.request("POST", "/v1/batch", payload,
                            request_id=request_id)

    def simulate(self, source: Optional[str] = None, core: str = "core2", *,
                 workload: Optional[str] = None,
                 entry_symbol: str = "main",
                 max_steps: int = 5_000_000,
                 request_id: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"core": core,
                                   "entry_symbol": entry_symbol,
                                   "max_steps": max_steps}
        if source is not None:
            payload["source"] = source
        if workload is not None:
            payload["workload"] = workload
        return self.request("POST", "/v1/simulate", payload,
                            request_id=request_id)

    def predict(self, source: Optional[str] = None, core: str = "core2", *,
                workload: Optional[str] = None,
                function: Optional[str] = None,
                loop: Optional[str] = None,
                assume_lsd: bool = False,
                request_id: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"core": core}
        if source is not None:
            payload["source"] = source
        if workload is not None:
            payload["workload"] = workload
        if function is not None:
            payload["function"] = function
        if loop is not None:
            payload["loop"] = loop
        if assume_lsd:
            payload["assume_lsd"] = True
        return self.request("POST", "/v1/predict", payload,
                            request_id=request_id)

    def tune(self, source: Optional[str] = None, core: str = "core2", *,
             workload: Optional[str] = None,
             function: Optional[str] = None,
             budget: Optional[int] = None,
             n_select: Optional[int] = None,
             max_rounds: Optional[int] = None,
             simulate_top: Optional[int] = None,
             request_id: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"core": core}
        if source is not None:
            payload["source"] = source
        if workload is not None:
            payload["workload"] = workload
        if function is not None:
            payload["function"] = function
        if budget is not None:
            payload["budget"] = budget
        if n_select is not None:
            payload["n_select"] = n_select
        if max_rounds is not None:
            payload["max_rounds"] = max_rounds
        if simulate_top is not None:
            payload["simulate_top"] = simulate_top
        return self.request("POST", "/v1/tune", payload,
                            request_id=request_id)

    def profile(self, profile: Optional[Dict[str, Any]] = None, *,
                digest: Optional[str] = None,
                request_id: Optional[str] = None) -> Dict[str, Any]:
        """Ingest a ``pymao.profile/1`` document, or read one back by
        digest (pass exactly one of the two)."""
        payload: Dict[str, Any] = {}
        if profile is not None:
            payload["profile"] = profile
        if digest is not None:
            payload["digest"] = digest
        return self.request("POST", "/v1/profile", payload,
                            request_id=request_id)

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")


def _decode(raw: bytes) -> Any:
    try:
        return json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return {}


def _retry_after_seconds(response: http.client.HTTPResponse) -> float:
    value = response.headers.get("Retry-After")
    if value is None:
        return 0.0
    try:
        return max(0.0, float(value))
    except ValueError:
        return 0.0
