"""The CPU-bound request bodies, as picklable top-level functions.

The event loop never runs a parser or a pass pipeline: every ``/v1/*``
request is shipped to the server's worker pool (thread or process — the
same backend vocabulary as ``passes.manager``) as one of these
functions.  They follow the ``repro.batch`` worker contract:

* **never raise** — a raised exception inside ``pool.map`` /
  ``run_in_executor`` would surface as a 500 with a traceback instead of
  a typed error payload, and on the process backend could poison the
  pool.  Every outcome is a plain dict with ``"status"``;
* **plain-data in, plain-data out** — payloads and outcomes must cross a
  process boundary, so they are dicts of JSON-able values (spans ride
  back serialized via ``Span.to_dict``, artifacts as the stored dicts);
* **cache by construction parameters** — a process worker cannot share
  the coordinator's :class:`~repro.batch.cache.ArtifactCache` object, so
  the payload carries ``(root, salt, max_bytes)`` and each worker opens
  its own handle onto the same store.  That is safe because the store's
  publication is atomic (tmp + ``os.replace``) and reads treat anything
  torn as a miss.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

#: Cache construction parameters as they ride inside a worker payload.
CacheSpec = Optional[Tuple[str, str, int]]   # (root, salt, max_bytes)

#: One long-lived handle per (root, salt, max_bytes) per process.  A
#: fresh :class:`~repro.batch.cache.ArtifactCache` seeds its running
#: size estimate with a full store walk on its first ``put``; a fleet
#: worker serving thousands of requests must pay that walk once per
#: process, not once per request.  Sharing a handle across pool threads
#: is safe: publication is atomic on disk, and the estimate is advisory
#: (a race at worst triggers an early eviction sweep, which resyncs it).
_CACHE_HANDLES: Dict[Tuple[str, str, int], Any] = {}
_CACHE_HANDLES_LOCK = threading.Lock()


def _open_cache(cache_spec: CacheSpec):
    if cache_spec is None:
        return None
    from repro.batch.cache import ArtifactCache

    root, salt, max_bytes = cache_spec
    key = (root, salt, max_bytes)
    with _CACHE_HANDLES_LOCK:
        cache = _CACHE_HANDLES.get(key)
        if cache is None:
            cache = _CACHE_HANDLES[key] = ArtifactCache(
                root, salt=salt, max_bytes=max_bytes)
    return cache


def optimize_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One ``/v1/optimize`` body: cache get -> optimize -> cache put.

    Outcome: ``{"status": "ok", "cache": "hit"|"miss"|"off", "asm": str,
    "pipeline": <pymao.pipeline/1>, "span": <span dict>|None}`` or
    ``{"status": "error", "error": str, "kind": <exception name>}``.
    """
    import repro.passes  # noqa: F401 — register built-ins in spawned children
    from repro import api, obs
    from repro.batch.cache import source_sha256
    from repro.passes.manager import PipelineResult

    source = payload["source"]
    spec_items = payload["spec_items"]
    filename = payload.get("filename") or "<request>"
    obs.set_enabled(payload.get("want_spans", False))
    cache = _open_cache(payload.get("cache"))
    try:
        key = None
        if cache is not None:
            key = cache.key_for(source, payload["key_spec"])
            hit = cache.get(key)
            if hit is not None:
                try:
                    PipelineResult.from_dict(hit.pipeline)
                except (ValueError, KeyError, TypeError):
                    pass           # stale schema: fall through to a miss
                else:
                    return {"status": "ok", "cache": "hit",
                            "asm": hit.asm, "pipeline": hit.pipeline,
                            "span": None}
        span_data = None
        with obs.detached_span("optimize:%s" % filename,
                               bytes=len(source)) as span:
            result = api.optimize(source, spec_items, filename=filename)
            asm = result.unit.to_asm()
            if span:
                span.attach(reports=len(result.pipeline.reports))
        if span:
            span_data = span.to_dict()
        pipeline = result.pipeline.to_dict()
        if cache is not None and key is not None:
            cache.put(key, asm, pipeline,
                      source_sha=source_sha256(source),
                      spec=payload.get("canonical_spec", ""))
        return {"status": "ok",
                "cache": "off" if cache is None else "miss",
                "asm": asm, "pipeline": pipeline, "span": span_data}
    except Exception as exc:  # parse errors, bad specs, pass failures
        return {"status": "error", "kind": type(exc).__name__,
                "error": "%s: %s" % (type(exc).__name__, exc)}


def batch_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One ``/v1/batch`` body: the whole corpus through ``run_batch``.

    The batch runs with ``jobs=1`` inside this worker so one admitted
    request occupies exactly one pool slot; concurrency across requests
    is the server's admission control, not a nested pool.
    """
    import repro.passes  # noqa: F401
    from repro import obs
    from repro.batch import run_batch

    obs.set_enabled(payload.get("want_spans", False))
    cache = _open_cache(payload.get("cache"))
    try:
        inputs = [(name, source) for name, source in payload["inputs"]]
        batch = run_batch(inputs, payload["spec_items"], jobs=1,
                          cache=cache)
        return {"status": "ok",
                "summary": batch.to_dict(),
                "asm": {item.name: item.asm for item in batch if item.ok}}
    except Exception as exc:
        return {"status": "error", "kind": type(exc).__name__,
                "error": "%s: %s" % (type(exc).__name__, exc)}


def predict_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One ``/v1/predict`` body over :func:`repro.api.predict`.

    Cheap enough that it skips the artifact cache entirely — the static
    model re-runs faster than a cache round trip would pay for itself.
    """
    import repro.passes  # noqa: F401
    from repro import api, obs

    obs.set_enabled(payload.get("want_spans", False))
    try:
        prediction = api.predict(
            payload.get("source"), payload["core"],
            workload=payload.get("workload"),
            function=payload.get("function"),
            loop=payload.get("loop"),
            assume_lsd=bool(payload.get("assume_lsd", False)))
        return {"status": "ok", "prediction": prediction.to_dict()}
    except Exception as exc:
        return {"status": "error", "kind": type(exc).__name__,
                "error": "%s: %s" % (type(exc).__name__, exc)}


def tune_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One ``/v1/tune`` body over :func:`repro.api.tune`.

    Opens the shared artifact cache like :func:`optimize_worker` does,
    so tuned pipeline prefixes are published for every other worker —
    and for plain ``/v1/optimize`` requests — to replay.
    """
    import repro.passes  # noqa: F401
    from repro import api, obs

    obs.set_enabled(payload.get("want_spans", False))
    cache = _open_cache(payload.get("cache"))
    try:
        result = api.tune(
            payload.get("source"), payload["core"],
            workload=payload.get("workload"),
            function=payload.get("function"),
            budget=payload.get("budget"),
            n_select=payload.get("n_select"),
            max_rounds=payload.get("max_rounds"),
            simulate_top=int(payload.get("simulate_top", 0)),
            cache=cache if cache is not None else False)
        return {"status": "ok", "tune": result.to_dict(),
                "asm": result.asm}
    except Exception as exc:
        return {"status": "error", "kind": type(exc).__name__,
                "error": "%s: %s" % (type(exc).__name__, exc)}


#: One long-lived :class:`~repro.pgo.ProfileStore` handle per root per
#: process — same rationale as :data:`_CACHE_HANDLES`.
_STORE_HANDLES: Dict[str, Any] = {}
_STORE_HANDLES_LOCK = threading.Lock()


def _open_store(profile_dir: Optional[str]):
    from repro.pgo import ProfileStore

    root = profile_dir or ""
    with _STORE_HANDLES_LOCK:
        store = _STORE_HANDLES.get(root)
        if store is None:
            store = _STORE_HANDLES[root] = ProfileStore(profile_dir or None)
    return store


def profile_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One ``/v1/profile`` body: ingest or look up a profile document.

    With a ``"profile"`` document the store ingests it (epoch bumps only
    when the weight changed) and returns the stored entry.  With only a
    ``"digest"`` the stored entry is returned (``"found": false`` when
    absent) — that read-back path is what lets tests and operators
    confirm the store survives worker restarts.
    """
    from repro import obs

    obs.set_enabled(payload.get("want_spans", False))
    try:
        store = _open_store(payload.get("profile_dir"))
        document = payload.get("profile")
        with obs.detached_span("pgo.ingest" if document is not None
                               else "pgo.lookup") as span:
            if document is not None:
                entry = store.ingest(document)
                outcome = {"status": "ok", "found": True,
                           "profile": entry.to_dict()}
            else:
                entry = store.get(payload["digest"])
                outcome = {"status": "ok", "found": entry is not None,
                           "profile": entry.to_dict() if entry else None}
            if span:
                span.attach(found=outcome["found"])
        return outcome
    except Exception as exc:
        return {"status": "error", "kind": type(exc).__name__,
                "error": "%s: %s" % (type(exc).__name__, exc)}


def simulate_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One ``/v1/simulate`` body over :func:`repro.api.simulate`."""
    import repro.passes  # noqa: F401
    from repro import api, obs

    obs.set_enabled(payload.get("want_spans", False))
    try:
        sim = api.simulate(payload.get("source"), payload["core"],
                           workload=payload.get("workload"),
                           entry_symbol=payload.get("entry_symbol", "main"),
                           max_steps=int(payload.get("max_steps",
                                                     5_000_000)))
        return {"status": "ok", "cycles": sim.cycles, "steps": sim.steps,
                "counters": dict(sim.counters), "ipc": sim.stats.ipc()}
    except Exception as exc:
        return {"status": "error", "kind": type(exc).__name__,
                "error": "%s: %s" % (type(exc).__name__, exc)}
