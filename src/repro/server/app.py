"""The asyncio optimization service.

One long-lived :class:`MaoServer` turns the :mod:`repro.api` facade and
the :mod:`repro.batch` artifact cache into a network service, so many
clients amortize one warm cache and one worker pool:

* ``POST /v1/optimize`` — one source through a pass spec (the
  ``pymao.pipeline/1`` report rides in the response);
* ``POST /v1/batch`` — a corpus in one request (``pymao.batch/1``);
* ``POST /v1/simulate`` — execute + time on a processor model;
* ``POST /v1/predict`` — the static throughput model
  (``pymao.predict/1``); cheap enough to skip the artifact cache;
* ``GET /healthz`` — liveness + admission state;
* ``GET /metrics`` — the :data:`repro.obs.REGISTRY` snapshot as a
  ``pymao.trace/1`` metrics event.

**Admission control.**  CPU-bound work never runs on the event loop; it
is shipped to a bounded worker pool (thread or process — the pass
manager's backend vocabulary).  A request is *admitted* iff fewer than
``max_inflight + max_queue`` admitted requests exist; everything else is
refused up front with ``503`` + ``Retry-After`` (backpressure, not
buffering).  Admitted requests wait on a semaphore for one of the
``max_inflight`` execution slots, bounded by ``request_timeout_s``
end-to-end.  Once admitted, a request is never dropped: it ends in a
response (200/4xx/504), even during drain.

**Shared cache.**  All optimize/batch work shares one content-addressed
:class:`~repro.batch.cache.ArtifactCache` store; identical concurrent
``/v1/optimize`` requests are additionally *coalesced* — followers await
the leader's executor task (shielded, so one impatient client cannot
cancel work others depend on) instead of re-optimizing.

**Drain.**  ``SIGTERM``/``SIGINT`` (or :meth:`MaoServer.request_drain`)
closes the listener, nudges idle keep-alive connections closed, lets
every inflight request finish, flushes the trace sink, and returns — the
process exits 0.
"""

from __future__ import annotations

import asyncio
import itertools
import signal
import socket
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from repro import obs
from repro.batch.cache import (
    DEFAULT_MAX_BYTES,
    default_cache_dir,
    default_salt,
    source_sha256,
)
from repro.passes.manager import (
    canonical_pass_spec,
    encode_pass_spec,
    parse_pass_spec,
    spec_has_side_effects,
)
from repro.result import register_schema
from repro.server import work
from repro.server.http import (
    ProtocolError,
    Request,
    error_payload,
    read_request,
    render_json,
)

#: Schema tag carried by every JSON response envelope.
SERVER_SCHEMA = register_schema("server", "pymao.server/1")

def _validate_core(core: Any) -> Any:
    """Validate a request's ``core`` field against the profile registry.

    Accepts a registry name (``core2`` … plus any data-only profile
    dropped into ``repro/uarch/data/``) or an inline ``pymao.uarch/1``
    document; filesystem paths are deliberately rejected server-side.
    """
    from repro.uarch import tables

    if isinstance(core, dict):
        try:
            tables.validate_doc(core, where="request core")
        except ValueError as exc:
            raise ProtocolError(400, "invalid inline core profile: %s"
                                % (exc,))
        return core
    names = tables.profile_names()
    if not isinstance(core, str) or core not in names:
        raise ProtocolError(400, "field 'core' must be one of %s or an "
                            "inline pymao.uarch/1 document"
                            % ", ".join(names))
    return core


@dataclass
class ServerConfig:
    """Everything a :class:`MaoServer` needs to run."""

    host: str = "127.0.0.1"
    port: int = 8423                  # 0 = ephemeral (bound port on start)
    parallel_backend: str = "thread"  # worker pool kind: thread | process
    workers: int = 0                  # pool size; 0 = max_inflight
    max_inflight: int = 4             # concurrently executing requests
    max_queue: int = 16               # admitted-but-waiting bound
    request_timeout_s: float = 120.0  # admission-to-response bound
    max_body_bytes: int = 8 * 1024 * 1024
    retry_after_s: float = 1.0        # advisory backoff floor on 503s
    cache: bool = True
    cache_dir: Optional[str] = None   # None = default_cache_dir()
    cache_salt: Optional[str] = None
    max_cache_bytes: int = DEFAULT_MAX_BYTES
    trace_out: Optional[str] = None   # pymao.trace/1 JSONL, flushed on drain
    drain_grace_s: float = 60.0
    #: Root of the PGO profile store served by ``/v1/profile``;
    #: ``None`` = :func:`repro.pgo.default_profile_dir`.
    profile_dir: Optional[str] = None
    #: Artificial pre-execution delay per work item.  Test/bench hook for
    #: holding execution slots open deterministically; never set in
    #: production configs.
    test_delay_s: float = 0.0

    def cache_spec(self) -> work.CacheSpec:
        if not self.cache:
            return None
        root = self.cache_dir or default_cache_dir()
        salt = self.cache_salt or default_salt()
        return (root, salt, self.max_cache_bytes)


def _delayed(fn, delay_s: float):
    """Wrap a worker so it sleeps *delay_s* before executing (the
    ``test_delay_s`` hook).  Defined at module scope per backend rules —
    but a closure cannot cross a process boundary, so the process
    backend rejects the hook instead (see :meth:`MaoServer.start`)."""
    import functools
    import time

    @functools.wraps(fn)
    def wrapper(payload):
        time.sleep(delay_s)
        return fn(payload)

    return wrapper


class MaoServer:
    """The service: admission control + routing over a worker pool."""

    def __init__(self, config: ServerConfig, *,
                 registry: Optional[obs.Registry] = None) -> None:
        self.config = config
        self.registry = registry if registry is not None else obs.REGISTRY
        self.port: Optional[int] = None      # bound port after start()
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._drain_requested: Optional[asyncio.Event] = None
        self._admitted = 0                   # executing + queued
        self._executing = 0
        self._slots: Optional[asyncio.Semaphore] = None
        self._singleflight: Dict[str, asyncio.Task] = {}
        self._conn_tasks: Set[asyncio.Task] = set()
        self._idle_writers: Set[asyncio.StreamWriter] = set()
        self._request_seq = itertools.count(1)

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        config = self.config
        if config.parallel_backend not in ("thread", "process"):
            raise ValueError("unknown server backend %r"
                             % config.parallel_backend)
        if config.parallel_backend == "process" and config.test_delay_s:
            raise ValueError("test_delay_s requires the thread backend")
        if config.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        workers = config.workers or config.max_inflight
        pool_cls = (ThreadPoolExecutor if config.parallel_backend == "thread"
                    else ProcessPoolExecutor)
        self._executor = pool_cls(max_workers=workers)
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        self._slots = asyncio.Semaphore(config.max_inflight)
        self._server = await asyncio.start_server(
            self._handle_conn, config.host, config.port)
        sockets = self._server.sockets or []
        for sock in sockets:
            if sock.family in (socket.AF_INET, socket.AF_INET6):
                self.port = sock.getsockname()[1]
                break

    async def run(self, *, install_signals: bool = True,
                  ready=None) -> None:
        """Start, serve until drain is requested, then drain."""
        await self.start()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self.request_drain)
        try:
            if ready is not None:
                ready(self)
            await self._drain_requested.wait()
        finally:
            if install_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    self._loop.remove_signal_handler(signum)
            await self.drain()

    def request_drain(self) -> None:
        """Signal-safe (from the loop thread) drain trigger."""
        self._draining = True
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def drain(self) -> None:
        """Stop accepting, finish inflight, flush the trace sink."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections sit in read_request() forever;
        # closing their transports turns that into a clean EOF.
        for writer in list(self._idle_writers):
            writer.close()
        pending = [task for task in self._conn_tasks if not task.done()]
        if pending:
            done, not_done = await asyncio.wait(
                pending, timeout=self.config.drain_grace_s)
            for task in not_done:
                task.cancel()
            if not_done:
                await asyncio.gather(*not_done, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.config.trace_out:
            sink = obs.JsonlSink(self.config.trace_out)
            try:
                obs.write_trace(sink, obs.finish_spans(),
                                server="%s:%s" % (self.config.host,
                                                  self.port))
            finally:
                sink.close()

    # -- connection handling ------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._conn_loop(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            self._idle_writers.discard(writer)
            writer.close()

    async def _conn_loop(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        while True:
            self._idle_writers.add(writer)
            try:
                request = await read_request(
                    reader, max_body_bytes=self.config.max_body_bytes)
            except ProtocolError as exc:
                self.registry.inc("server.protocol_errors")
                writer.write(render_json(
                    exc.status, error_payload(exc.status, exc.message),
                    keep_alive=False))
                await writer.drain()
                return
            finally:
                self._idle_writers.discard(writer)
            if request is None:
                return
            keep_alive = request.keep_alive and not self._draining
            response = await self._dispatch(request, keep_alive)
            writer.write(response)
            await writer.drain()
            if not keep_alive:
                return

    # -- routing ------------------------------------------------------------

    async def _dispatch(self, request: Request, keep_alive: bool) -> bytes:
        rid = request.headers.get("x-request-id") \
            or "req-%06d" % next(self._request_seq)
        self.registry.inc("server.requests")
        headers = {"X-Request-Id": rid}
        route = (request.method, request.path)
        try:
            if route == ("GET", "/healthz"):
                return render_json(200, self._health_payload(rid),
                                   keep_alive=keep_alive, headers=headers)
            if route == ("GET", "/metrics"):
                event = obs.metrics_event(self.registry.snapshot())
                event["request_id"] = rid
                return render_json(200, event, keep_alive=keep_alive,
                                   headers=headers)
            if request.method == "POST" and request.path in (
                    "/v1/optimize", "/v1/batch", "/v1/simulate",
                    "/v1/predict", "/v1/tune", "/v1/profile"):
                return await self._dispatch_work(request, rid, keep_alive,
                                                 headers)
            self.registry.inc("server.not_found")
            return render_json(404, error_payload(
                404, "no route for %s %s" % route, rid),
                keep_alive=keep_alive, headers=headers)
        except ProtocolError as exc:
            return render_json(exc.status,
                               error_payload(exc.status, exc.message, rid),
                               keep_alive=keep_alive, headers=headers)
        except Exception as exc:   # a handler bug, not a client error
            self.registry.inc("server.errors")
            return render_json(500, error_payload(
                500, "internal error: %s: %s" % (type(exc).__name__, exc),
                rid), keep_alive=keep_alive, headers=headers)

    def _health_payload(self, rid: str) -> Dict[str, Any]:
        from repro import __version__

        return {"schema": SERVER_SCHEMA,
                "status": "draining" if self._draining else "ok",
                "version": __version__,
                "request_id": rid,
                "inflight": self._executing,
                "queue_depth": self._admitted - self._executing,
                "queued": self._admitted - self._executing,
                "max_inflight": self.config.max_inflight,
                "max_queue": self.config.max_queue,
                "cache": self.config.cache_spec() is not None}

    def _publish_admission_gauges(self) -> None:
        """Keep the live admission state visible as registry gauges, so
        ``/metrics`` (and the fleet front door aggregating it) reports
        the same ``inflight`` / ``queue_depth`` numbers ``/healthz``
        does — the backpressure bench asserts against these."""
        self.registry.gauge("server.inflight", self._executing)
        self.registry.gauge("server.queue_depth",
                            self._admitted - self._executing)

    # -- admission + execution ----------------------------------------------

    async def _dispatch_work(self, request: Request, rid: str,
                             keep_alive: bool,
                             headers: Dict[str, str]) -> bytes:
        config = self.config
        # Admission decision: accept-and-finish, or refuse now.  A
        # draining server accepts nothing new; a full server (executing
        # + queued at the bound) sheds load instead of buffering it.
        if self._draining \
                or self._admitted >= config.max_inflight + config.max_queue:
            self.registry.inc("server.rejected")
            headers = dict(headers)
            headers["Retry-After"] = "%g" % config.retry_after_s
            return render_json(503, error_payload(
                503, "draining" if self._draining else "at capacity "
                "(inflight+queued >= %d)"
                % (config.max_inflight + config.max_queue), rid),
                keep_alive=keep_alive, headers=headers)
        self._admitted += 1
        self._publish_admission_gauges()
        try:
            with obs.detached_span("request:%s" % request.path,
                                   request_id=rid,
                                   bytes=len(request.body)) as span:
                try:
                    payload = await asyncio.wait_for(
                        self._execute(request, rid, span),
                        timeout=config.request_timeout_s)
                except asyncio.TimeoutError:
                    self.registry.inc("server.timeouts")
                    if span:
                        span.attach(outcome="timeout")
                    return render_json(504, error_payload(
                        504, "request exceeded %.1fs"
                        % config.request_timeout_s, rid),
                        keep_alive=keep_alive, headers=headers)
                status = payload.pop("_status", 200)
                if span:
                    span.attach(status=status)
                return render_json(status, payload,
                                   keep_alive=keep_alive, headers=headers)
        finally:
            self._admitted -= 1
            self._publish_admission_gauges()
            obs.adopt_span(None, span)

    async def _execute(self, request: Request, rid: str,
                       span) -> Dict[str, Any]:
        async with self._slots:
            self._executing += 1
            self._publish_admission_gauges()
            try:
                if request.path == "/v1/optimize":
                    return await self._handle_optimize(request, rid, span)
                if request.path == "/v1/batch":
                    return await self._handle_batch(request, rid, span)
                if request.path == "/v1/predict":
                    return await self._handle_predict(request, rid, span)
                if request.path == "/v1/tune":
                    return await self._handle_tune(request, rid, span)
                if request.path == "/v1/profile":
                    return await self._handle_profile(request, rid, span)
                return await self._handle_simulate(request, rid, span)
            finally:
                self._executing -= 1
                self._publish_admission_gauges()

    def _run_in_pool(self, fn, payload) -> "asyncio.Future":
        if self.config.test_delay_s:
            fn = _delayed(fn, self.config.test_delay_s)
        return self._loop.run_in_executor(self._executor, fn, payload)

    # -- handlers -----------------------------------------------------------

    @staticmethod
    def _body_object(request: Request) -> Dict[str, Any]:
        data = request.json()
        if not isinstance(data, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return data

    @staticmethod
    def _parse_spec(data: Dict[str, Any]):
        spec = data.get("spec")
        try:
            if spec is None:
                items = []
            elif isinstance(spec, str):
                items = parse_pass_spec(spec)
            elif isinstance(spec, list):
                items = [(str(name), dict(options))
                         for name, options in spec]
            else:
                raise ValueError("spec must be a string or [name, options] "
                                 "items")
        except ValueError as exc:
            raise ProtocolError(400, "bad pass spec: %s" % exc)
        if spec_has_side_effects(items):
            # The response carries the emitted asm; letting a request
            # run ASM=o[...] would write arbitrary server-side paths and
            # make warm (cache-replayed) runs skip the effect cold runs
            # performed.
            raise ProtocolError(400, "side-effecting passes (ASM) are not "
                                     "allowed over the wire; read the asm "
                                     "from the response")
        return items

    async def _handle_optimize(self, request: Request, rid: str,
                               span) -> Dict[str, Any]:
        data = self._body_object(request)
        source = data.get("source")
        if not isinstance(source, str):
            raise ProtocolError(400, "missing string field 'source'")
        spec_items = self._parse_spec(data)
        payload = {"source": source, "spec_items": spec_items,
                   "filename": data.get("filename"),
                   "want_spans": obs.enabled(),
                   "cache": self.config.cache_spec(),
                   "key_spec": encode_pass_spec(spec_items),
                   "canonical_spec": canonical_pass_spec(spec_items)}
        # Singleflight: identical concurrent requests share one executor
        # task keyed by (salt, source, spec).  The task is shielded so a
        # follower's (or the leader's) timeout cancels only its own
        # wait, never the shared computation.
        key = "%s\x00%s" % (source_sha256(source), payload["key_spec"])
        task = self._singleflight.get(key)
        coalesced = task is not None
        if task is None:
            task = self._loop.create_task(self._await_pool(
                work.optimize_worker, payload))
            self._singleflight[key] = task
            task.add_done_callback(
                lambda _t, _key=key: self._singleflight.pop(_key, None))
        outcome = await asyncio.shield(task)
        if outcome["status"] == "error":
            self.registry.inc("server.client_errors")
            if span:
                span.attach(error=outcome["kind"])
            return {"_status": 400,
                    "error": outcome["error"], "status": 400,
                    "request_id": rid}
        if outcome.get("span") is not None and span:
            obs.adopt_span(span, obs.Span.from_dict(outcome["span"]))
        cache_state = "coalesced" if coalesced else outcome["cache"]
        if span:
            span.attach(cache=cache_state)
        self.registry.inc("server.optimize.%s" % cache_state)
        return {"schema": SERVER_SCHEMA, "request_id": rid,
                "cache": cache_state, "asm": outcome["asm"],
                "pipeline": outcome["pipeline"]}

    async def _await_pool(self, fn, payload) -> Dict[str, Any]:
        return await self._run_in_pool(fn, payload)

    async def _handle_batch(self, request: Request, rid: str,
                            span) -> Dict[str, Any]:
        data = self._body_object(request)
        inputs = data.get("inputs")
        if (not isinstance(inputs, list)
                or not all(isinstance(pair, (list, tuple))
                           and len(pair) == 2
                           and isinstance(pair[0], str)
                           and isinstance(pair[1], str)
                           for pair in inputs)):
            raise ProtocolError(400, "field 'inputs' must be a list of "
                                     "[name, source] pairs")
        spec_items = self._parse_spec(data)
        payload = {"inputs": [(name, source) for name, source in inputs],
                   "spec_items": spec_items,
                   "want_spans": obs.enabled(),
                   "cache": self.config.cache_spec()}
        outcome = await self._await_pool(work.batch_worker, payload)
        if outcome["status"] == "error":
            self.registry.inc("server.client_errors")
            return {"_status": 400, "error": outcome["error"],
                    "status": 400, "request_id": rid}
        if span:
            span.attach(files=len(inputs))
        return {"schema": SERVER_SCHEMA, "request_id": rid,
                "summary": outcome["summary"], "asm": outcome["asm"]}

    async def _handle_predict(self, request: Request, rid: str,
                              span) -> Dict[str, Any]:
        """``/v1/predict``: the static model, no artifact cache.

        A prediction re-runs faster than a cache round trip, so unlike
        optimize/batch this path never touches the shared store; the
        ``predict.*`` counters in :data:`repro.obs.REGISTRY` (surfaced
        at ``/metrics``) are its observability story.
        """
        data = self._body_object(request)
        core = data.get("core")
        core = _validate_core(core)
        source = data.get("source")
        workload = data.get("workload")
        if (source is None) == (workload is None):
            raise ProtocolError(400, "pass exactly one of 'source' or "
                                     "'workload'")
        payload = {"source": source, "workload": workload, "core": core,
                   "function": data.get("function"),
                   "loop": data.get("loop"),
                   "assume_lsd": bool(data.get("assume_lsd", False)),
                   "want_spans": obs.enabled()}
        outcome = await self._await_pool(work.predict_worker, payload)
        if outcome["status"] == "error":
            self.registry.inc("server.client_errors")
            return {"_status": 400, "error": outcome["error"],
                    "status": 400, "request_id": rid}
        prediction = outcome["prediction"]
        self.registry.inc("server.predict.requests")
        if span:
            span.attach(core=core, cycles=prediction["cycles"],
                        bottleneck=prediction["bottleneck"])
        return {"schema": SERVER_SCHEMA, "request_id": rid,
                "core": core, "prediction": prediction}

    #: Server-side ceilings for the tuner search parameters: a request
    #: can spend at most this much work, whatever it asks for.
    _TUNE_MAX_BUDGET = 256
    _TUNE_MAX_ROUNDS = 8
    _TUNE_MAX_SELECT = 16

    async def _handle_tune(self, request: Request, rid: str,
                           span) -> Dict[str, Any]:
        """``/v1/tune``: the pass-pipeline autotuner over the shared
        artifact cache.

        Every prefix the search materializes is published to the same
        store ``/v1/optimize`` replays from, so tuning an input warms
        the cache for later plain optimizes of the winning spec (and the
        fleet routes both by the same input digest — cache affinity).
        """
        data = self._body_object(request)
        core = data.get("core")
        core = _validate_core(core)
        source = data.get("source")
        workload = data.get("workload")
        if (source is None) == (workload is None):
            raise ProtocolError(400, "pass exactly one of 'source' or "
                                     "'workload'")
        payload: Dict[str, Any] = {
            "source": source, "workload": workload, "core": core,
            "function": data.get("function"),
            "simulate_top": self._tune_param(data, "simulate_top",
                                             self._TUNE_MAX_SELECT) or 0,
            "budget": self._tune_param(data, "budget",
                                       self._TUNE_MAX_BUDGET),
            "n_select": self._tune_param(data, "n_select",
                                         self._TUNE_MAX_SELECT),
            "max_rounds": self._tune_param(data, "max_rounds",
                                           self._TUNE_MAX_ROUNDS),
            "want_spans": obs.enabled(),
            "cache": self.config.cache_spec()}
        outcome = await self._await_pool(work.tune_worker, payload)
        if outcome["status"] == "error":
            self.registry.inc("server.client_errors")
            return {"_status": 400, "error": outcome["error"],
                    "status": 400, "request_id": rid}
        doc = outcome["tune"]
        self.registry.inc("server.tune.requests")
        if span:
            span.attach(core=core, winner=doc["winner"]["spec"],
                        cycles=doc["winner"]["cycles"],
                        stop=doc["early_stop"]["reason"])
        return {"schema": SERVER_SCHEMA, "request_id": rid,
                "core": core, "tune": doc, "asm": outcome["asm"]}

    async def _handle_profile(self, request: Request, rid: str,
                              span) -> Dict[str, Any]:
        """``/v1/profile``: ingest or read back one ``pymao.profile/1``.

        Exactly one profile document per request — that keeps the fleet's
        digest-based routing well defined (profile affinity = cache
        affinity: the worker that ingests an input's profile is the one
        holding its warm tune prefixes).  A ``{"digest": ...}``-only body
        reads the stored entry back without ingesting.
        """
        data = self._body_object(request)
        document = data.get("profile")
        digest = data.get("digest")
        if (document is None) == (digest is None):
            raise ProtocolError(400, "pass exactly one of 'profile' "
                                     "(a pymao.profile/1 document) or "
                                     "'digest'")
        if document is not None:
            if not isinstance(document, dict):
                raise ProtocolError(400, "field 'profile' must be an object")
        elif not isinstance(digest, str):
            raise ProtocolError(400, "field 'digest' must be a string")
        payload = {"profile": document, "digest": digest,
                   "want_spans": obs.enabled(),
                   "profile_dir": self.config.profile_dir}
        outcome = await self._await_pool(work.profile_worker, payload)
        if outcome["status"] == "error":
            self.registry.inc("server.client_errors")
            return {"_status": 400, "error": outcome["error"],
                    "status": 400, "request_id": rid}
        self.registry.inc("server.profile.requests")
        stored = outcome["profile"]
        if span:
            span.attach(found=outcome["found"],
                        ingested=document is not None,
                        epoch=stored["epoch"] if stored else 0)
        return {"schema": SERVER_SCHEMA, "request_id": rid,
                "found": outcome["found"], "profile": stored}

    @staticmethod
    def _tune_param(data: Dict[str, Any], name: str,
                    ceiling: int) -> Optional[int]:
        value = data.get(name)
        if value is None:
            return None
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            raise ProtocolError(400, "field %r must be a non-negative "
                                     "integer" % name)
        return min(value, ceiling)

    async def _handle_simulate(self, request: Request, rid: str,
                               span) -> Dict[str, Any]:
        data = self._body_object(request)
        core = data.get("core")
        core = _validate_core(core)
        source = data.get("source")
        workload = data.get("workload")
        if (source is None) == (workload is None):
            raise ProtocolError(400, "pass exactly one of 'source' or "
                                     "'workload'")
        payload = {"source": source, "workload": workload, "core": core,
                   "entry_symbol": data.get("entry_symbol", "main"),
                   "max_steps": data.get("max_steps", 5_000_000),
                   "want_spans": obs.enabled()}
        outcome = await self._await_pool(work.simulate_worker, payload)
        if outcome["status"] == "error":
            self.registry.inc("server.client_errors")
            return {"_status": 400, "error": outcome["error"],
                    "status": 400, "request_id": rid}
        if span:
            span.attach(core=core, cycles=outcome["cycles"])
        return {"schema": SERVER_SCHEMA, "request_id": rid,
                "core": core, "cycles": outcome["cycles"],
                "steps": outcome["steps"], "ipc": outcome["ipc"],
                "counters": outcome["counters"]}


class ServerThread:
    """Run a :class:`MaoServer` on a background thread — the in-process
    harness tests and benches use (``with ServerThread(config) as s:``).
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.server: Optional[MaoServer] = None
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:     # surface startup failures
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        server = MaoServer(self.config)

        def on_ready(bound: MaoServer) -> None:
            self.server = bound
            self.port = bound.port
            self._ready.set()

        await server.run(install_signals=False, ready=on_ready)

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        if self.port is None:
            raise RuntimeError("server did not become ready")
        return self

    def stop(self) -> None:
        if (self._loop is not None and self.server is not None
                and not self._loop.is_closed()):
            try:
                self._loop.call_soon_threadsafe(self.server.request_drain)
            except RuntimeError:
                pass               # loop torn down between check and call
        self._thread.join(timeout=60)

    def __exit__(self, *exc_info) -> None:
        self.stop()
