"""CLI verbs for the service: ``mao serve`` and ``mao remote``.

``mao serve`` runs a :class:`~repro.server.app.MaoServer` in the
foreground until SIGTERM/SIGINT, then drains gracefully and exits 0.  On
startup it prints one machine-parseable line::

    pymao-server listening on 127.0.0.1:8423

which is how scripts discover an ephemeral ``--port 0`` binding (the CI
smoke and the bench harness both parse it).

``mao remote`` is the thin client-side mirror of the single-file driver:
``mao remote --port P --mao=SPEC in.s -o out.s`` optimizes over the wire
(``--health`` / ``--metrics`` query the observability endpoints
instead), retrying through :class:`repro.server.client.Client`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from repro import obs
from repro.server.app import MaoServer, ServerConfig
from repro.server.client import Client, DEFAULT_PORT, ServerError


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mao serve",
        description="run the PyMAO optimization service")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="listen port (0 = ephemeral; the bound port "
                             "is printed on startup)")
    parser.add_argument("--parallel-backend", choices=("thread", "process"),
                        default="thread",
                        help="worker pool kind for request execution "
                             "(default: thread)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="worker pool size (default: --max-inflight)")
    parser.add_argument("--max-inflight", type=int, default=4, metavar="N",
                        help="concurrently executing requests (default: 4)")
    parser.add_argument("--max-queue", type=int, default=16, metavar="N",
                        help="admitted-but-waiting bound; beyond "
                             "max-inflight+max-queue requests get 503 + "
                             "Retry-After (default: 16)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="per-request admission-to-response bound "
                             "(default: 120)")
    parser.add_argument("--max-body-bytes", type=int,
                        default=8 * 1024 * 1024, metavar="BYTES",
                        help="request body size cap (default: 8 MiB)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact-cache directory (default: "
                             "$PYMAO_CACHE_DIR, else ~/.cache/pymao)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the shared artifact cache")
    parser.add_argument("--cache-salt", default=None,
                        help=argparse.SUPPRESS)   # test/fleet isolation
    parser.add_argument("--profile-dir", default=None, metavar="DIR",
                        help="PGO profile-store directory served at "
                             "/v1/profile (default: $PYMAO_PROFILE_DIR, "
                             "else ~/.cache/pymao-profiles)")
    parser.add_argument("--test-delay-s", type=float, default=0.0,
                        help=argparse.SUPPRESS)   # deterministic slot-holding
    parser.add_argument("--trace-out", default=None, metavar="FILE.jsonl",
                        help="write request spans as pymao.trace/1 JSONL "
                             "on drain")
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = build_serve_parser().parse_args(argv)
    config = ServerConfig(host=args.host, port=args.port,
                          parallel_backend=args.parallel_backend,
                          workers=args.workers,
                          max_inflight=args.max_inflight,
                          max_queue=args.max_queue,
                          request_timeout_s=args.timeout,
                          max_body_bytes=args.max_body_bytes,
                          cache=not args.no_cache,
                          cache_dir=args.cache_dir,
                          cache_salt=args.cache_salt,
                          profile_dir=args.profile_dir,
                          test_delay_s=args.test_delay_s,
                          trace_out=args.trace_out)
    if config.trace_out:
        obs.set_enabled(True)

    def ready(server: MaoServer) -> None:
        print("pymao-server listening on %s:%d"
              % (config.host, server.port), flush=True)

    try:
        asyncio.run(MaoServer(config).run(ready=ready))
    except ValueError as exc:
        print("mao serve: %s" % exc, file=sys.stderr)
        return 2
    return 0


def build_fleet_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mao fleet",
        description="run the sharded PyMAO optimization fleet: one "
                    "front door routing to N worker processes with "
                    "cache-affinity consistent hashing")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help="front-door listen port (0 = ephemeral; the "
                             "bound port is printed on startup)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker process count (default: 2)")
    parser.add_argument("--worker-backend", choices=("thread", "process"),
                        default="thread",
                        help="each worker's pool kind (default: thread)")
    parser.add_argument("--worker-inflight", type=int, default=1,
                        metavar="N",
                        help="execution slots per worker (default: 1)")
    parser.add_argument("--worker-queue", type=int, default=64, metavar="N",
                        help="per-worker admitted-waiting bound "
                             "(default: 64)")
    parser.add_argument("--max-queue", type=int, default=64, metavar="N",
                        help="front-door queue on top of the fleet's "
                             "execution slots (default: 64)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="per-request admission-to-response bound "
                             "(default: 120)")
    parser.add_argument("--max-body-bytes", type=int,
                        default=8 * 1024 * 1024, metavar="BYTES",
                        help="request body size cap (default: 8 MiB)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared artifact-cache directory all workers "
                             "open (default: $PYMAO_CACHE_DIR, else "
                             "~/.cache/pymao)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the shared artifact cache")
    parser.add_argument("--cache-salt", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--profile-dir", default=None, metavar="DIR",
                        help="shared PGO profile-store directory all "
                             "workers serve at /v1/profile (default: "
                             "$PYMAO_PROFILE_DIR, else "
                             "~/.cache/pymao-profiles)")
    parser.add_argument("--test-delay-s", type=float, default=0.0,
                        help=argparse.SUPPRESS)
    return parser


def fleet_main(argv: Optional[List[str]] = None) -> int:
    from repro.server.fleet import FleetConfig, FleetServer

    args = build_fleet_parser().parse_args(argv)
    config = FleetConfig(host=args.host, port=args.port,
                         workers=args.workers,
                         worker_backend=args.worker_backend,
                         worker_inflight=args.worker_inflight,
                         worker_queue=args.worker_queue,
                         max_queue=args.max_queue,
                         request_timeout_s=args.timeout,
                         max_body_bytes=args.max_body_bytes,
                         cache=not args.no_cache,
                         cache_dir=args.cache_dir,
                         cache_salt=args.cache_salt,
                         profile_dir=args.profile_dir,
                         worker_test_delay_s=args.test_delay_s)

    def ready(fleet: FleetServer) -> None:
        print("pymao-fleet listening on %s:%d (%d workers)"
              % (config.host, fleet.port, config.workers), flush=True)

    try:
        asyncio.run(FleetServer(config).run(ready=ready))
    except (ValueError, RuntimeError) as exc:
        print("mao fleet: %s" % exc, file=sys.stderr)
        return 2
    return 0


def build_remote_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mao remote",
        description="talk to a running PyMAO service")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--retries", type=int, default=5,
                        help="retry budget for 503/connection failures "
                             "(default: 5)")
    parser.add_argument("--mao", action="append", default=[],
                        metavar="SPEC", help="pass spec (as in plain mao)")
    parser.add_argument("--health", action="store_true",
                        help="print the /healthz payload and exit")
    parser.add_argument("--metrics", action="store_true",
                        help="print the /metrics payload and exit")
    parser.add_argument("-o", dest="output", default=None,
                        help="write the optimized assembly here "
                             "(default: stdout)")
    parser.add_argument("input", nargs="?",
                        help="input assembly file to optimize remotely")
    return parser


def remote_main(argv: Optional[List[str]] = None) -> int:
    parser = build_remote_parser()
    args = parser.parse_args(argv)
    client = Client(args.host, args.port, timeout=args.timeout,
                    retries=args.retries)
    try:
        if args.health or args.metrics:
            payload = client.healthz() if args.health else client.metrics()
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if not args.input:
            parser.error("no input file (or use --health/--metrics)")
        with open(args.input, "r", encoding="utf-8") as handle:
            source = handle.read()
        spec = ":".join(args.mao) if args.mao else None
        result = client.optimize(source, spec, filename=args.input)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(result["asm"])
        else:
            sys.stdout.write(result["asm"])
        sys.stderr.write("mao remote: %s cache=%s request-id=%s\n"
                         % (args.input, result.get("cache"),
                            result.get("request_id")))
        return 0
    except ServerError as exc:
        print("mao remote: %s" % exc, file=sys.stderr)
        return 1
    finally:
        client.close()
