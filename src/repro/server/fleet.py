"""The sharded optimization fleet: front door + N process workers.

One ``mao serve`` process executes every pipeline behind a single GIL,
so its throughput is capped at one core no matter how many the host
has.  ``mao fleet`` removes that ceiling with a two-tier shape:

* a **front door** — this module: one asyncio process that owns
  admission control and backpressure for the whole fleet, terminates
  client connections, and *routes* each request instead of executing
  anything CPU-bound itself;
* **N workers** — plain ``mao serve`` subprocesses on loopback
  ephemeral ports (the existing :mod:`repro.server.http` framing is the
  local transport), each with its own GIL, its own worker pool, and its
  own in-memory state, all sharing **one on-disk artifact cache**.

**Cache-affinity routing.**  Requests are placed with a consistent-hash
ring (:mod:`repro.server.ring`) keyed by the request's *artifact cache
key* (salt + source sha + injective spec encoding — exactly the key the
worker will look up).  Identical requests therefore land on the worker
whose in-memory state and singleflight table are warm.  Affinity is an
optimization, never a correctness requirement: the content-addressed
store is shared, so *any* worker can serve *any* key — a put by worker
A is a hit for worker B (cross-instance coherence; pinned by tests).

**Zero dropped admitted requests.**  The front door admits a request
iff the fleet has capacity (``workers x worker_inflight`` executing
slots plus ``max_queue``); everything else is refused up front with
``503 + Retry-After``.  Once admitted, a request always ends in a real
response: forwarding retries across the ring's preference order when a
worker is draining or unreachable, and waits out transient all-busy
windows, bounded end-to-end by ``request_timeout_s`` (``504``).

**Rolling restarts.**  ``POST /admin/restart`` drains one worker at a
time: the member leaves the ring (its keys reroute to ring successors
with bounded movement), the worker process finishes its inflight
requests under SIGTERM's graceful-drain contract, a replacement is
spawned on the same *slot id* and rejoins the ring — re-inheriting the
same ring segment, whose artifacts are already warm on the shared
store.  Admitted requests never drop across the whole cycle.

``GET /healthz`` aggregates every worker's health (live ``inflight`` /
``queue_depth`` per worker plus fleet totals and ring membership);
``GET /metrics`` merges every worker's registry snapshot with the front
door's own counters into one ``pymao.trace/1`` metrics event.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.batch.cache import (
    DEFAULT_MAX_BYTES,
    default_cache_dir,
    default_salt,
    source_sha256,
)
from repro.server.http import (
    ProtocolError,
    Request,
    Response,
    error_payload,
    read_request,
    read_response,
    render_json,
    render_request,
    render_response,
)
from repro.result import register_schema
from repro.server.ring import DEFAULT_REPLICAS, HashRing

#: Schema tag carried by fleet-level response envelopes (/healthz).
FLEET_SCHEMA = register_schema("fleet", "pymao.fleet/1")

#: Headers never forwarded between hops (owned per-connection).
_HOP_HEADERS = ("connection", "content-length", "host", "keep-alive")


@dataclass
class FleetConfig:
    """Everything a :class:`FleetServer` needs to run."""

    host: str = "127.0.0.1"
    port: int = 8423                  # 0 = ephemeral (bound port on start)
    workers: int = 2                  # worker process count
    worker_backend: str = "thread"    # each worker's pool kind
    worker_inflight: int = 1          # execution slots per worker
    worker_queue: int = 64            # per-worker admitted-waiting bound
    max_queue: int = 64               # front-door queue on top of slots
    request_timeout_s: float = 120.0  # admission-to-response bound
    max_body_bytes: int = 8 * 1024 * 1024
    retry_after_s: float = 1.0        # advisory backoff floor on 503s
    cache: bool = True
    cache_dir: Optional[str] = None   # None = default_cache_dir()
    cache_salt: Optional[str] = None  # None = default_salt()
    max_cache_bytes: int = DEFAULT_MAX_BYTES
    ring_replicas: int = DEFAULT_REPLICAS
    drain_grace_s: float = 60.0
    #: Root of the shared PGO profile store each worker serves at
    #: ``/v1/profile``; ``None`` = :func:`repro.pgo.default_profile_dir`.
    profile_dir: Optional[str] = None
    worker_start_timeout_s: float = 30.0
    #: Artificial pre-execution delay per work item inside each worker
    #: (the server's ``test_delay_s`` hook) — the fleet bench uses it as
    #: a pinned per-request service floor; never set in production.
    worker_test_delay_s: float = 0.0

    def capacity(self) -> int:
        return self.workers * self.worker_inflight + self.max_queue


class ForwardError(Exception):
    """One forward attempt failed at the transport/framing level."""


class WorkerSlot:
    """One fleet slot: a stable ring member id bound to a sequence of
    worker process generations."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.member = "w%d" % index
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.generation = 0
        self.state = "down"            # down | live | draining

    def describe(self) -> Dict[str, Any]:
        return {"slot": self.index, "member": self.member,
                "state": self.state, "port": self.port,
                "generation": self.generation}


def _worker_env() -> Dict[str, str]:
    """The child's environment: whatever ``repro`` tree this process is
    running from must be importable in the worker."""
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    return env


class FleetServer:
    """The front door: admission + consistent-hash routing over N
    ``mao serve`` worker subprocesses."""

    def __init__(self, config: FleetConfig, *,
                 registry: Optional[obs.Registry] = None) -> None:
        self.config = config
        self.registry = registry if registry is not None else obs.REGISTRY
        self.port: Optional[int] = None
        self.ring = HashRing(replicas=config.ring_replicas)
        self._slots: List[WorkerSlot] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._drain_requested: Optional[asyncio.Event] = None
        self._restart_lock: Optional[asyncio.Lock] = None
        self._admitted = 0
        self._conn_tasks: Set[asyncio.Task] = set()
        self._idle_writers: Set[asyncio.StreamWriter] = set()
        self._request_seq = itertools.count(1)
        #: member -> idle upstream connections [(reader, writer, gen)].
        self._pools: Dict[str, List[Tuple[asyncio.StreamReader,
                                          asyncio.StreamWriter, int]]] = {}
        salt = config.cache_salt or default_salt()
        self._key_salt = salt.encode("utf-8")

    # -- worker lifecycle ---------------------------------------------------

    def _worker_argv(self) -> List[str]:
        config = self.config
        argv = [sys.executable, "-m", "repro.cli", "serve",
                "--host", "127.0.0.1", "--port", "0",
                "--parallel-backend", config.worker_backend,
                "--max-inflight", str(config.worker_inflight),
                "--max-queue", str(config.worker_queue),
                "--timeout", "%g" % config.request_timeout_s,
                "--max-body-bytes", str(config.max_body_bytes)]
        if config.cache:
            argv += ["--cache-dir",
                     config.cache_dir or default_cache_dir()]
            if config.cache_salt:
                argv += ["--cache-salt", config.cache_salt]
        else:
            argv += ["--no-cache"]
        if config.profile_dir:
            argv += ["--profile-dir", config.profile_dir]
        if config.worker_test_delay_s:
            argv += ["--test-delay-s", "%g" % config.worker_test_delay_s]
        return argv

    def _spawn_worker_sync(self, slot: WorkerSlot) -> None:
        """Start one worker subprocess and wait for its bound port.
        Blocking — always called through the loop's executor."""
        proc = subprocess.Popen(self._worker_argv(),
                                stdout=subprocess.PIPE, text=True,
                                env=_worker_env())
        deadline = time.monotonic() + self.config.worker_start_timeout_s
        line = ""
        while time.monotonic() < deadline:
            line = proc.stdout.readline().strip()
            break
        if "listening on" not in line:
            proc.kill()
            proc.wait()
            raise RuntimeError("worker %s failed to start: %r"
                               % (slot.member, line))
        slot.proc = proc
        slot.port = int(line.rsplit(":", 1)[1])
        slot.generation += 1
        slot.state = "live"

    def _stop_worker_sync(self, slot: WorkerSlot) -> int:
        """SIGTERM one worker and wait for its graceful drain."""
        proc = slot.proc
        if proc is None:
            return 0
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=self.config.drain_grace_s)
        except subprocess.TimeoutExpired:
            proc.kill()
            code = proc.wait()
        slot.proc = None
        slot.port = None
        slot.state = "down"
        return code

    def _close_pool(self, member: str) -> None:
        for _reader, writer, _gen in self._pools.pop(member, []):
            writer.close()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        config = self.config
        if config.workers < 1:
            raise ValueError("fleet needs at least one worker")
        if config.worker_inflight < 1:
            raise ValueError("worker_inflight must be >= 1")
        if config.worker_backend not in ("thread", "process"):
            raise ValueError("unknown worker backend %r"
                             % config.worker_backend)
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        self._restart_lock = asyncio.Lock()
        self._slots = [WorkerSlot(i) for i in range(config.workers)]
        try:
            await asyncio.gather(*[
                self._loop.run_in_executor(None, self._spawn_worker_sync,
                                           slot)
                for slot in self._slots])
        except Exception:
            for slot in self._slots:
                if slot.proc is not None:
                    await self._loop.run_in_executor(
                        None, self._stop_worker_sync, slot)
            raise
        for slot in self._slots:
            self.ring.add(slot.member)
        self.registry.gauge("fleet.workers_live", len(self.ring))
        self._server = await asyncio.start_server(
            self._handle_conn, config.host, config.port)
        for sock in self._server.sockets or []:
            if sock.family in (socket.AF_INET, socket.AF_INET6):
                self.port = sock.getsockname()[1]
                break

    async def run(self, *, install_signals: bool = True,
                  ready=None) -> None:
        """Start, serve until drain is requested, then drain."""
        await self.start()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self.request_drain)
        try:
            if ready is not None:
                ready(self)
            await self._drain_requested.wait()
        finally:
            if install_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    self._loop.remove_signal_handler(signum)
            await self.drain()

    def request_drain(self) -> None:
        self._draining = True
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def drain(self) -> None:
        """Stop accepting, finish inflight forwards, stop the workers."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._idle_writers):
            writer.close()
        pending = [task for task in self._conn_tasks if not task.done()]
        if pending:
            _done, not_done = await asyncio.wait(
                pending, timeout=self.config.drain_grace_s)
            for task in not_done:
                task.cancel()
            if not_done:
                await asyncio.gather(*not_done, return_exceptions=True)
        for slot in self._slots:
            self.ring.remove(slot.member)
            self._close_pool(slot.member)
        await asyncio.gather(*[
            self._loop.run_in_executor(None, self._stop_worker_sync, slot)
            for slot in self._slots])

    # -- connection handling (mirrors MaoServer) ----------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._conn_loop(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            self._idle_writers.discard(writer)
            writer.close()

    async def _conn_loop(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        while True:
            self._idle_writers.add(writer)
            try:
                request = await read_request(
                    reader, max_body_bytes=self.config.max_body_bytes)
            except ProtocolError as exc:
                self.registry.inc("fleet.protocol_errors")
                writer.write(render_json(
                    exc.status, error_payload(exc.status, exc.message),
                    keep_alive=False))
                await writer.drain()
                return
            finally:
                self._idle_writers.discard(writer)
            if request is None:
                return
            keep_alive = request.keep_alive and not self._draining
            response = await self._dispatch(request, keep_alive)
            writer.write(response)
            await writer.drain()
            if not keep_alive:
                return

    # -- routing ------------------------------------------------------------

    async def _dispatch(self, request: Request, keep_alive: bool) -> bytes:
        rid = request.headers.get("x-request-id") \
            or "fleet-%06d" % next(self._request_seq)
        self.registry.inc("fleet.requests")
        headers = {"X-Request-Id": rid}
        route = (request.method, request.path)
        try:
            if route == ("GET", "/healthz"):
                payload = await self._fleet_health(rid)
                return render_json(200, payload, keep_alive=keep_alive,
                                   headers=headers)
            if route == ("GET", "/metrics"):
                payload = await self._fleet_metrics(rid)
                return render_json(200, payload, keep_alive=keep_alive,
                                   headers=headers)
            if route == ("POST", "/admin/restart"):
                return await self._handle_restart(request, rid,
                                                  keep_alive, headers)
            if request.method == "POST" \
                    and request.path.startswith("/v1/"):
                return await self._dispatch_work(request, rid, keep_alive,
                                                 headers)
            self.registry.inc("fleet.not_found")
            return render_json(404, error_payload(
                404, "no route for %s %s" % route, rid),
                keep_alive=keep_alive, headers=headers)
        except ProtocolError as exc:
            return render_json(exc.status,
                               error_payload(exc.status, exc.message, rid),
                               keep_alive=keep_alive, headers=headers)
        except Exception as exc:   # a front-door bug, not a client error
            self.registry.inc("fleet.errors")
            return render_json(500, error_payload(
                500, "internal error: %s: %s" % (type(exc).__name__, exc),
                rid), keep_alive=keep_alive, headers=headers)

    # -- admission + forwarding ---------------------------------------------

    def routing_key(self, request: Request) -> str:
        """The consistent-hash key for *request*.

        ``/v1/optimize`` hashes the **artifact cache key** (salt +
        source sha + injective spec encoding — byte-identical to the
        key the worker's cache lookup will compute), so routing
        affinity and cache affinity coincide.  ``/v1/tune`` hashes the
        **input digest** alone (salt + source sha): every prefix the
        tuner materializes for one input lands on one worker, so a
        re-tune — or a tune after related tunes of the same input —
        replays that worker's warm prefixes.  ``/v1/profile`` hashes
        the **same input-digest key** as ``/v1/tune`` (the profile
        document's digest *is* the source sha), so an input's profile
        ingests land on the worker already holding its warm tune
        prefixes — profile affinity = cache affinity.  Anything
        unparsable falls back to a raw body hash; the routed worker
        answers the 400 with the real diagnostics.
        """
        if request.path == "/v1/profile":
            try:
                data = json.loads(request.body.decode("utf-8"))
                value = data.get("digest")
                if value is None and isinstance(data.get("profile"), dict):
                    value = data["profile"].get("digest")
                if isinstance(value, str):
                    digest = hashlib.sha256()
                    digest.update(self._key_salt)
                    digest.update(b"\x00")
                    digest.update(value.encode("utf-8"))
                    return "input\x00" + digest.hexdigest()
            except (ValueError, UnicodeDecodeError, TypeError,
                    AttributeError):
                pass
        if request.path == "/v1/tune":
            try:
                data = json.loads(request.body.decode("utf-8"))
                source = data.get("source")
                if source is None and isinstance(data.get("workload"), str):
                    # Resolve kernel names here so tune-by-name and
                    # tune-by-text of the same kernel share a worker.
                    from repro.workloads import kernels
                    factory = getattr(kernels, data["workload"], None)
                    if (callable(factory) and getattr(
                            factory, "__module__", None) == kernels.__name__):
                        source = factory()
                if isinstance(source, str):
                    digest = hashlib.sha256()
                    digest.update(self._key_salt)
                    digest.update(b"\x00")
                    digest.update(source_sha256(source).encode("ascii"))
                    return "input\x00" + digest.hexdigest()
            except (ValueError, UnicodeDecodeError, TypeError,
                    AttributeError):
                pass
        if request.path == "/v1/optimize":
            try:
                from repro.passes.manager import encode_pass_spec
                from repro.server.app import MaoServer

                data = json.loads(request.body.decode("utf-8"))
                source = data.get("source")
                if isinstance(source, str):
                    items = MaoServer._parse_spec(data)
                    digest = hashlib.sha256()
                    digest.update(self._key_salt)
                    digest.update(b"\x00")
                    digest.update(source_sha256(source).encode("ascii"))
                    digest.update(b"\x00")
                    digest.update(encode_pass_spec(items).encode("utf-8"))
                    return "artifact\x00" + digest.hexdigest()
            except (ProtocolError, ValueError, UnicodeDecodeError,
                    TypeError, AttributeError):
                pass
        body_sha = hashlib.sha256(request.body).hexdigest()
        return "body\x00%s\x00%s" % (request.path, body_sha)

    def _live_slot(self, member: str) -> Optional[WorkerSlot]:
        for slot in self._slots:
            if slot.member == member and slot.state == "live":
                return slot
        return None

    async def _dispatch_work(self, request: Request, rid: str,
                             keep_alive: bool,
                             headers: Dict[str, str]) -> bytes:
        config = self.config
        if self._draining or self._admitted >= config.capacity():
            self.registry.inc("fleet.rejected")
            headers = dict(headers)
            headers["Retry-After"] = "%g" % config.retry_after_s
            return render_json(503, error_payload(
                503, "draining" if self._draining else
                "fleet at capacity (admitted >= %d)" % config.capacity(),
                rid), keep_alive=keep_alive, headers=headers)
        self._admitted += 1
        self.registry.gauge("fleet.admitted", self._admitted)
        try:
            try:
                member, response = await asyncio.wait_for(
                    self._route_and_forward(request, rid),
                    timeout=config.request_timeout_s)
            except asyncio.TimeoutError:
                self.registry.inc("fleet.timeouts")
                return render_json(504, error_payload(
                    504, "request exceeded %.1fs"
                    % config.request_timeout_s, rid),
                    keep_alive=keep_alive, headers=headers)
            out_headers = dict(headers)
            out_headers["X-Worker"] = member
            if "retry-after" in response.headers:
                out_headers["Retry-After"] = response.headers["retry-after"]
            return render_response(
                response.status, response.body,
                content_type=response.headers.get("content-type",
                                                  "application/json"),
                keep_alive=keep_alive, headers=out_headers)
        finally:
            self._admitted -= 1
            self.registry.gauge("fleet.admitted", self._admitted)

    async def _route_and_forward(self, request: Request,
                                 rid: str) -> Tuple[str, Response]:
        """Forward an *admitted* request until a worker produces a real
        response.  Retries across the ring's preference order on
        draining/unreachable workers, and waits out all-busy windows;
        the caller's ``wait_for`` bounds the whole loop."""
        key = self.routing_key(request)
        fwd_headers = {name: value for name, value in
                       request.headers.items()
                       if name not in _HOP_HEADERS}
        fwd_headers["x-request-id"] = rid
        data = render_request(request.method, request.path, request.body,
                              headers=fwd_headers, keep_alive=True)
        first = True
        while True:
            if not first:
                await asyncio.sleep(0.05)
            first = False
            busy: Optional[Tuple[str, Response]] = None
            for member in self.ring.preference(key):
                slot = self._live_slot(member)
                if slot is None:
                    continue
                try:
                    response = await self._forward_once(slot, data)
                except ForwardError:
                    self.registry.inc("fleet.forward_errors")
                    continue
                if response.status == 503:
                    # Draining worker: reroute now.  Busy worker: note
                    # it and keep looking — a ring neighbour with free
                    # slots serves the request (the shared store makes
                    # any worker correct, affinity is an optimization).
                    if b'"draining"' in response.body:
                        self.registry.inc("fleet.rerouted")
                        continue
                    busy = (member, response)
                    continue
                if member != self.ring.route_or_none(key):
                    self.registry.inc("fleet.spills")
                self.registry.inc("fleet.forwarded")
                return member, response
            if busy is not None:
                # Whole fleet at capacity right now: the request is
                # admitted, so wait for a slot instead of bouncing the
                # 503 to the client.
                self.registry.inc("fleet.busy_waits")
                continue
            # No live worker at all (mid-restart window): wait for the
            # replacement to join.
            self.registry.inc("fleet.no_worker_waits")

    async def _acquire_conn(self, slot: WorkerSlot):
        pool = self._pools.setdefault(slot.member, [])
        while pool:
            reader, writer, generation = pool.pop()
            if generation == slot.generation and not writer.is_closing():
                return reader, writer, True
            writer.close()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", slot.port)
        except OSError as exc:
            raise ForwardError("connect to %s: %s" % (slot.member, exc))
        self.registry.inc("fleet.upstream_connects")
        return reader, writer, False

    async def _forward_once(self, slot: WorkerSlot,
                            data: bytes) -> Response:
        """One request over the worker's keep-alive pool.  A failure on
        a pooled connection is replayed once on a fresh one (the worker
        may have closed the idle socket); a fresh-connection failure is
        the caller's problem (reroute)."""
        for fresh_retry in (False, True):
            reader, writer, reused = await self._acquire_conn(slot)
            generation = slot.generation
            try:
                writer.write(data)
                await writer.drain()
                response = await read_response(
                    reader, max_body_bytes=self.config.max_body_bytes)
            except (ProtocolError, ConnectionError, OSError,
                    asyncio.IncompleteReadError) as exc:
                writer.close()
                if reused and not fresh_retry:
                    continue
                raise ForwardError("forward to %s: %s" % (slot.member, exc))
            if response.keep_alive and slot.state == "live" \
                    and generation == slot.generation:
                self._pools.setdefault(slot.member, []).append(
                    (reader, writer, generation))
            else:
                writer.close()
            return response
        raise ForwardError("unreachable")   # pragma: no cover

    # -- worker queries (healthz/metrics fan-out) ---------------------------

    async def _query_worker(self, slot: WorkerSlot,
                            path: str) -> Optional[Dict[str, Any]]:
        data = render_request("GET", path, keep_alive=True)
        try:
            response = await asyncio.wait_for(
                self._forward_once(slot, data), timeout=10.0)
            if response.status != 200:
                return None
            payload = json.loads(response.body.decode("utf-8"))
            return payload if isinstance(payload, dict) else None
        except (ForwardError, asyncio.TimeoutError, ValueError,
                UnicodeDecodeError):
            return None

    async def _fleet_health(self, rid: str) -> Dict[str, Any]:
        from repro import __version__

        live = [slot for slot in self._slots if slot.state == "live"]
        healths = await asyncio.gather(*[
            self._query_worker(slot, "/healthz") for slot in live])
        by_member = {slot.member: health
                     for slot, health in zip(live, healths)}
        workers = []
        inflight = queue_depth = 0
        degraded = False
        for slot in self._slots:
            entry = slot.describe()
            health = by_member.get(slot.member)
            entry["health"] = health
            if slot.state != "live" or health is None:
                degraded = True
            else:
                inflight += int(health.get("inflight", 0))
                queue_depth += int(health.get("queue_depth", 0))
            workers.append(entry)
        status = "draining" if self._draining else (
            "degraded" if degraded else "ok")
        return {"schema": FLEET_SCHEMA,
                "status": status,
                "version": __version__,
                "request_id": rid,
                "workers": workers,
                "inflight": inflight,
                "queue_depth": queue_depth,
                "admitted": self._admitted,
                "capacity": self.config.capacity(),
                "ring": self.ring.describe(),
                "cache": self.config.cache}

    async def _fleet_metrics(self, rid: str) -> Dict[str, Any]:
        live = [slot for slot in self._slots if slot.state == "live"]
        snapshots = await asyncio.gather(*[
            self._query_worker(slot, "/metrics") for slot in live])
        values = [snap.get("values", {}) for snap in snapshots
                  if snap is not None]
        values.append(self.registry.snapshot(collectors=False))
        event = obs.metrics_event(merge_metric_values(values))
        event["request_id"] = rid
        event["workers"] = len(live)
        return event

    # -- rolling restart ----------------------------------------------------

    async def _handle_restart(self, request: Request, rid: str,
                              keep_alive: bool,
                              headers: Dict[str, str]) -> bytes:
        data: Dict[str, Any] = {}
        if request.body:
            parsed = request.json()
            if not isinstance(parsed, dict):
                raise ProtocolError(400, "restart body must be a JSON "
                                         "object")
            data = parsed
        target = data.get("worker")
        if target is None:
            targets = list(self._slots)          # rolling: all, one by one
        else:
            if not isinstance(target, int) \
                    or not 0 <= target < len(self._slots):
                raise ProtocolError(400, "field 'worker' must be a slot "
                                         "index in [0, %d)"
                                    % len(self._slots))
            targets = [self._slots[target]]
        if self._draining:
            raise ProtocolError(503, "draining")
        start = time.monotonic()
        restarted = []
        async with self._restart_lock:
            for slot in targets:
                await self._restart_slot(slot)
                restarted.append(slot.describe())
        return render_json(200, {
            "schema": FLEET_SCHEMA, "request_id": rid,
            "restarted": restarted,
            "elapsed_s": round(time.monotonic() - start, 6),
            "ring": self.ring.describe()},
            keep_alive=keep_alive, headers=headers)

    async def _restart_slot(self, slot: WorkerSlot) -> None:
        """Drain one worker while the ring reroutes its keys, then
        bring up its replacement and re-add it."""
        self.registry.inc("fleet.restarts")
        self.ring.remove(slot.member)
        self.registry.gauge("fleet.workers_live", len(self.ring))
        slot.state = "draining"
        self._close_pool(slot.member)
        await self._loop.run_in_executor(None, self._stop_worker_sync,
                                         slot)
        await self._loop.run_in_executor(None, self._spawn_worker_sync,
                                         slot)
        self.ring.add(slot.member)
        self.registry.gauge("fleet.workers_live", len(self.ring))


def merge_metric_values(
        snapshots: List[Dict[str, Any]]) -> Dict[str, float]:
    """Merge per-worker registry snapshots into one fleet view.

    Counters and gauges are summed (``server.inflight`` across workers
    *is* the fleet's inflight).  Histogram summary components keep
    their meaning instead of being summed blindly: ``*.min`` is the
    min, ``*.max`` the max, and ``*.mean`` is recomputed from the
    merged ``*.sum`` / ``*.count`` pair when both exist.
    """
    merged: Dict[str, float] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                continue
            if name not in merged:
                merged[name] = value
            elif name.endswith(".min"):
                merged[name] = min(merged[name], value)
            elif name.endswith(".max"):
                merged[name] = max(merged[name], value)
            else:
                merged[name] += value
    for name in [n for n in merged if n.endswith(".mean")]:
        stem = name[:-len(".mean")]
        count = merged.get(stem + ".count")
        total = merged.get(stem + ".sum")
        if count and total is not None:
            merged[name] = total / count
    return dict(sorted(merged.items()))


class FleetThread:
    """Run a :class:`FleetServer` on a background thread — the test and
    bench harness (``with FleetThread(config) as fleet:``)."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.fleet: Optional[FleetServer] = None
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        fleet = FleetServer(self.config)

        def on_ready(bound: FleetServer) -> None:
            self.fleet = bound
            self.port = bound.port
            self._ready.set()

        await fleet.run(install_signals=False, ready=on_ready)

    def __enter__(self) -> "FleetThread":
        self._thread.start()
        self._ready.wait(timeout=120)
        if self._startup_error is not None:
            raise RuntimeError("fleet failed to start") \
                from self._startup_error
        if self.port is None:
            raise RuntimeError("fleet did not become ready")
        return self

    def stop(self) -> None:
        if (self._loop is not None and self.fleet is not None
                and not self._loop.is_closed()):
            try:
                self._loop.call_soon_threadsafe(self.fleet.request_drain)
            except RuntimeError:
                pass
        self._thread.join(timeout=120)

    def __exit__(self, *exc_info) -> None:
        self.stop()
