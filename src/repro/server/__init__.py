"""``repro.server`` — the asyncio optimization service.

The network layer over :mod:`repro.api`: a long-lived HTTP server
(``mao serve``) exposing ``/v1/optimize``, ``/v1/batch`` and
``/v1/simulate`` behind bounded admission control, all sharing one
persistent artifact cache and one worker pool, plus ``/healthz`` and
``/metrics`` views over :mod:`repro.obs`.  The blocking
:class:`~repro.server.client.Client` (and the ``mao remote`` verb) is
the supported way to talk to it.

``mao fleet`` (:mod:`repro.server.fleet`) scales the same service
horizontally: a front-door process routes to N ``mao serve`` worker
subprocesses over a consistent-hash ring (:mod:`repro.server.ring`)
keyed by the artifact cache key, with aggregated health/metrics and
rolling restarts.

In-process use::

    from repro.server import ServerConfig, ServerThread, Client

    config = ServerConfig(port=0, cache_dir="/tmp/pymao-cache")
    with ServerThread(config) as handle:
        with Client(port=handle.port) as client:
            result = client.optimize(source, "REDTEST:LOOP16")
            result["asm"], result["pipeline"], result["cache"]
"""

from repro.server.app import (
    MaoServer,
    SERVER_SCHEMA,
    ServerConfig,
    ServerThread,
)
from repro.server.client import (
    Client,
    DEFAULT_PORT,
    ServerBusy,
    ServerError,
    ServerUnavailable,
)
from repro.server.fleet import (
    FLEET_SCHEMA,
    FleetConfig,
    FleetServer,
    FleetThread,
)
from repro.server.ring import HashRing

__all__ = [
    "MaoServer",
    "ServerConfig",
    "ServerThread",
    "SERVER_SCHEMA",
    "Client",
    "DEFAULT_PORT",
    "ServerError",
    "ServerBusy",
    "ServerUnavailable",
    "FleetConfig",
    "FleetServer",
    "FleetThread",
    "FLEET_SCHEMA",
    "HashRing",
]
