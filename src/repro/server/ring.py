"""Consistent-hash routing ring for the optimization fleet.

The front door routes every ``/v1/*`` request to one of N worker
processes by hashing the request's *artifact cache key* onto a ring of
virtual nodes.  The properties the fleet depends on, in order:

* **determinism across processes** — positions come from SHA-256 over
  ``member \\x00 vnode-index``, never from :func:`hash` (which is
  randomized per process by ``PYTHONHASHSEED``).  Any two processes
  holding the same membership route every key identically, so a
  restarted front door, a test, and a bench all agree on placement;
* **routing affinity** — while membership is stable, one key maps to
  one member.  Identical requests therefore land on the worker whose
  in-memory state (singleflight table, parser caches) is warm;
* **bounded movement** — adding a member steals keys only *for that
  member*; removing one reassigns only *its* keys.  Keys never shuffle
  between surviving members, so a rolling restart invalidates at most
  ``1/N`` of the fleet's affinity instead of all of it.

Members are opaque strings (the fleet uses stable slot ids ``w0..wN-1``
so a restarted worker process re-inherits its ring segment and its
warm on-disk artifacts).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Virtual nodes per member.  128 points keeps the max/mean load skew
#: of a handful of workers within ~20% without making membership
#: changes noticeable (re-sorting a few hundred ints).
DEFAULT_REPLICAS = 128


def _point(member: str, index: int) -> int:
    digest = hashlib.sha256(
        b"%s\x00%d" % (member.encode("utf-8"), index)).digest()
    return int.from_bytes(digest[:8], "big")


def hash_key(key: str) -> int:
    """Where *key* sits on the ring's 64-bit keyspace (deterministic
    across processes — same construction as the member points)."""
    digest = hashlib.sha256(b"\x01" + key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over string members."""

    def __init__(self, members: Iterable[str] = (), *,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []   # sorted (hash, member)
        self._hashes: List[int] = []               # parallel sort key
        self._members: Dict[str, bool] = {}
        for member in members:
            self.add(member)

    # -- membership ---------------------------------------------------------

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        """Add *member*; adding an existing member is a no-op."""
        if member in self._members:
            return
        self._members[member] = True
        for index in range(self.replicas):
            entry = (_point(member, index), member)
            at = bisect.bisect_left(self._points, entry)
            self._points.insert(at, entry)
            self._hashes.insert(at, entry[0])

    def remove(self, member: str) -> None:
        """Remove *member*; removing an absent member is a no-op."""
        if member not in self._members:
            return
        del self._members[member]
        self._points = [p for p in self._points if p[1] != member]
        self._hashes = [h for h, _m in self._points]

    # -- routing ------------------------------------------------------------

    def route(self, key: str) -> str:
        """The member owning *key*.  Raises :class:`LookupError` on an
        empty ring — the caller (the front door) turns that into a 503,
        not a misrouted request."""
        member = self.route_or_none(key)
        if member is None:
            raise LookupError("empty hash ring")
        return member

    def route_or_none(self, key: str) -> Optional[str]:
        if not self._points:
            return None
        at = bisect.bisect_right(self._hashes, hash_key(key))
        if at == len(self._points):
            at = 0                 # wrap: the ring is circular
        return self._points[at][1]

    def preference(self, key: str) -> List[str]:
        """Every member, nearest owner first — the front door's retry
        order when the owner is draining or unreachable.  Distinct
        members in ring order starting at ``route(key)``."""
        if not self._points:
            return []
        start = bisect.bisect_right(self._hashes, hash_key(key))
        seen: Dict[str, bool] = {}
        order: List[str] = []
        for offset in range(len(self._points)):
            _h, member = self._points[(start + offset) % len(self._points)]
            if member not in seen:
                seen[member] = True
                order.append(member)
                if len(order) == len(self._members):
                    break
        return order

    def describe(self) -> Dict[str, object]:
        """Ring metadata for ``/healthz`` and tests."""
        return {"members": self.members, "replicas": self.replicas,
                "points": len(self._points)}
