"""Minimal HTTP/1.1 framing over asyncio streams — stdlib only.

The server needs exactly four things from HTTP: parse a request line +
headers + ``Content-Length`` body off a :class:`asyncio.StreamReader`,
enforce size caps *while reading* (a cap checked after buffering the
whole body is no cap at all), render a response with a correct
``Content-Length``, and keep-alive semantics so a closed-loop client can
reuse its connection.  Chunked transfer encoding, trailers, pipelining
and the rest of RFC 9112 are deliberately out of scope; a request using
them is answered with ``501``.

Errors raised while reading are :class:`ProtocolError` carrying the HTTP
status the connection handler should answer with (``400`` malformed,
``411`` missing length, ``413`` over the body cap, ``431`` over the
header cap) before closing the connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from http.client import responses as _REASONS
from typing import Any, Dict, Optional, Tuple

#: Upper bound on the request line + all header lines together.
MAX_HEADER_BYTES = 32 * 1024


class ProtocolError(Exception):
    """A malformed or over-limit request; ``status`` is the answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request.  Header names are lower-cased."""

    method: str
    path: str
    version: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """Decode the body as JSON; raises :class:`ProtocolError` (400)
        on undecodable bytes so handlers answer uniformly."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, "invalid JSON body: %s" % exc)

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 defaults to keep-alive; 1.0 defaults to close."""
        connection = self.headers.get("connection", "").lower()
        if "close" in connection:
            return False
        if self.version == "HTTP/1.0":
            return "keep-alive" in connection
        return True


async def _read_line(reader: asyncio.StreamReader, budget: int) -> bytes:
    """One CRLF-terminated line within the remaining header *budget*."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""          # clean EOF between requests
        raise ProtocolError(400, "truncated request")
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, "header line too long")
    if len(line) > budget:
        raise ProtocolError(431, "request headers exceed %d bytes"
                            % MAX_HEADER_BYTES)
    return line


async def read_request(reader: asyncio.StreamReader, *,
                       max_body_bytes: int) -> Optional[Request]:
    """Parse one request off *reader*.

    Returns ``None`` on clean EOF before any byte arrives (the peer
    closed an idle keep-alive connection) and raises
    :class:`ProtocolError` on anything malformed or over-limit.
    """
    budget = MAX_HEADER_BYTES
    start = await _read_line(reader, budget)
    if not start:
        return None
    budget -= len(start)
    parts = start.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(400, "malformed request line")
    method, target, version = parts
    path = target.split("?", 1)[0]

    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader, budget)
        if not line:
            raise ProtocolError(400, "truncated headers")
        budget -= len(line)
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(501, "chunked transfer encoding not supported")

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(400, "malformed Content-Length")
        if length < 0:
            raise ProtocolError(400, "malformed Content-Length")
        # The cap is enforced *before* the body is read: an oversized
        # request costs the server one header parse, not the bytes.
        if length > max_body_bytes:
            raise ProtocolError(413, "request body %d bytes exceeds the "
                                     "%d byte cap" % (length, max_body_bytes))
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "truncated body")
    elif method in ("POST", "PUT"):
        raise ProtocolError(411, "Content-Length required")

    return Request(method=method, path=path, version=version,
                   headers=headers, body=body)


@dataclass
class Response:
    """One parsed upstream response (the front door reading a worker).
    Header names are lower-cased."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return "close" not in self.headers.get("connection", "").lower()


async def read_response(reader: asyncio.StreamReader, *,
                        max_body_bytes: int) -> Response:
    """Parse one HTTP/1.1 response off *reader* — the front door's half
    of the loopback transport to a worker.  Only what our own
    :func:`render_response` emits is in scope (status line, headers,
    ``Content-Length`` body); anything else raises
    :class:`ProtocolError` (502 — the *upstream* broke the contract).
    """
    budget = MAX_HEADER_BYTES
    try:
        start = await _read_line(reader, budget)
    except ProtocolError:
        raise ProtocolError(502, "malformed response head from worker")
    if not start:
        raise ProtocolError(502, "worker closed the connection mid-request")
    budget -= len(start)
    parts = start.decode("latin-1").strip().split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ProtocolError(502, "malformed response line from worker")
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError(502, "malformed response status from worker")

    headers: Dict[str, str] = {}
    while True:
        try:
            line = await _read_line(reader, budget)
        except ProtocolError:
            raise ProtocolError(502, "oversized response headers from "
                                     "worker")
        if not line:
            raise ProtocolError(502, "truncated response headers from "
                                     "worker")
        budget -= len(line)
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(502, "malformed Content-Length from worker")
        if length < 0 or length > max_body_bytes:
            raise ProtocolError(502, "worker response body out of bounds")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(502, "truncated response body from worker")
    return Response(status=status, headers=headers, body=body)


def render_request(method: str, path: str, body: bytes = b"", *,
                   headers: Optional[Dict[str, str]] = None,
                   keep_alive: bool = True) -> bytes:
    """The full request byte string (head + body) — what the front door
    writes to a worker when forwarding.  ``Content-Length`` and
    ``Connection`` are owned here; *headers* carries everything else
    (``Content-Type``, ``X-Request-Id``, ...)."""
    lines = ["%s %s HTTP/1.1" % (method, path),
             "Content-Length: %d" % len(body),
             "Connection: %s" % ("keep-alive" if keep_alive else "close")]
    for name, value in (headers or {}).items():
        lines.append("%s: %s" % (name, value))
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def render_response(status: int, body: bytes, *,
                    content_type: str = "application/json",
                    keep_alive: bool = True,
                    headers: Optional[Dict[str, str]] = None) -> bytes:
    """The full response byte string (head + body)."""
    reason = _REASONS.get(status, "Unknown")
    lines = ["HTTP/1.1 %d %s" % (status, reason),
             "Content-Type: %s" % content_type,
             "Content-Length: %d" % len(body),
             "Connection: %s" % ("keep-alive" if keep_alive else "close")]
    for name, value in (headers or {}).items():
        lines.append("%s: %s" % (name, value))
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def render_json(status: int, payload: Any, *,
                keep_alive: bool = True,
                headers: Optional[Dict[str, str]] = None) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return render_response(status, body, keep_alive=keep_alive,
                           headers=headers)


def error_payload(status: int, message: str,
                  request_id: Optional[str] = None) -> Dict[str, Any]:
    """The uniform error body every non-2xx response carries."""
    payload: Dict[str, Any] = {"error": message, "status": status}
    if request_id is not None:
        payload["request_id"] = request_id
    return payload


def parse_response(raw: bytes) -> Tuple[int, Dict[str, str], bytes]:
    """Split a raw response into (status, headers, body) — test helper,
    the real client uses :mod:`http.client`."""
    head, _sep, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _sep, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body
