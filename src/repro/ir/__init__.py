"""The MAO intermediate representation.

After parsing, "all assembly directives and instructions form one long list
of MAO IR nodes" (paper, §II).  :class:`~repro.ir.unit.MaoUnit` owns that
list (a doubly-linked entry chain so passes can insert and delete in O(1)),
and overlays the higher-level notions of sections and functions with
iterators that hide section-splitting details from optimization passes.
"""

from repro.ir.entries import (
    DirectiveEntry,
    InstructionEntry,
    LabelEntry,
    MaoEntry,
    OpaqueEntry,
)
from repro.ir.unit import Function, MaoUnit, Section
from repro.ir.builder import build_unit, parse_unit

__all__ = [
    "MaoEntry",
    "InstructionEntry",
    "LabelEntry",
    "DirectiveEntry",
    "OpaqueEntry",
    "MaoUnit",
    "Section",
    "Function",
    "build_unit",
    "parse_unit",
]
