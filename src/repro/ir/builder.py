"""Build a MaoUnit from parsed statements.

Responsibilities:

* translate parser statements into IR entries,
* track the current section across ``.text`` / ``.data`` / ``.section`` /
  ``.previous`` directives and assign each entry its section,
* identify functions: a function begins at a label marked
  ``.type name,@function`` — or, as a fallback for bare test inputs, at any
  non-local label in a code section that is followed by instructions — and
  extends to the next function start or end of the unit.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.ir.entries import (
    DirectiveEntry,
    InstructionEntry,
    LabelEntry,
    MaoEntry,
    OpaqueEntry,
)
from repro.ir.unit import Function, MaoUnit, Section
from repro.x86.parser import (
    ParsedDirective,
    ParsedInstruction,
    ParsedLabel,
    ParsedOpaque,
    Statement,
    parse_asm_text,
)

_SECTION_DIRECTIVES = {"text", "data", "bss", "rodata"}


def _section_from_directive(unit: MaoUnit,
                            directive: ParsedDirective) -> Optional[Section]:
    name = directive.name
    if name in _SECTION_DIRECTIVES:
        return unit.get_section("." + name)
    if name in ("section", "pushsection"):
        args = directive.str_args()
        if not args:
            return None
        sect_name = args[0]
        flags = ""
        if len(args) >= 2:
            flags = args[1].strip('"')
        return unit.get_section(sect_name, flags)
    return None


def build_unit(statements: List[Statement],
               filename: str = "<asm>") -> MaoUnit:
    """Construct a MaoUnit (sections + functions resolved) from statements."""
    unit = MaoUnit(filename)
    current = unit.get_section(".text")
    section_stack: List[Section] = []
    previous: Optional[Section] = None

    function_symbols: Set[str] = set()

    for stmt in statements:
        if isinstance(stmt, ParsedLabel):
            entry: MaoEntry = LabelEntry(stmt.name, stmt.lineno)
        elif isinstance(stmt, ParsedInstruction):
            entry = InstructionEntry(stmt.insn, stmt.lineno)
        elif isinstance(stmt, ParsedOpaque):
            entry = OpaqueEntry(stmt.text, stmt.lineno)
        elif isinstance(stmt, ParsedDirective):
            entry = DirectiveEntry(stmt.name, stmt.args, stmt.lineno)
            if stmt.name == "type":
                args = entry.str_args()
                if len(args) >= 2 and args[1].lstrip("@%") == "function":
                    function_symbols.add(args[0])
            new_section = _section_from_directive(unit, stmt)
            if new_section is not None:
                if stmt.name == "pushsection":
                    section_stack.append(current)
                previous = current
                current = new_section
            elif stmt.name == "popsection" and section_stack:
                previous = current
                current = section_stack.pop()
            elif stmt.name == "previous" and previous is not None:
                current, previous = previous, current
        else:
            raise TypeError("unknown statement %r" % (stmt,))
        entry.section = current
        unit.append(entry)

    _find_functions(unit, function_symbols)
    return unit


def _looks_like_function_label(entry: LabelEntry) -> bool:
    if entry.name.startswith(".L"):
        return False
    if entry.section is None or not entry.section.is_code:
        return False
    # Followed (in the same section) by at least one instruction before the
    # next label.
    node = entry.next
    while node is not None:
        if node.section is entry.section:
            if isinstance(node, InstructionEntry):
                return True
            if isinstance(node, LabelEntry) \
                    and not node.name.startswith(".L"):
                # Another function-like label before any instruction.
                return False
        node = node.next
    return False


def _find_functions(unit: MaoUnit, function_symbols: Set[str]) -> None:
    """Populate unit.functions from labels."""
    starts: List[LabelEntry] = []
    for entry in unit.entries():
        if not isinstance(entry, LabelEntry):
            continue
        if entry.name in function_symbols or (
                not function_symbols and _looks_like_function_label(entry)):
            starts.append(entry)

    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else None
        unit.functions.append(
            Function(start.name, unit, start, end, start.section))


def parse_unit(source: str, filename: str = "<asm>",
               syntax: str = "att") -> MaoUnit:
    """Parse assembly text straight into a MaoUnit.

    ``syntax`` selects the input flavour: ``"att"`` (default) or
    ``"intel"`` — MAO, being gas-based, accepts both (paper §II).
    """
    if syntax == "intel":
        from repro.x86.intel_parser import parse_intel_text
        return build_unit(parse_intel_text(source), filename)
    if syntax != "att":
        raise ValueError("unknown syntax %r" % syntax)
    return build_unit(parse_asm_text(source), filename)
