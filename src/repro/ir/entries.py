"""IR entry node types.

Every element of an assembly file — instruction, label, or directive — is a
:class:`MaoEntry` in one doubly-linked list owned by the
:class:`~repro.ir.unit.MaoUnit`.  Entries carry their section assignment so
function iterators can transparently skip intervening data sections.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.x86.instruction import Instruction

if TYPE_CHECKING:
    from repro.ir.unit import Section


class MaoEntry:
    """Base class for all IR list nodes."""

    __slots__ = ("prev", "next", "section", "lineno")

    def __init__(self, lineno: int = 0) -> None:
        self.prev: Optional[MaoEntry] = None
        self.next: Optional[MaoEntry] = None
        self.section: Optional["Section"] = None
        self.lineno = lineno

    @property
    def is_instruction(self) -> bool:
        return isinstance(self, InstructionEntry)

    @property
    def is_label(self) -> bool:
        return isinstance(self, LabelEntry)

    @property
    def is_directive(self) -> bool:
        return isinstance(self, DirectiveEntry)

    def to_asm(self) -> str:
        raise NotImplementedError


class InstructionEntry(MaoEntry):
    """An instruction node wrapping the single Instruction struct."""

    __slots__ = ("insn",)

    def __init__(self, insn: Instruction, lineno: int = 0) -> None:
        super().__init__(lineno)
        self.insn = insn

    def to_asm(self) -> str:
        return "\t" + str(self.insn)

    def __repr__(self) -> str:
        return "<insn %s>" % self.insn


class LabelEntry(MaoEntry):
    __slots__ = ("name",)

    def __init__(self, name: str, lineno: int = 0) -> None:
        super().__init__(lineno)
        self.name = name

    def to_asm(self) -> str:
        return "%s:" % self.name

    def __repr__(self) -> str:
        return "<label %s>" % self.name


class DirectiveEntry(MaoEntry):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: str = "", lineno: int = 0) -> None:
        super().__init__(lineno)
        self.name = name
        self.args = args

    def to_asm(self) -> str:
        if self.args:
            return "\t.%s\t%s" % (self.name, self.args)
        return "\t.%s" % self.name

    def int_args(self) -> List[int]:
        """Comma-separated integer arguments; non-integers skipped."""
        from repro.x86.lexer import parse_integer, split_operands
        values = []
        for part in split_operands(self.args):
            part = part.strip()
            if part:
                try:
                    values.append(parse_integer(part))
                except ValueError:
                    pass
        return values

    def str_args(self) -> List[str]:
        from repro.x86.lexer import split_operands
        return [p.strip() for p in split_operands(self.args) if p.strip()]

    def __repr__(self) -> str:
        return "<.%s %s>" % (self.name, self.args)


class OpaqueEntry(MaoEntry):
    """An unparsed statement carried through verbatim."""

    __slots__ = ("text",)

    def __init__(self, text: str, lineno: int = 0) -> None:
        super().__init__(lineno)
        self.text = text

    def to_asm(self) -> str:
        return "\t" + self.text

    def __repr__(self) -> str:
        return "<opaque %s>" % self.text
