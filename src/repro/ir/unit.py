"""MaoUnit: the IR container with section and function overlays.

The unit owns one doubly-linked list of entries.  Sections and functions are
*views* over that list:

* A :class:`Section` collects the (possibly discontiguous) runs of entries
  assembled into it.
* A :class:`Function` spans from its defining label to the next function /
  end of section.  Per the paper, a function whose body is interrupted by an
  intermittent data section (e.g. a jump table emitted mid-function for a C
  ``switch``) is still iterated as one continuous instruction stream —
  ``Function.entries()`` transparently skips entries belonging to other
  sections.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from repro.ir.entries import InstructionEntry, LabelEntry, MaoEntry
from repro.x86.instruction import Instruction


class Section:
    """A named output section (.text, .data, ...)."""

    def __init__(self, name: str, flags: str = "") -> None:
        self.name = name
        self.flags = flags

    @property
    def is_code(self) -> bool:
        if self.name.startswith(".text"):
            return True
        return "x" in self.flags

    def __repr__(self) -> str:
        return "<section %s>" % self.name


class Function:
    """A view of the entries forming one function."""

    def __init__(self, name: str, unit: "MaoUnit", start: MaoEntry,
                 end: Optional[MaoEntry], section: Section) -> None:
        self.name = name
        self.unit = unit
        self.start = start          # the function's LabelEntry
        self.end = end              # first entry after the function (or None)
        self.section = section
        #: Set by CFG construction when an indirect branch can't be resolved.
        self.flagged_unresolved_branch = False

    def entries(self) -> Iterator[MaoEntry]:
        """All entries of the function, skipping other sections' entries."""
        entry = self.start
        while entry is not None and entry is not self.end:
            next_entry = entry.next
            if entry.section is self.section:
                yield entry
            entry = next_entry

    def instructions(self) -> Iterator[InstructionEntry]:
        for entry in self.entries():
            if isinstance(entry, InstructionEntry):
                yield entry

    def labels(self) -> Iterator[LabelEntry]:
        for entry in self.entries():
            if isinstance(entry, LabelEntry):
                yield entry

    def __repr__(self) -> str:
        return "<function %s>" % self.name


class MaoUnit:
    """The whole IR for one assembly file."""

    def __init__(self, filename: str = "<asm>") -> None:
        self.filename = filename
        self.head: Optional[MaoEntry] = None
        self.tail: Optional[MaoEntry] = None
        self.sections: Dict[str, Section] = {}
        self.functions: List[Function] = []
        self._size = 0
        #: Structural mutations are atomic so the parallel pass pipeline can
        #: run function-scoped passes concurrently: function bodies are
        #: disjoint, but entries at function boundaries share prev/next
        #: links with the neighbouring function.
        self._mutate_lock = threading.RLock()

    # ---- list management ---------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def entries(self) -> Iterator[MaoEntry]:
        entry = self.head
        while entry is not None:
            next_entry = entry.next   # robust against removal during iteration
            yield entry
            entry = next_entry

    def append(self, entry: MaoEntry) -> MaoEntry:
        with self._mutate_lock:
            entry.prev = self.tail
            entry.next = None
            if self.tail is not None:
                self.tail.next = entry
            else:
                self.head = entry
            self.tail = entry
            self._size += 1
        return entry

    def insert_after(self, anchor: MaoEntry, entry: MaoEntry) -> MaoEntry:
        with self._mutate_lock:
            entry.prev = anchor
            entry.next = anchor.next
            if anchor.next is not None:
                anchor.next.prev = entry
            else:
                self.tail = entry
            anchor.next = entry
            if entry.section is None:
                entry.section = anchor.section
            self._size += 1
        return entry

    def insert_before(self, anchor: MaoEntry, entry: MaoEntry) -> MaoEntry:
        with self._mutate_lock:
            entry.next = anchor
            entry.prev = anchor.prev
            if anchor.prev is not None:
                anchor.prev.next = entry
            else:
                self.head = entry
            anchor.prev = entry
            if entry.section is None:
                entry.section = anchor.section
            self._size += 1
        return entry

    def remove(self, entry: MaoEntry) -> None:
        with self._mutate_lock:
            if entry.prev is not None:
                entry.prev.next = entry.next
            else:
                self.head = entry.next
            if entry.next is not None:
                entry.next.prev = entry.prev
            else:
                self.tail = entry.prev
            entry.prev = entry.next = None
            self._size -= 1

    def replace(self, old: MaoEntry, new: MaoEntry) -> MaoEntry:
        self.insert_after(old, new)
        self.remove(old)
        return new

    # ---- convenience builders ----------------------------------------------

    def insert_instruction_after(self, anchor: MaoEntry,
                                 insn: Instruction) -> InstructionEntry:
        return self.insert_after(anchor, InstructionEntry(insn))

    def insert_instruction_before(self, anchor: MaoEntry,
                                  insn: Instruction) -> InstructionEntry:
        return self.insert_before(anchor, InstructionEntry(insn))

    # ---- lookups -------------------------------------------------------------

    def get_section(self, name: str, flags: str = "") -> Section:
        if name not in self.sections:
            self.sections[name] = Section(name, flags)
        return self.sections[name]

    def find_label(self, name: str) -> Optional[LabelEntry]:
        for entry in self.entries():
            if isinstance(entry, LabelEntry) and entry.name == name:
                return entry
        return None

    def label_map(self) -> Dict[str, LabelEntry]:
        table: Dict[str, LabelEntry] = {}
        for entry in self.entries():
            if isinstance(entry, LabelEntry):
                table[entry.name] = entry
        return table

    def function_named(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)

    # ---- emission --------------------------------------------------------------

    def to_asm(self) -> str:
        """Emit the unit back to textual assembly (the ASM pass backend)."""
        lines = [entry.to_asm() for entry in self.entries()]
        return "\n".join(lines) + "\n"

    def instruction_count(self) -> int:
        return sum(1 for e in self.entries() if e.is_instruction)
