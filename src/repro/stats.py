"""Statistical validation of performance results (paper §V.B).

"In order to obtain consistent results, we ran the SPEC benchmarks more
often than the three suggested times and performed statistical valuation,
ensuring that the results were statistically significant."

On real hardware, repetition fights measurement noise.  Our simulator is
deterministic, so the analogous question is robustness across *layout*
variation: the same program measured under many Nopinizer seeds gives a
distribution, and a transformation's effect is significant when it clears
that distribution.  :func:`significant_speedup` runs Welch's t-test over
two such sample sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from scipy import stats as _scipy_stats


@dataclass
class Summary:
    """Mean and confidence interval of one sample set."""

    samples: List[float]
    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    confidence: float

    def __str__(self) -> str:
        return "%.1f ± %.1f (%d%% CI, n=%d)" % (
            self.mean, (self.ci_high - self.ci_low) / 2,
            round(self.confidence * 100), len(self.samples))


def summarize(samples: Sequence[float],
              confidence: float = 0.95) -> Summary:
    """Mean with a t-distribution confidence interval."""
    values = list(float(s) for s in samples)
    if not values:
        raise ValueError("no samples")
    mean = sum(values) / len(values)
    if len(values) == 1:
        return Summary(values, mean, 0.0, mean, mean, confidence)
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    stdev = math.sqrt(variance)
    sem = stdev / math.sqrt(len(values))
    t_crit = _scipy_stats.t.ppf((1 + confidence) / 2, len(values) - 1)
    return Summary(values, mean, stdev,
                   mean - t_crit * sem, mean + t_crit * sem, confidence)


@dataclass
class SignificanceResult:
    baseline: Summary
    variant: Summary
    speedup: float               # relative mean improvement
    p_value: float
    significant: bool

    def __str__(self) -> str:
        verdict = "significant" if self.significant \
            else "NOT significant"
        return "speedup %+.2f%% (p=%.4f, %s)" % (
            self.speedup * 100, self.p_value, verdict)


def significant_speedup(baseline: Sequence[float],
                        variant: Sequence[float],
                        alpha: float = 0.05) -> SignificanceResult:
    """Welch's t-test: is the variant's cycle distribution lower?

    ``baseline`` and ``variant`` are cycle counts (lower is better).
    """
    base_summary = summarize(baseline)
    var_summary = summarize(variant)
    if base_summary.stdev == 0 and var_summary.stdev == 0:
        identical = base_summary.mean == var_summary.mean
        p_value = 1.0 if identical else 0.0
    else:
        _, p_value = _scipy_stats.ttest_ind(list(baseline), list(variant),
                                            equal_var=False)
    speedup = base_summary.mean / var_summary.mean - 1.0
    return SignificanceResult(
        baseline=base_summary, variant=var_summary, speedup=speedup,
        p_value=float(p_value),
        significant=bool(p_value < alpha
                         and base_summary.mean != var_summary.mean))


def layout_distribution(source: str, model,
                        spec: Optional[str] = None,
                        seeds: Sequence[int] = range(8),
                        density: float = 0.05,
                        max_steps: int = 4_000_000) -> List[float]:
    """Cycle counts of a program across Nopinizer layout perturbations.

    For each seed, the program is NOP-perturbed (simulating the layout
    noise real measurement campaigns see), the optional pass pipeline is
    applied on top, and cycles are measured.
    """
    from repro.ir import parse_unit
    from repro.passes import run_passes
    from repro.uarch.pipeline import simulate_unit

    cycles: List[float] = []
    for seed in seeds:
        unit = parse_unit(source)
        run_passes(unit, "NOPIN=seed[%d]+density[%s]" % (seed, density))
        if spec:
            run_passes(unit, spec)
        result, stats = simulate_unit(unit, model, max_steps=max_steps)
        if result.reason != "ret":
            raise RuntimeError("perturbed run did not terminate")
        cycles.append(float(stats.cycles))
    return cycles
