"""Simple data-flow apparatus: reaching definitions and liveness.

The paper: "MAO offers a simple data flow apparatus, but no alias or
points-to analysis.  Since many assembly instructions work on registers,
this data flow mechanism is powerful and solves many otherwise difficult to
reason about problems."

Locations are register *alias groups* (``eax`` and ``rax`` are one location)
plus individual RFLAGS bits written ``F:ZF`` etc., so the same machinery
serves register analyses and the precise condition-code reasoning behind
redundant-test removal.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG, BasicBlock
from repro.ir.entries import InstructionEntry
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction

FLAG_PREFIX = "F:"


def flag_loc(flag: str) -> str:
    return FLAG_PREFIX + flag


def location_uses(insn: Instruction) -> Set[str]:
    """Locations (register groups + flag bits) the instruction reads."""
    try:
        locs = set(sideeffects.reg_uses(insn))
        locs |= {flag_loc(f) for f in sideeffects.flags_read(insn)}
    except sideeffects.UnknownSideEffects:
        # Conservative: reads everything it mentions.
        locs = {r.group for r in insn.register_operands()}
    return locs


def location_defs(insn: Instruction) -> Set[str]:
    """Locations the instruction writes (undefined flags count as writes)."""
    try:
        locs = set(sideeffects.reg_defs(insn))
        locs |= {flag_loc(f) for f in (sideeffects.flags_written(insn)
                                       | sideeffects.flags_undefined(insn))}
    except sideeffects.UnknownSideEffects:
        locs = {r.group for r in insn.register_operands()}
    return locs


class ReachingDefinitions:
    """Classic forward may-analysis over (location, defining entry) pairs."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        # Definition sites, one id per (entry, location).
        self._sites: List[Tuple[InstructionEntry, str]] = []
        self._site_ids: Dict[Tuple[int, str], int] = {}
        self._entry_block: Dict[int, BasicBlock] = {}
        self._in: Dict[int, Set[int]] = {}
        self._out: Dict[int, Set[int]] = {}
        self._defs_by_loc: Dict[str, Set[int]] = defaultdict(set)
        self._compute()

    def _site(self, entry: InstructionEntry, loc: str) -> int:
        key = (id(entry), loc)
        if key not in self._site_ids:
            self._site_ids[key] = len(self._sites)
            self._sites.append((entry, loc))
            self._defs_by_loc[loc].add(self._site_ids[key])
        return self._site_ids[key]

    def _compute(self) -> None:
        cfg = self.cfg
        gen: Dict[int, Set[int]] = {}
        kill_locs: Dict[int, Set[str]] = {}

        for block in cfg.blocks:
            block_gen: Dict[str, int] = {}
            locs_killed: Set[str] = set()
            for entry in block.entries:
                self._entry_block[id(entry)] = block
                for loc in location_defs(entry.insn):
                    block_gen[loc] = self._site(entry, loc)
                    locs_killed.add(loc)
            gen[block.index] = set(block_gen.values())
            kill_locs[block.index] = locs_killed

        in_sets: Dict[int, Set[int]] = {b.index: set() for b in cfg.blocks}
        out_sets: Dict[int, Set[int]] = {b.index: set() for b in cfg.blocks}

        changed = True
        while changed:
            changed = False
            for block in cfg.blocks:
                new_in: Set[int] = set()
                for pred in block.predecessors:
                    new_in |= out_sets.get(pred.index, set())
                killed = set()
                for loc in kill_locs[block.index]:
                    killed |= self._defs_by_loc[loc]
                new_out = gen[block.index] | (new_in - killed)
                if new_in != in_sets[block.index] \
                        or new_out != out_sets[block.index]:
                    in_sets[block.index] = new_in
                    out_sets[block.index] = new_out
                    changed = True
        self._in = in_sets
        self._out = out_sets

    def reaching_defs(self, at: InstructionEntry,
                      loc: str) -> List[InstructionEntry]:
        """Definitions of *loc* that reach the program point just before
        *at* (block-local definitions shadow incoming ones)."""
        block = self._entry_block.get(id(at))
        if block is None:
            block = self.cfg.block_of(at)
            if block is None:
                return []
        live: Set[int] = {s for s in self._in.get(block.index, set())
                          if self._sites[s][1] == loc}
        for entry in block.entries:
            if entry is at:
                break
            defs = location_defs(entry.insn)
            if loc in defs:
                live = {self._site(entry, loc)}
        return [self._sites[s][0] for s in live]

    def unique_reaching_def(self, at: InstructionEntry,
                            loc: str) -> Optional[InstructionEntry]:
        defs = self.reaching_defs(at, loc)
        if len(defs) == 1:
            return defs[0]
        return None


class Liveness:
    """Backward liveness over register groups and flag bits."""

    def __init__(self, cfg: CFG,
                 exit_live: Optional[Set[str]] = None) -> None:
        self.cfg = cfg
        #: Locations assumed live at function exit (ABI: return registers
        #: and callee-saved state).  Flags are dead at exit.
        if exit_live is None:
            exit_live = {"rax", "rdx", "rsp", "rbp", "rbx",
                         "r12", "r13", "r14", "r15",
                         "xmm0", "xmm1"}
        self.exit_live = set(exit_live)
        self._live_in: Dict[int, Set[str]] = {}
        self._live_out: Dict[int, Set[str]] = {}
        self._compute()

    def _compute(self) -> None:
        cfg = self.cfg
        use: Dict[int, Set[str]] = {}
        defs: Dict[int, Set[str]] = {}
        for block in cfg.blocks:
            block_use: Set[str] = set()
            block_def: Set[str] = set()
            for entry in block.entries:
                for loc in location_uses(entry.insn):
                    if loc not in block_def:
                        block_use.add(loc)
                block_def |= location_defs(entry.insn)
            use[block.index] = block_use
            defs[block.index] = block_def

        live_in: Dict[int, Set[str]] = {b.index: set() for b in cfg.blocks}
        live_out: Dict[int, Set[str]] = {b.index: set() for b in cfg.blocks}

        changed = True
        while changed:
            changed = False
            for block in reversed(cfg.blocks):
                new_out: Set[str] = set()
                for succ in block.successors:
                    if succ is self.cfg.exit:
                        new_out |= self.exit_live
                    else:
                        new_out |= live_in.get(succ.index, set())
                if block.has_unresolved_exit:
                    # Unknown targets: everything may be live.
                    new_out |= self.exit_live
                new_in = use[block.index] | (new_out - defs[block.index])
                if new_out != live_out[block.index] \
                        or new_in != live_in[block.index]:
                    live_out[block.index] = new_out
                    live_in[block.index] = new_in
                    changed = True
        self._live_in = live_in
        self._live_out = live_out

    def live_in(self, block: BasicBlock) -> Set[str]:
        return set(self._live_in.get(block.index, set()))

    def live_out(self, block: BasicBlock) -> Set[str]:
        return set(self._live_out.get(block.index, set()))

    def live_after(self, block: BasicBlock,
                   entry: InstructionEntry) -> Set[str]:
        """Locations live immediately after *entry* inside *block*."""
        live = self.live_out(block)
        found = False
        for node in reversed(block.entries):
            if node is entry:
                found = True
                break
            live -= location_defs(node.insn)
            live |= location_uses(node.insn)
        if not found:
            raise ValueError("entry not in block")
        return live

    def is_dead_after(self, block: BasicBlock, entry: InstructionEntry,
                      loc: str) -> bool:
        return loc not in self.live_after(block, entry)
