"""Per-function control-flow graph.

Per the paper (§II): "MAO offers a per-function control-flow graph (CFG).
In the presence of indirect jumps, building this graph can be undecidable.
However, we rely on the fact that we handle compiler generated assembly
files and recognize a handful of patterns to handle indirect jumps properly,
e.g., to find jump tables.  If, for a function, a particular branch cannot
be resolved, the function gets flagged."

Two resolution tiers are implemented, matching the paper's account of the
246-out-of-320 incident:

1. *Base pattern*: the indirect jump's own operand names the jump table
   (``jmp *.Ltab(,%rax,8)``) — resolvable by looking at the table contents.
2. *Reaching-definitions pattern*: the table address was loaded into a
   register earlier (``lea .Ltab(%rip), %rdx`` ... ``jmp *%rax`` after
   ``movq (%rdx,%rcx,8), %rax``); resolved by chasing reaching definitions
   of the address registers.  This is the "single pattern" that took the
   unresolved count from 246/320 down to 4/320.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ir.entries import DirectiveEntry, InstructionEntry, LabelEntry
from repro.ir.unit import Function, MaoUnit
from repro.x86.instruction import Instruction
from repro.x86.operands import Memory, RegisterOperand


class BasicBlock:
    """A maximal straight-line instruction sequence."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.labels: List[str] = []
        self.entries: List[InstructionEntry] = []
        self.successors: List["BasicBlock"] = []
        self.predecessors: List["BasicBlock"] = []
        #: True when this block ends in an unresolved indirect branch.
        self.has_unresolved_exit = False

    @property
    def first(self) -> Optional[InstructionEntry]:
        return self.entries[0] if self.entries else None

    @property
    def last(self) -> Optional[InstructionEntry]:
        return self.entries[-1] if self.entries else None

    def instructions(self) -> Iterator[Instruction]:
        for entry in self.entries:
            yield entry.insn

    def add_successor(self, other: "BasicBlock") -> None:
        if other not in self.successors:
            self.successors.append(other)
            other.predecessors.append(self)

    def __repr__(self) -> str:
        label = self.labels[0] if self.labels else "bb%d" % self.index
        return "<block %s (%d insns)>" % (label, len(self.entries))


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.blocks: List[BasicBlock] = []
        self.entry: Optional[BasicBlock] = None
        self.exit = BasicBlock(-1)           # virtual exit
        self.label_to_block: Dict[str, BasicBlock] = {}
        #: Indirect branches that could not be resolved to targets.
        self.unresolved_branches: List[InstructionEntry] = []
        #: Indirect branches resolved, with the tier that resolved them
        #: ("operand" or "reaching-defs").
        self.resolved_branches: List[Tuple[InstructionEntry, str]] = []

    @property
    def is_well_formed(self) -> bool:
        return not self.unresolved_branches

    def block_of(self, entry: InstructionEntry) -> Optional[BasicBlock]:
        for block in self.blocks:
            if entry in block.entries:
                return block
        return None

    def reverse_postorder(self) -> List[BasicBlock]:
        seen: Set[int] = set()
        order: List[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            stack = [(block, iter(block.successors))]
            seen.add(id(block))
            while stack:
                node, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if id(succ) not in seen and succ is not self.exit:
                        seen.add(id(succ))
                        stack.append((succ, iter(succ.successors)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        if self.entry is not None:
            visit(self.entry)
        order.reverse()
        return order

    def __repr__(self) -> str:
        return "<cfg %s: %d blocks>" % (self.function.name, len(self.blocks))


def _jump_table_targets(unit: MaoUnit, symbol: str) -> Optional[List[str]]:
    """Read the labels stored in a jump table at *symbol*."""
    label_entry = None
    for entry in unit.entries():
        if isinstance(entry, LabelEntry) and entry.name == symbol:
            label_entry = entry
            break
    if label_entry is None:
        return None
    targets: List[str] = []
    node = label_entry.next
    while node is not None:
        if isinstance(node, DirectiveEntry):
            if node.name in ("quad", "long"):
                for arg in node.str_args():
                    targets.append(arg)
                node = node.next
                continue
            if node.name in ("align", "p2align", "balign"):
                node = node.next
                continue
        break
    return targets or None


def _operand_table_symbol(insn: Instruction) -> Optional[str]:
    """Tier-1 pattern: the branch operand itself names the table."""
    target = insn.branch_target_operand()
    if isinstance(target, Memory) and target.symbol is not None:
        return target.symbol
    return None


def _split_into_blocks(function: Function) -> Tuple[List[BasicBlock],
                                                    Dict[str, BasicBlock]]:
    blocks: List[BasicBlock] = []
    label_map: Dict[str, BasicBlock] = {}
    current: Optional[BasicBlock] = None
    pending_labels: List[str] = []

    def new_block() -> BasicBlock:
        block = BasicBlock(len(blocks))
        blocks.append(block)
        return block

    for entry in function.entries():
        if isinstance(entry, LabelEntry):
            # A label always starts a new block (if the current one is
            # non-empty) and may alias an empty pending block.
            if current is None or current.entries:
                current = new_block()
            current.labels.append(entry.name)
            label_map[entry.name] = current
            pending_labels = []
        elif isinstance(entry, InstructionEntry):
            if current is None:
                current = new_block()
            current.entries.append(entry)
            if entry.insn.is_control_transfer and not entry.insn.is_call:
                current = None
        # Directives don't affect block structure.
    return [b for b in blocks if b.entries or b.labels], label_map


def build_cfg(function: Function, unit: Optional[MaoUnit] = None,
              resolve_indirect: bool = True) -> CFG:
    """Build (and, if requested, indirect-resolve) the function's CFG."""
    unit = unit or function.unit
    cfg = CFG(function)
    blocks, label_map = _split_into_blocks(function)
    cfg.blocks = blocks
    cfg.label_to_block = label_map
    if not blocks:
        return cfg
    cfg.entry = blocks[0]

    local_labels = set(label_map)
    deferred_indirect: List[Tuple[BasicBlock, InstructionEntry]] = []

    for i, block in enumerate(blocks):
        fallthrough = blocks[i + 1] if i + 1 < len(blocks) else None
        last = block.last
        if last is None:
            if fallthrough is not None:
                block.add_successor(fallthrough)
            continue
        insn = last.insn
        if insn.is_cond_jump:
            target = insn.branch_target_label()
            if target is not None and target in label_map:
                block.add_successor(label_map[target])
            else:
                block.add_successor(cfg.exit)
            if fallthrough is not None:
                block.add_successor(fallthrough)
        elif insn.is_uncond_jump:
            if insn.is_indirect_branch:
                deferred_indirect.append((block, last))
            else:
                target = insn.branch_target_label()
                if target is not None and target in label_map:
                    block.add_successor(label_map[target])
                else:
                    block.add_successor(cfg.exit)
        elif insn.is_ret or insn.base in ("hlt", "ud2"):
            block.add_successor(cfg.exit)
        else:
            if fallthrough is not None:
                block.add_successor(fallthrough)
            else:
                block.add_successor(cfg.exit)

    # Tier 1: resolve indirect branches whose operand names the table.
    still_unresolved: List[Tuple[BasicBlock, InstructionEntry]] = []
    for block, entry in deferred_indirect:
        symbol = _operand_table_symbol(entry.insn)
        targets = _jump_table_targets(unit, symbol) if symbol else None
        if targets and all(t in label_map for t in targets):
            for t in targets:
                block.add_successor(label_map[t])
            cfg.resolved_branches.append((entry, "operand"))
        else:
            still_unresolved.append((block, entry))

    # Tier 2: reaching-definitions pattern.
    if still_unresolved and resolve_indirect:
        still_unresolved = _resolve_via_reaching_defs(
            cfg, unit, still_unresolved, label_map)

    for block, entry in still_unresolved:
        block.has_unresolved_exit = True
        block.add_successor(cfg.exit)
        cfg.unresolved_branches.append(entry)
    if cfg.unresolved_branches:
        function.flagged_unresolved_branch = True
    return cfg


def _resolve_via_reaching_defs(cfg: CFG, unit: MaoUnit,
                               pending: List[Tuple[BasicBlock,
                                                   InstructionEntry]],
                               label_map: Dict[str, BasicBlock]
                               ) -> List[Tuple[BasicBlock,
                                               InstructionEntry]]:
    """Chase table addresses through reaching definitions (tier 2).

    Handles the compiler idiom::

        lea  .Ltab(%rip), %rA      # or: mov $.Ltab, %rA
        ...
        mov  (%rA,%rB,8), %rC       # load table slot   (optional)
        jmp  *%rC                   # or: jmp *(%rA,%rB,8)
    """
    from repro.analysis.dataflow import ReachingDefinitions

    reaching = ReachingDefinitions(cfg)
    remaining: List[Tuple[BasicBlock, InstructionEntry]] = []
    for block, entry in pending:
        targets = _chase_indirect_target(reaching, unit, entry)
        if targets and all(t in label_map for t in targets):
            for t in targets:
                block.add_successor(label_map[t])
            cfg.resolved_branches.append((entry, "reaching-defs"))
        else:
            remaining.append((block, entry))
    return remaining


def _table_symbol_from_def(insn: Instruction) -> Optional[str]:
    """The table symbol loaded by an address-materializing instruction."""
    if insn.base == "lea":
        src = insn.operands[0]
        if isinstance(src, Memory) and src.symbol is not None:
            return src.symbol
    if insn.base in ("mov", "movabs"):
        src = insn.operands[0]
        from repro.x86.operands import Immediate
        if isinstance(src, Immediate) and src.symbol is not None:
            return src.symbol
    return None


def _chase_indirect_target(reaching, unit: MaoUnit,
                           entry: InstructionEntry,
                           depth: int = 0) -> Optional[List[str]]:
    if depth > 4:
        return None
    insn = entry.insn
    target = insn.branch_target_operand()

    if isinstance(target, RegisterOperand):
        # Find the unique reaching definition of the register.
        def_entry = reaching.unique_reaching_def(entry, target.reg.group)
        if def_entry is None:
            return None
        def_insn = def_entry.insn
        symbol = _table_symbol_from_def(def_insn)
        if symbol is not None:
            return _jump_table_targets(unit, symbol)
        # A load from the table: mov (rA, rB, 8), rC — chase rA.
        if def_insn.base == "mov" and isinstance(def_insn.operands[0],
                                                 Memory):
            mem = def_insn.operands[0]
            if mem.symbol is not None:
                return _jump_table_targets(unit, mem.symbol)
            if mem.base is not None:
                base_def = reaching.unique_reaching_def(def_entry,
                                                        mem.base.group)
                if base_def is not None:
                    symbol = _table_symbol_from_def(base_def.insn)
                    if symbol is not None:
                        return _jump_table_targets(unit, symbol)
        return None

    if isinstance(target, Memory):
        if target.symbol is not None:
            return _jump_table_targets(unit, target.symbol)
        if target.base is not None:
            base_def = reaching.unique_reaching_def(entry, target.base.group)
            if base_def is not None:
                symbol = _table_symbol_from_def(base_def.insn)
                if symbol is not None:
                    return _jump_table_targets(unit, symbol)
    return None
