"""Loop detection based on Havlak's nesting algorithm.

The paper (§II): "MAO offers a loop detection mechanism based on Havlak.
It builds a hierarchical loop structure graph (LSG) representing the nesting
relationships of a given loop nest ...  The algorithm allows distinguishing
between reducible and irreducible loops."

This is a faithful implementation of Havlak's algorithm (TOPLAS 1997) with
the usual union-find acceleration: one DFS to number blocks, back-edge
classification against the DFS spanning tree, and a bottom-up pass that
collapses discovered loop bodies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFG, BasicBlock


class Loop:
    """One node of the loop structure graph."""

    def __init__(self, index: int, header: Optional[BasicBlock],
                 is_root: bool = False) -> None:
        self.index = index
        self.header = header
        self.is_root = is_root
        self.is_reducible = True
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        #: Basic blocks directly in this loop (not in nested children).
        self.blocks: List[BasicBlock] = []
        self.nesting_level = 0

    def set_parent(self, parent: "Loop") -> None:
        self.parent = parent
        parent.children.append(self)

    def all_blocks(self) -> List[BasicBlock]:
        """Blocks of this loop including all nested loops."""
        collected = list(self.blocks)
        for child in self.children:
            collected.extend(child.all_blocks())
        return collected

    def depth(self) -> int:
        depth = 0
        node = self.parent
        while node is not None and not node.is_root:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self) -> str:
        kind = "root" if self.is_root else (
            "loop" if self.is_reducible else "irreducible-loop")
        header = self.header.index if self.header else "-"
        return "<%s header=bb%s blocks=%d children=%d>" % (
            kind, header, len(self.blocks), len(self.children))


class LoopStructureGraph:
    """The hierarchical loop structure graph of one function."""

    def __init__(self) -> None:
        self.root = Loop(0, None, is_root=True)
        self.loops: List[Loop] = [self.root]

    def create_loop(self, header: Optional[BasicBlock]) -> Loop:
        loop = Loop(len(self.loops), header)
        self.loops.append(loop)
        return loop

    def inner_loops(self) -> List[Loop]:
        """All non-root loops with no loop children (innermost loops)."""
        return [l for l in self.loops
                if not l.is_root and not l.children]

    def non_root_loops(self) -> List[Loop]:
        return [l for l in self.loops if not l.is_root]

    def loop_of_block(self, block: BasicBlock) -> Optional[Loop]:
        for loop in self.loops:
            if block in loop.blocks:
                return loop
        return None

    def __len__(self) -> int:
        return len(self.loops) - 1   # exclude root


class _UnionFind:
    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, child: int, parent: int) -> None:
        self.parent[self.find(child)] = self.find(parent)


_BB_TOP = 0
_BB_NONHEADER = 1
_BB_REDUCIBLE = 2
_BB_SELF = 3
_BB_IRREDUCIBLE = 4
_UNVISITED = -1


def build_lsg(cfg: CFG) -> LoopStructureGraph:
    """Run Havlak's algorithm over the CFG and return the LSG."""
    lsg = LoopStructureGraph()
    if cfg.entry is None:
        return lsg

    # Iterative preorder DFS numbering from the entry block; `last[w]`
    # is the maximum DFS number in w's spanning subtree (Havlak's ancestor
    # test is then a simple interval check).
    number: Dict[int, int] = {}
    preorder: List[BasicBlock] = []
    parent_of: Dict[int, int] = {}
    visited: Set[int] = set()
    stack2: List[tuple] = [(cfg.entry, None)]
    while stack2:
        node, parent = stack2.pop()
        if id(node) in visited or node is cfg.exit:
            continue
        visited.add(id(node))
        number[id(node)] = len(preorder)
        if parent is not None:
            parent_of[len(preorder)] = parent
        preorder.append(node)
        for succ in reversed(node.successors):
            if id(succ) not in visited and succ is not cfg.exit:
                stack2.append((succ, number[id(node)]))

    reachable = len(preorder)
    nodes = preorder
    last = [0] * reachable
    for w in range(reachable - 1, -1, -1):
        last[w] = max([w] + [last[v] for v in range(reachable)
                             if parent_of.get(v) == w])

    def is_ancestor(w: int, v: int) -> bool:
        return w <= v <= last[w]

    non_back_preds: List[Set[int]] = [set() for _ in range(reachable)]
    back_preds: List[List[int]] = [[] for _ in range(reachable)]
    types = [_BB_NONHEADER] * reachable
    header = [0] * reachable

    for w, node in enumerate(nodes):
        for pred in node.predecessors:
            if id(pred) not in number:
                continue   # unreachable predecessor
            v = number[id(pred)]
            if is_ancestor(w, v):
                back_preds[w].append(v)
            else:
                non_back_preds[w].add(v)

    header[0] = 0
    uf = _UnionFind(reachable)
    loop_of: Dict[int, Loop] = {}

    for w in range(reachable - 1, -1, -1):
        node_pool: List[int] = []
        for v in back_preds[w]:
            if v != w:
                node_pool.append(uf.find(v))
            else:
                types[w] = _BB_SELF

        if node_pool:
            types[w] = _BB_REDUCIBLE

        worklist = list(node_pool)
        while worklist:
            x = worklist.pop(0)
            for y in list(non_back_preds[x]):
                ydash = uf.find(y)
                if not is_ancestor(w, ydash):
                    types[w] = _BB_IRREDUCIBLE
                    non_back_preds[w].add(ydash)
                elif ydash != w and ydash not in node_pool:
                    node_pool.append(ydash)
                    worklist.append(ydash)

        if node_pool or types[w] == _BB_SELF:
            loop = lsg.create_loop(nodes[w])
            loop.is_reducible = types[w] != _BB_IRREDUCIBLE
            loop.blocks.append(nodes[w])
            loop_of[w] = loop
            for x in node_pool:
                header[x] = w
                uf.union(x, w)
                if x in loop_of:
                    loop_of[x].set_parent(loop)
                else:
                    loop.blocks.append(nodes[x])

    # Attach remaining top-level loops to the root.
    for loop in lsg.loops:
        if not loop.is_root and loop.parent is None:
            loop.set_parent(lsg.root)
    return lsg
