"""Repeated relaxation: compute instruction addresses and lengths.

Relaxation is "the process of finding proper instruction sizes for branches
based on branch target distances" (paper, §II).  Because shrinking or growing
one branch moves every later instruction — possibly changing *other*
branches' reach — the algorithm iterates.  As in MAO/gas there is a built-in
limit of 100 iterations; in practice layouts converge in a handful (the
benches measure this).

The implementation follows gas's monotonic scheme: every label branch starts
in its short (rel8) form; after each address-assignment sweep, branches whose
displacement no longer fits are promoted to the near (rel32) form and never
demoted again, which guarantees termination.

Alignment directives (``.p2align`` / ``.align`` / ``.balign``) and data
directives contribute padding/size, so alignment-based optimization passes
see exact addresses.

Incremental layout
------------------

:func:`relax_section` keeps the monotonic promotion scheme but lays the
section out incrementally: entry sizes live in a size vector whose prefix
sums are the addresses, and each iteration recomputes addresses only from
the first promoted branch onward (everything before it is untouched by a
monotonic size change).  Instruction sizing happens once in a pre-pass —
non-branch sizes are address-independent — instead of once per sweep, and
the O(unit) section-membership scan is hoisted out of the per-section loop
(:func:`section_entry_map`).  Because promotions are decided from exactly
the same addresses the full re-walk would produce, the resulting layout is
bit-identical to the reference algorithm, which is retained as
:func:`relax_section_reference` and pinned by a differential test
(``tests/analysis/test_relax_incremental.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.entries import (
    DirectiveEntry,
    InstructionEntry,
    LabelEntry,
    MaoEntry,
    OpaqueEntry,
)
from repro.ir.unit import MaoUnit, Section
from repro.x86.encoder import EncodeError, encode_instruction, nop_sequence
from repro.x86.instruction import Instruction

#: Paper: "In the implementation there is a built-in limit of 100 iterations".
MAX_RELAX_ITERATIONS = 100

_DATA_ITEM_SIZES = {
    "byte": 1, "word": 2, "value": 2, "short": 2,
    "long": 4, "int": 4, "quad": 8, "octa": 16,
}


class RelaxError(Exception):
    pass


@dataclass
class EntryLayout:
    address: int
    size: int


@dataclass
class SectionLayout:
    """Result of relaxing one section."""

    section: Section
    start_address: int
    size: int = 0
    iterations: int = 0
    converged: bool = True
    #: entry -> (address, size)
    placement: Dict[MaoEntry, EntryLayout] = field(default_factory=dict)
    symtab: Dict[str, int] = field(default_factory=dict)

    def address_of(self, entry: MaoEntry) -> int:
        return self.placement[entry].address

    def size_of(self, entry: MaoEntry) -> int:
        return self.placement[entry].size

    def code_image(self) -> bytes:
        """Flat byte image of the section.

        Alignment padding in code sections is NOP-filled (the exact NOP
        choice differs from gas's fill patterns but is semantically
        identical); data directives contribute zero bytes as placeholders.
        """
        image = bytearray()
        for entry, layout in self.placement.items():
            if isinstance(entry, InstructionEntry):
                image += entry.insn.encoding or b""
            elif isinstance(entry, DirectiveEntry):
                if _alignment_request(entry) is not None:
                    for chunk in nop_sequence(layout.size):
                        image += chunk
                else:
                    image += bytes(layout.size)
        return bytes(image)

    def fill_regions(self) -> List[Tuple[int, int]]:
        """(address, size) of alignment-fill ranges (for masked diffing)."""
        regions = []
        for entry, layout in self.placement.items():
            if (isinstance(entry, DirectiveEntry)
                    and _alignment_request(entry) is not None
                    and layout.size > 0):
                regions.append((layout.address - self.start_address,
                                layout.size))
        return regions


def _unescape(text: str) -> bytes:
    """Decode a gas string literal body (C escapes)."""
    out = bytearray()
    i = 0
    simple = {"n": 10, "t": 9, "r": 13, "b": 8, "f": 12, "v": 11,
              "a": 7, "0": 0, "\\": 92, '"': 34, "'": 39}
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt in simple:
                out.append(simple[nxt])
                i += 2
                continue
            if nxt == "x":
                j = i + 2
                while j < len(text) and text[j] in "0123456789abcdefABCDEF":
                    j += 1
                out.append(int(text[i + 2:j], 16) & 0xFF)
                i = j
                continue
            if nxt.isdigit():
                j = i + 1
                while j < len(text) and j < i + 4 and text[j].isdigit():
                    j += 1
                out.append(int(text[i + 1:j], 8) & 0xFF)
                i = j
                continue
        out.append(ord(ch) & 0xFF)
        i += 1
    return bytes(out)


def _string_literals(args: str) -> List[bytes]:
    """All double-quoted string literal bodies in a directive argument."""
    literals = []
    i = 0
    while i < len(args):
        if args[i] == '"':
            j = i + 1
            while j < len(args):
                if args[j] == "\\":
                    j += 2
                    continue
                if args[j] == '"':
                    break
                j += 1
            literals.append(_unescape(args[i + 1:j]))
            i = j + 1
        else:
            i += 1
    return literals


def _count_items(args: str) -> int:
    from repro.x86.lexer import split_operands
    return max(1, len([p for p in split_operands(args) if p.strip()]))


def _positional_int_args(args: str) -> List[Optional[int]]:
    values: List[Optional[int]] = []
    for part in args.split(","):
        part = part.strip()
        if not part:
            values.append(None)
            continue
        try:
            values.append(int(part, 0))
        except ValueError:
            values.append(None)
    return values


def _alignment_request(directive: DirectiveEntry) -> Optional[Tuple[int, Optional[int]]]:
    """(alignment_bytes, max_skip) for an alignment directive, else None."""
    name = directive.name
    args = _positional_int_args(directive.args)
    first = args[0] if args else None
    if first is None:
        return None
    max_skip = args[2] if len(args) >= 3 else None
    if name == "p2align":
        return (1 << first, max_skip)
    if name in ("align", "balign"):
        # On x86 ELF, gas's .align is byte alignment (same as .balign).
        return (first, max_skip)
    return None


def directive_data_size(directive: DirectiveEntry) -> int:
    """Byte size contributed by a data directive (0 for non-data)."""
    name = directive.name
    if name in _DATA_ITEM_SIZES:
        return _DATA_ITEM_SIZES[name] * _count_items(directive.args)
    if name in ("zero", "skip", "space"):
        args = _positional_int_args(directive.args)
        return args[0] or 0 if args else 0
    if name == "ascii":
        return sum(len(s) for s in _string_literals(directive.args))
    if name in ("asciz", "string"):
        literals = _string_literals(directive.args)
        return sum(len(s) + 1 for s in literals)
    return 0


def _is_label_branch(insn: Instruction) -> bool:
    return (insn.base in ("jmp", "j")
            and insn.branch_target_label() is not None)


def _short_len(insn: Instruction) -> int:
    return 2  # both jmp rel8 and jcc rel8 encode in 2 bytes


def _long_len(insn: Instruction) -> int:
    return 5 if insn.base == "jmp" else 6


def _section_entries(unit: MaoUnit, section: Section) -> List[MaoEntry]:
    return [e for e in unit.entries() if e.section is section]


def section_entry_map(unit: MaoUnit) -> Dict[str, List[MaoEntry]]:
    """Group entries by section name in ONE O(unit) scan.

    ``relax_unit`` used to re-scan the whole entry list once per section;
    with many sections that is O(sections × unit).  This runs once.
    """
    by_section: Dict[str, List[MaoEntry]] = {}
    for entry in unit.entries():
        if entry.section is not None:
            by_section.setdefault(entry.section.name, []).append(entry)
    return by_section


# Entry-plan kinds for the incremental layout (see relax_section).
_KIND_LABEL = 0    # payload: label name
_KIND_FIXED = 1    # payload: size in bytes (address-independent)
_KIND_BRANCH = 2   # payload: (short_len, long_len)
_KIND_ALIGN = 3    # payload: (alignment, max_skip)


def _entry_plan(entries: List[MaoEntry],
                section: Section) -> List[Tuple[int, object]]:
    """Pre-size every entry; only branches and alignment stay dynamic."""
    plan: List[Tuple[int, object]] = []
    for entry in entries:
        if isinstance(entry, LabelEntry):
            plan.append((_KIND_LABEL, entry.name))
        elif isinstance(entry, InstructionEntry):
            insn = entry.insn
            if _is_label_branch(insn):
                plan.append((_KIND_BRANCH,
                             (_short_len(insn), _long_len(insn))))
            else:
                try:
                    size = len(encode_instruction(insn, symtab=None))
                except EncodeError as exc:
                    raise RelaxError(
                        "cannot size instruction %s: %s" % (insn, exc)
                    ) from exc
                plan.append((_KIND_FIXED, size))
        elif isinstance(entry, DirectiveEntry):
            request = _alignment_request(entry)
            if request is not None:
                plan.append((_KIND_ALIGN, request))
            else:
                plan.append((_KIND_FIXED, directive_data_size(entry)))
        elif isinstance(entry, OpaqueEntry):
            raise RelaxError("cannot relax opaque entry %r in %s"
                             % (entry.text, section.name))
        else:
            plan.append((_KIND_FIXED, 0))
    return plan


def relax_section(unit: MaoUnit, section: Section,
                  start_address: int = 0,
                  extern_symbols: Optional[Dict[str, int]] = None,
                  entries: Optional[List[MaoEntry]] = None
                  ) -> SectionLayout:
    """Relax one section (traced wrapper over the incremental algorithm)."""
    from repro import obs

    with obs.span("relax", section=section.name) as span:
        layout = _relax_section_incremental(
            unit, section, start_address=start_address,
            extern_symbols=extern_symbols, entries=entries)
        if span:
            span.attach(iterations=layout.iterations, size=layout.size)
    return layout


def _relax_section_incremental(unit: MaoUnit, section: Section,
                               start_address: int = 0,
                               extern_symbols: Optional[Dict[str,
                                                             int]] = None,
                               entries: Optional[List[MaoEntry]] = None
                               ) -> SectionLayout:
    """Relax one section: assign addresses, sizes, and final encodings.

    Incremental algorithm: sizes live in a vector whose running prefix sums
    are the addresses.  Promotion is monotonic (short -> long, never back),
    so after a sweep promotes branches, every entry *before* the first
    promoted index keeps its address and only the suffix is recomputed.
    The promotion decisions use the same addresses a full re-walk would
    compute, so the fixpoint is bit-identical to
    :func:`relax_section_reference`.

    ``entries`` lets callers that already hold the section's entry list
    (e.g. :func:`relax_unit` via :func:`section_entry_map`) skip the
    O(unit) membership scan.
    """
    if entries is None:
        entries = _section_entries(unit, section)
    layout = SectionLayout(section, start_address)
    plan = _entry_plan(entries, section)
    n = len(entries)

    sizes = [0] * n
    addresses = [start_address] * n
    promoted = [False] * n
    branch_indices = [i for i in range(n) if plan[i][0] == _KIND_BRANCH]
    symtab: Dict[str, int] = dict(extern_symbols or {})

    iterations = 0
    converged = False
    dirty = 0   # recompute layout from this index onward
    while iterations < MAX_RELAX_ITERATIONS:
        iterations += 1

        address = addresses[dirty] if n else start_address
        for i in range(dirty, n):
            addresses[i] = address
            kind, payload = plan[i]
            if kind == _KIND_LABEL:
                symtab[payload] = address
                size = 0
            elif kind == _KIND_FIXED:
                size = payload
            elif kind == _KIND_BRANCH:
                size = payload[1] if promoted[i] else payload[0]
            else:  # _KIND_ALIGN
                alignment, max_skip = payload
                pad = (-address) % alignment
                if max_skip is not None and pad > max_skip:
                    pad = 0
                size = pad
            sizes[i] = size
            address += size

        # Promote out-of-range short branches; monotonic, so this loop
        # terminates.  The cheap O(branches) check runs over every branch
        # (an early branch can target a moved label), but layout recompute
        # above only covers the dirty suffix.
        first_promoted = None
        for i in branch_indices:
            if promoted[i]:
                continue
            insn = entries[i].insn
            target_name = insn.branch_target_label()
            target = symtab.get(target_name)
            if target is not None:
                rel = target - (addresses[i] + plan[i][1][0])
                if -128 <= rel <= 127:
                    continue
            promoted[i] = True
            if first_promoted is None:
                first_promoted = i

        if first_promoted is None:
            layout.placement = {
                entries[i]: EntryLayout(addresses[i], sizes[i])
                for i in range(n)
            }
            end = (addresses[n - 1] + sizes[n - 1]) if n else start_address
            layout.size = end - start_address
            converged = True
            break
        dirty = first_promoted

    layout.iterations = iterations
    layout.converged = converged
    layout.symtab = symtab
    if not converged:
        raise RelaxError("relaxation did not converge in %d iterations"
                         % MAX_RELAX_ITERATIONS)

    _final_encode(entries, layout, symtab)
    return layout


def relax_section_reference(unit: MaoUnit, section: Section,
                            start_address: int = 0,
                            extern_symbols: Optional[Dict[str, int]] = None,
                            entries: Optional[List[MaoEntry]] = None
                            ) -> SectionLayout:
    """The pre-incremental full re-walk algorithm, kept verbatim.

    Differential tests and the hot-path benchmark use this as the baseline
    the incremental algorithm must match bit-for-bit.
    """
    if entries is None:
        entries = _section_entries(unit, section)
    layout = SectionLayout(section, start_address)
    long_branches: Set[InstructionEntry] = set()
    symtab: Dict[str, int] = dict(extern_symbols or {})

    # Cache non-branch instruction sizes: they don't change across
    # iterations (displacement forms of memory operands are
    # address-independent).
    fixed_sizes: Dict[InstructionEntry, int] = {}

    iterations = 0
    converged = False
    while iterations < MAX_RELAX_ITERATIONS:
        iterations += 1
        address = start_address
        placement: Dict[MaoEntry, EntryLayout] = {}
        new_symtab: Dict[str, int] = dict(extern_symbols or {})

        for entry in entries:
            size = 0
            if isinstance(entry, LabelEntry):
                new_symtab[entry.name] = address
            elif isinstance(entry, InstructionEntry):
                insn = entry.insn
                if _is_label_branch(insn):
                    size = (_long_len(insn) if entry in long_branches
                            else _short_len(insn))
                elif entry in fixed_sizes:
                    size = fixed_sizes[entry]
                else:
                    try:
                        size = len(encode_instruction(insn, symtab=None,
                                                      address=address))
                    except EncodeError as exc:
                        raise RelaxError(
                            "cannot size instruction %s: %s" % (insn, exc)
                        ) from exc
                    fixed_sizes[entry] = size
            elif isinstance(entry, DirectiveEntry):
                request = _alignment_request(entry)
                if request is not None:
                    alignment, max_skip = request
                    pad = (-address) % alignment
                    if max_skip is not None and pad > max_skip:
                        pad = 0
                    size = pad
                else:
                    size = directive_data_size(entry)
            elif isinstance(entry, OpaqueEntry):
                raise RelaxError("cannot relax opaque entry %r in %s"
                                 % (entry.text, section.name))
            placement[entry] = EntryLayout(address, size)
            address += size

        # Promote out-of-range short branches; monotonic, so this loop
        # terminates.
        changed = False
        for entry in entries:
            if not (isinstance(entry, InstructionEntry)
                    and _is_label_branch(entry.insn)
                    and entry not in long_branches):
                continue
            target_name = entry.insn.branch_target_label()
            here = placement[entry].address
            if target_name not in new_symtab:
                long_branches.add(entry)
                changed = True
                continue
            rel = new_symtab[target_name] - (here + _short_len(entry.insn))
            if not (-128 <= rel <= 127):
                long_branches.add(entry)
                changed = True

        symtab = new_symtab
        if not changed:
            layout.placement = placement
            layout.size = address - start_address
            converged = True
            break

    layout.iterations = iterations
    layout.converged = converged
    layout.symtab = symtab
    if not converged:
        raise RelaxError("relaxation did not converge in %d iterations"
                         % MAX_RELAX_ITERATIONS)

    _final_encode(entries, layout, symtab)
    return layout


def _final_encode(entries: List[MaoEntry], layout: SectionLayout,
                  symtab: Dict[str, int]) -> None:
    """Final encoding pass with resolved addresses."""
    for entry in entries:
        if isinstance(entry, InstructionEntry):
            place = layout.placement[entry]
            entry.insn.address = place.address
            try:
                encoding = encode_instruction(entry.insn, symtab=symtab,
                                              address=place.address)
            except EncodeError as exc:
                raise RelaxError("final encode failed for %s: %s"
                                 % (entry.insn, exc)) from exc
            if len(encoding) != place.size:
                # A locked-long branch that would now fit short re-encodes
                # short; force consistency by re-running the final pass once
                # with the long form kept.
                if (_is_label_branch(entry.insn)
                        and len(encoding) < place.size):
                    encoding = _encode_long_branch(entry.insn, symtab,
                                                   place.address)
                    entry.insn.encoding = encoding
                if len(encoding) != place.size:
                    raise RelaxError(
                        "size mismatch for %s: placed %d, encoded %d"
                        % (entry.insn, place.size, len(encoding)))
        elif isinstance(entry, LabelEntry):
            pass


def _encode_long_branch(insn: Instruction, symtab: Dict[str, int],
                        address: int) -> bytes:
    """Encode a jmp/jcc in its near (rel32) form regardless of distance."""
    from repro.x86.flags import cc_encoding
    target = symtab[insn.branch_target_label()]
    if insn.base == "jmp":
        rel = target - (address + 5)
        return b"\xe9" + (rel & 0xFFFFFFFF).to_bytes(4, "little")
    cc = cc_encoding(insn.cond)
    rel = target - (address + 6)
    return bytes([0x0F, 0x80 + cc]) + (rel & 0xFFFFFFFF).to_bytes(4, "little")


def relax_unit(unit: MaoUnit,
               extern_symbols: Optional[Dict[str, int]] = None
               ) -> Dict[str, SectionLayout]:
    """Relax every code section of a unit (data sections too, for sizes).

    Code sections are relaxed first so data sections can reference code
    labels symbolically; cross-section symbol resolution shares one symbol
    table.
    """
    layouts: Dict[str, SectionLayout] = {}
    shared: Dict[str, int] = dict(extern_symbols or {})
    by_section = section_entry_map(unit)   # one O(unit) scan, not per section
    ordered = sorted(unit.sections.values(),
                     key=lambda s: (not s.is_code, s.name))
    for section in ordered:
        entries = by_section.get(section.name)
        if not entries:
            continue
        layout = relax_section(unit, section, start_address=0,
                               extern_symbols=dict(shared),
                               entries=entries)
        layouts[section.name] = layout
        shared.update(layout.symtab)
    return layouts
