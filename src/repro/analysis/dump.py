"""IR, CFG, and LSG dumping in various formats.

The paper: passes "offer common functionality, e.g., dumping the current
state of the IR before or after a given pass in various formats".  Three
formats are provided:

* :func:`dump_ir_text` — annotated text (addresses + encodings when the
  function has been relaxed),
* :func:`cfg_to_dot` — Graphviz for the control-flow graph,
* :func:`lsg_to_dot` — Graphviz for the loop structure graph (the modern
  equivalent of MAO's VCG output).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.cfg import CFG, BasicBlock
from repro.analysis.loops import Loop, LoopStructureGraph
from repro.analysis.relax import SectionLayout, relax_section
from repro.ir.entries import InstructionEntry
from repro.ir.unit import Function


def dump_ir_text(function: Function,
                 with_layout: bool = True) -> str:
    """Annotated textual dump of one function's IR."""
    layout: Optional[SectionLayout] = None
    if with_layout:
        try:
            layout = relax_section(function.unit, function.section)
        except Exception:
            layout = None
    lines: List[str] = ["# function %s" % function.name]
    for entry in function.entries():
        prefix = " " * 24
        if layout is not None and entry in layout.placement:
            place = layout.placement[entry]
            encoding = ""
            if isinstance(entry, InstructionEntry) \
                    and entry.insn.encoding:
                encoding = entry.insn.encoding.hex()
            prefix = "%06x %-16s " % (place.address, encoding[:16])
        lines.append(prefix + entry.to_asm().strip())
    return "\n".join(lines) + "\n"


def _block_label(block: BasicBlock) -> str:
    title = block.labels[0] if block.labels else "bb%d" % block.index
    body = [title + ":"]
    for entry in block.entries[:6]:
        body.append(str(entry.insn))
    if len(block.entries) > 6:
        body.append("... (%d more)" % (len(block.entries) - 6))
    return "\\l".join(body) + "\\l"


def cfg_to_dot(cfg: CFG, name: Optional[str] = None) -> str:
    """Graphviz dot text for a CFG (exit edges dashed)."""
    title = name or cfg.function.name
    lines = ["digraph \"%s\" {" % title,
             "  node [shape=box, fontname=\"monospace\"];"]
    for block in cfg.blocks:
        attributes = ""
        if block is cfg.entry:
            attributes = ", color=blue"
        if block.has_unresolved_exit:
            attributes = ", color=red"
        lines.append("  bb%d [label=\"%s\"%s];"
                     % (block.index, _block_label(block), attributes))
    lines.append("  exit [shape=doublecircle, label=\"exit\"];")
    for block in cfg.blocks:
        for succ in block.successors:
            if succ is cfg.exit:
                lines.append("  bb%d -> exit [style=dashed];"
                             % block.index)
            else:
                lines.append("  bb%d -> bb%d;" % (block.index,
                                                  succ.index))
    lines.append("}")
    return "\n".join(lines) + "\n"


def lsg_to_dot(lsg: LoopStructureGraph,
               name: str = "loops") -> str:
    """Graphviz dot text for the loop structure graph."""
    lines = ["digraph \"%s\" {" % name,
             "  node [shape=ellipse];"]

    def describe(loop: Loop) -> str:
        if loop.is_root:
            return "root"
        kind = "loop" if loop.is_reducible else "irreducible"
        header = loop.header.labels[0] if loop.header and \
            loop.header.labels else "bb%d" % (loop.header.index
                                              if loop.header else -1)
        return "%s\\nheader=%s\\nblocks=%d" % (kind, header,
                                               len(loop.all_blocks()))

    for loop in lsg.loops:
        shape = ", shape=box" if loop.is_root else ""
        color = ", color=red" if not loop.is_root \
            and not loop.is_reducible else ""
        lines.append("  l%d [label=\"%s\"%s%s];"
                     % (loop.index, describe(loop), shape, color))
    for loop in lsg.loops:
        for child in loop.children:
            lines.append("  l%d -> l%d;" % (loop.index, child.index))
    lines.append("}")
    return "\n".join(lines) + "\n"
