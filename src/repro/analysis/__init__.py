"""Analyses over the MAO IR: relaxation, CFG, data-flow, loop nesting."""

from repro.analysis.relax import relax_section, relax_unit, SectionLayout
from repro.analysis.cfg import CFG, build_cfg, BasicBlock
from repro.analysis.dataflow import ReachingDefinitions, Liveness
from repro.analysis.loops import LoopStructureGraph, build_lsg

__all__ = [
    "relax_section",
    "relax_unit",
    "SectionLayout",
    "CFG",
    "BasicBlock",
    "build_cfg",
    "ReachingDefinitions",
    "Liveness",
    "LoopStructureGraph",
    "build_lsg",
]
