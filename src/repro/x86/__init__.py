"""x86-64 assembler substrate.

This subpackage replaces the role GNU binutils/gas plays in the original MAO:
it tokenizes and parses assembly text (AT&T and basic Intel syntax), models
the register file and instruction set, and produces true x86-64 binary
encodings so instruction lengths and addresses are exact.
"""

from repro.x86.registers import Register, get_register, alias_group
from repro.x86.operands import Immediate, Memory, LabelRef, RegisterOperand
from repro.x86.instruction import Instruction
from repro.x86.encoder import encode_instruction, EncodeError
from repro.x86.parser import parse_asm_text, ParseError

__all__ = [
    "Register",
    "get_register",
    "alias_group",
    "Immediate",
    "Memory",
    "LabelRef",
    "RegisterOperand",
    "Instruction",
    "encode_instruction",
    "EncodeError",
    "parse_asm_text",
    "ParseError",
]
