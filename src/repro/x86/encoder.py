"""Binary encoding of x86-64 instructions.

This module is the PyMAO stand-in for gas's table-driven encoder.  It emits
true x86-64 machine code (legacy prefixes, REX, ModRM, SIB, displacements,
immediates) for the supported mnemonic subset, so instruction *lengths* —
which is what relaxation and every alignment optimization depend on — are
exact.

Two entry points matter:

* :func:`encode_instruction` — encode a single instruction.  Branches whose
  target labels resolve through ``symtab`` pick the shortest displacement
  form that fits; unresolved branches conservatively use the near (rel32)
  form.
* :func:`nop_sequence` — the recommended multi-byte NOP encodings used by
  alignment passes, byte-identical to what gas emits for ``.p2align`` fills.

Differential tests (``tests/x86/test_encoder_vs_gas.py``) pin these encodings
against the real GNU assembler.

Encoding cache
--------------

Relaxation re-sizes every instruction on each of up to 100 sweeps, and the
optimize→assemble hot path re-encodes the same canonical instructions over
and over (a corpus has a few hundred distinct instruction forms repeated
tens of thousands of times).  :func:`encode_instruction` therefore memoizes
its result process-wide, keyed on the instruction's canonical form
``(prefixes, mnemonic, operands)``.

The cache is only sound for *address-independent* instructions — the vast
majority.  :func:`symbol_dependent` classifies the rest: any instruction
with a label target, a symbolic memory displacement, or a symbolic
immediate may encode differently depending on ``symtab``/``address`` and
always bypasses the cache.  Hit/miss/bypass counters are exposed through
:func:`encoding_cache_stats` so benchmarks can track hit rates over time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.x86.flags import cc_encoding
from repro.x86.instruction import Instruction
from repro.x86.operands import (
    Immediate,
    LabelRef,
    Memory,
    Operand,
    RegisterOperand,
)
from repro.x86.registers import Register


class EncodeError(Exception):
    """The instruction cannot be encoded (unsupported or malformed)."""


# ---------------------------------------------------------------------------
# Encoding cache.
# ---------------------------------------------------------------------------

#: canonical form -> encoding, for address-independent instructions.
_ENCODE_CACHE: Dict[Tuple, bytes] = {}
_CACHE_ENABLED = True
_CACHE_STATS = {"hits": 0, "misses": 0, "bypasses": 0}


def symbol_dependent(insn: Instruction) -> bool:
    """True if the encoding may depend on ``symtab`` or ``address``.

    Three operand shapes make an encoding context-sensitive: a label
    branch/call target (displacement form and value depend on the resolved
    distance), a memory operand with a symbolic displacement (RIP-relative
    fixups and symtab-resolved disp32 forms), and a symbolic immediate.
    Everything else encodes identically at every address.

    The verdict is memoized on the instruction (operands are immutable
    value objects, so it cannot change over the instruction's lifetime).
    """
    verdict = insn._symdep
    if verdict is None:
        verdict = False
        for op in insn.operands:
            if isinstance(op, LabelRef):
                verdict = True
                break
            if isinstance(op, (Memory, Immediate)) and op.symbol is not None:
                verdict = True
                break
        insn._symdep = verdict
    return verdict


def _cache_key(insn: Instruction) -> Tuple:
    return (tuple(insn.prefixes), insn.mnemonic, tuple(insn.operands))


def encoding_cache_stats() -> Dict[str, float]:
    """Counter snapshot, plus the derived hit rate (hits / lookups)."""
    stats: Dict[str, float] = dict(_CACHE_STATS)
    lookups = stats["hits"] + stats["misses"]
    stats["entries"] = len(_ENCODE_CACHE)
    stats["hit_rate"] = (stats["hits"] / lookups) if lookups else 0.0
    return stats


def reset_encoding_cache() -> None:
    """Drop all cached encodings and zero the counters."""
    _ENCODE_CACHE.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


def set_encoding_cache_enabled(enabled: bool) -> bool:
    """Toggle the cache; returns the previous setting."""
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return previous


@contextmanager
def encoding_cache_disabled() -> Iterator[None]:
    """Context manager: force every encode to run the full encoder
    (differential tests compare this against the cached path)."""
    previous = set_encoding_cache_enabled(False)
    try:
        yield
    finally:
        set_encoding_cache_enabled(previous)


# The classic ALU group shares one encoding scheme; the value is the
# "/digit" used in the 80/81/83 immediate forms and the row selector in the
# 00..3D opcode block.
_ALU_GROUP: Dict[str, int] = {
    "add": 0, "or": 1, "adc": 2, "sbb": 3,
    "and": 4, "sub": 5, "xor": 6, "cmp": 7,
}

_SHIFT_GROUP: Dict[str, int] = {
    "rol": 0, "ror": 1, "shl": 4, "shr": 5, "sar": 7,
}

_UNARY_F7: Dict[str, int] = {"not": 2, "neg": 3, "mul": 4,
                             "imul1": 5, "div": 6, "idiv": 7}

_PREFETCH_DIGIT: Dict[str, int] = {
    "prefetchnta": 0, "prefetcht0": 1, "prefetcht1": 2, "prefetcht2": 3,
}

# SSE scalar arithmetic: base -> (mandatory prefix, opcode byte).
_SSE_ALU: Dict[str, Tuple[int, int]] = {
    "addss": (0xF3, 0x58), "addsd": (0xF2, 0x58),
    "subss": (0xF3, 0x5C), "subsd": (0xF2, 0x5C),
    "mulss": (0xF3, 0x59), "mulsd": (0xF2, 0x59),
    "divss": (0xF3, 0x5E), "divsd": (0xF2, 0x5E),
    "cvtss2sd": (0xF3, 0x5A), "cvtsd2ss": (0xF2, 0x5A),
}

_NO_OPERAND: Dict[str, bytes] = {
    "ret": b"\xc3", "leave": b"\xc9", "nop": b"\x90",
    "ud2": b"\x0f\x0b", "hlt": b"\xf4", "int3": b"\xcc",
    "cltq": b"\x48\x98", "cqto": b"\x48\x99",
    "cltd": b"\x99", "cwtl": b"\x98",
    "pause": b"\xf3\x90", "cpuid": b"\x0f\xa2", "rdtsc": b"\x0f\x31",
    "mfence": b"\x0f\xae\xf0", "lfence": b"\x0f\xae\xe8",
    "sfence": b"\x0f\xae\xf8", "syscall": b"\x0f\x05",
}

_LEGACY_PREFIX: Dict[str, int] = {
    "lock": 0xF0, "rep": 0xF3, "repz": 0xF3, "repnz": 0xF2,
}

#: Recommended multi-byte NOPs (Intel SDM table, what gas emits for fills).
_NOPS: Dict[int, bytes] = {
    1: b"\x90",
    2: b"\x66\x90",
    3: b"\x0f\x1f\x00",
    4: b"\x0f\x1f\x40\x00",
    5: b"\x0f\x1f\x44\x00\x00",
    6: b"\x66\x0f\x1f\x44\x00\x00",
    7: b"\x0f\x1f\x80\x00\x00\x00\x00",
    8: b"\x0f\x1f\x84\x00\x00\x00\x00\x00",
    9: b"\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
}


def nop_sequence(length: int) -> List[bytes]:
    """Encodings of NOPs totalling *length* bytes (longest chunks first)."""
    if length < 0:
        raise ValueError("negative nop length")
    chunks: List[bytes] = []
    remaining = length
    while remaining > 0:
        size = min(remaining, 9)
        chunks.append(_NOPS[size])
        remaining -= size
    return chunks


def _pack(value: int, size: int) -> bytes:
    """Little-endian two's-complement encoding of an immediate."""
    mask = (1 << (size * 8)) - 1
    return (value & mask).to_bytes(size, "little")


def _fits_signed(value: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= value <= (1 << (bits - 1)) - 1


class _Enc:
    """Accumulator for one instruction encoding."""

    def __init__(self) -> None:
        self.legacy: List[int] = []
        self.opsize66 = False
        self.mandatory: Optional[int] = None  # F2/F3/66 SSE prefix
        self.rex_w = False
        self.rex_r = False
        self.rex_x = False
        self.rex_b = False
        self.force_rex = False
        self.forbid_rex = False
        self.opcode: bytes = b""
        self.modrm_sib_disp: bytes = b""
        self.imm: bytes = b""
        #: (offset into modrm_sib_disp, symbol, addend) for a RIP fixup.
        self.rip_fixup: Optional[Tuple[int, str, int]] = None

    def set_reg_bits(self, reg: Register, which: str) -> None:
        if reg.number >= 8:
            setattr(self, "rex_" + which, True)
        if reg.is_new_low8:
            self.force_rex = True
        if reg.high8:
            self.forbid_rex = True

    def emit(self, symtab: Optional[Dict[str, int]],
             address: Optional[int]) -> bytes:
        parts = bytearray()
        for p in self.legacy:
            parts.append(p)
        if self.opsize66:
            parts.append(0x66)
        if self.mandatory is not None:
            parts.append(self.mandatory)
        need_rex = (self.rex_w or self.rex_r or self.rex_x or self.rex_b
                    or self.force_rex)
        if need_rex and self.forbid_rex:
            raise EncodeError("ah/bh/ch/dh cannot be used with REX prefix")
        if need_rex:
            rex = 0x40 | (self.rex_w << 3) | (self.rex_r << 2) \
                | (self.rex_x << 1) | int(self.rex_b)
            parts.append(rex)
        parts += self.opcode
        body = bytearray(self.modrm_sib_disp)
        if self.rip_fixup is not None:
            off, symbol, addend = self.rip_fixup
            total_len = len(parts) + len(body) + len(self.imm)
            if symtab is not None and symbol in symtab and address is not None:
                rel = symtab[symbol] + addend - (address + total_len)
                body[off:off + 4] = _pack(rel, 4)
        parts += body
        parts += self.imm
        return bytes(parts)


def _modrm(enc: _Enc, regfield: int, rm: Operand,
           symtab: Optional[Dict[str, int]]) -> None:
    """Build ModRM (+SIB, +disp) with *regfield* in the reg slot."""
    if isinstance(rm, RegisterOperand):
        reg = rm.reg
        enc.set_reg_bits(reg, "b")
        enc.modrm_sib_disp = bytes([0xC0 | (regfield << 3) | (reg.number & 7)])
        return
    if not isinstance(rm, Memory):
        raise EncodeError("r/m operand must be register or memory: %r" % (rm,))
    mem = rm

    disp = mem.disp
    if mem.symbol is not None and not mem.is_rip_relative:
        if symtab is not None and mem.symbol in symtab:
            disp += symtab[mem.symbol]
        # else: leave placeholder of just the numeric part; always disp32.

    if mem.is_rip_relative:
        modrm = (regfield << 3) | 0x05
        enc.modrm_sib_disp = bytes([modrm]) + _pack(0, 4)
        if mem.symbol is not None:
            enc.rip_fixup = (1, mem.symbol, mem.disp)
        else:
            enc.modrm_sib_disp = bytes([modrm]) + _pack(disp, 4)
        return

    base, index = mem.base, mem.index
    if index is not None:
        enc.set_reg_bits(index, "x")
    if base is not None:
        enc.set_reg_bits(base, "b")

    force_disp32 = mem.symbol is not None

    if base is None and index is None:
        # Absolute 32-bit address: ModRM rm=100, SIB base=101 index=none.
        modrm = (regfield << 3) | 0x04
        sib = (0 << 6) | (0x04 << 3) | 0x05
        enc.modrm_sib_disp = bytes([modrm, sib]) + _pack(disp, 4)
        return

    scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[mem.scale]
    need_sib = (index is not None
                or (base is not None and (base.number & 7) == 4))

    if base is None:
        # Index without base: SIB with base=101, mod=00, disp32 mandatory.
        modrm = (regfield << 3) | 0x04
        sib = (scale_bits << 6) | ((index.number & 7) << 3) | 0x05
        enc.modrm_sib_disp = bytes([modrm, sib]) + _pack(disp, 4)
        return

    base_low = base.number & 7
    # mod selection: rbp/r13 as base cannot use mod=00.
    if disp == 0 and base_low != 5 and not force_disp32:
        mod, dispbytes = 0, b""
    elif _fits_signed(disp, 8) and not force_disp32:
        mod, dispbytes = 1, _pack(disp, 1)
    else:
        mod, dispbytes = 2, _pack(disp, 4)

    if need_sib:
        modrm = (mod << 6) | (regfield << 3) | 0x04
        index_bits = (index.number & 7) if index is not None else 0x04
        sib = (scale_bits << 6) | (index_bits << 3) | base_low
        enc.modrm_sib_disp = bytes([modrm, sib]) + dispbytes
    else:
        modrm = (mod << 6) | (regfield << 3) | base_low
        enc.modrm_sib_disp = bytes([modrm]) + dispbytes


def _modrm_reg(enc: _Enc, reg: Register, rm: Operand,
               symtab: Optional[Dict[str, int]]) -> None:
    enc.set_reg_bits(reg, "r")
    _modrm(enc, reg.number & 7, rm, symtab)


def _width_of(insn: Instruction) -> int:
    width = insn.effective_width()
    if width is None:
        raise EncodeError("ambiguous operand size for %s" % insn)
    return width


def _setup_width(enc: _Enc, width: int) -> None:
    if width == 16:
        enc.opsize66 = True
    elif width == 64:
        enc.rex_w = True


def _imm_operand(insn: Instruction, i: int = 0) -> Immediate:
    op = insn.op(i)
    if not isinstance(op, Immediate):
        raise EncodeError("expected immediate operand in %s" % insn)
    return op


def _imm_value(imm: Immediate, symtab: Optional[Dict[str, int]]) -> int:
    """Numeric value of an immediate, resolving a symbolic part if possible."""
    if imm.symbol is None:
        return imm.value
    if symtab is not None and imm.symbol in symtab:
        return imm.value + symtab[imm.symbol]
    return imm.value


def _check_imm_range(value: int, width: int, insn: Instruction) -> None:
    bits = min(width, 32)
    if not (_fits_signed(value, bits) or (0 <= value < (1 << bits))):
        raise EncodeError("immediate %d out of range for %s" % (value, insn))


# ---------------------------------------------------------------------------
# Per-family encoders.  Each takes (insn, enc, symtab) and fills `enc`.
# ---------------------------------------------------------------------------

def _enc_alu(insn: Instruction, enc: _Enc,
             symtab: Optional[Dict[str, int]]) -> None:
    n = _ALU_GROUP[insn.base]
    width = _width_of(insn)
    _setup_width(enc, width)
    if len(insn.operands) != 2:
        raise EncodeError("%s needs 2 operands" % insn.base)
    src, dst = insn.operands

    if isinstance(src, Immediate):
        value = _imm_value(src, symtab)
        symbolic = src.symbol is not None
        _check_imm_range(value, width, insn)
        if width == 8:
            if isinstance(dst, RegisterOperand) and dst.reg.name == "al":
                enc.opcode = bytes([n * 8 + 4])
                enc.imm = _pack(value, 1)
                return
            enc.opcode = b"\x80"
            _modrm(enc, n, dst, symtab)
            enc.imm = _pack(value, 1)
            return
        if _fits_signed(value, 8) and not symbolic:
            enc.opcode = b"\x83"
            _modrm(enc, n, dst, symtab)
            enc.imm = _pack(value, 1)
            return
        if (isinstance(dst, RegisterOperand) and dst.reg.number == 0
                and not dst.reg.high8):
            enc.opcode = bytes([n * 8 + 5])
            enc.imm = _pack(value, 2 if width == 16 else 4)
            return
        enc.opcode = b"\x81"
        _modrm(enc, n, dst, symtab)
        enc.imm = _pack(value, 2 if width == 16 else 4)
        return

    if isinstance(src, RegisterOperand):
        enc.opcode = bytes([n * 8 + (0 if width == 8 else 1)])
        _modrm_reg(enc, src.reg, dst, symtab)
        return

    if isinstance(src, Memory) and isinstance(dst, RegisterOperand):
        enc.opcode = bytes([n * 8 + (2 if width == 8 else 3)])
        _modrm_reg(enc, dst.reg, src, symtab)
        return

    raise EncodeError("unsupported %s operand combination: %s"
                      % (insn.base, insn))


def _enc_mov(insn: Instruction, enc: _Enc,
             symtab: Optional[Dict[str, int]]) -> None:
    if len(insn.operands) != 2:
        raise EncodeError("mov needs 2 operands")
    src, dst = insn.operands

    # SSE movq spelled "movq" with xmm operands.
    if any(isinstance(o, RegisterOperand) and o.reg.reg_class == "xmm"
           for o in (src, dst)):
        _enc_sse_movq(insn, enc, symtab)
        return

    width = _width_of(insn)
    _setup_width(enc, width)

    if isinstance(src, Immediate):
        value = _imm_value(src, symtab)
        if width == 64 and src.symbol is None and not _fits_signed(value, 32):
            if not isinstance(dst, RegisterOperand):
                raise EncodeError("64-bit immediate store needs register dst")
            enc.opcode = bytes([0xB8 + (dst.reg.number & 7)])
            enc.set_reg_bits(dst.reg, "b")
            enc.imm = _pack(value, 8)
            return
        _check_imm_range(value, width, insn)
        if isinstance(dst, RegisterOperand) and width != 64:
            if width == 8:
                enc.opcode = bytes([0xB0 + (dst.reg.number & 7)])
                enc.imm = _pack(value, 1)
            else:
                enc.opcode = bytes([0xB8 + (dst.reg.number & 7)])
                enc.imm = _pack(value, 2 if width == 16 else 4)
            enc.set_reg_bits(dst.reg, "b")
            return
        enc.opcode = b"\xc6" if width == 8 else b"\xc7"
        _modrm(enc, 0, dst, symtab)
        enc.imm = _pack(value, {8: 1, 16: 2, 32: 4, 64: 4}[width])
        return

    if isinstance(src, RegisterOperand):
        enc.opcode = b"\x88" if width == 8 else b"\x89"
        _modrm_reg(enc, src.reg, dst, symtab)
        return

    if isinstance(src, Memory) and isinstance(dst, RegisterOperand):
        enc.opcode = b"\x8a" if width == 8 else b"\x8b"
        _modrm_reg(enc, dst.reg, src, symtab)
        return

    raise EncodeError("unsupported mov combination: %s" % insn)


def _enc_movabs(insn: Instruction, enc: _Enc,
                symtab: Optional[Dict[str, int]]) -> None:
    src, dst = insn.operands
    if not (isinstance(src, Immediate) and isinstance(dst, RegisterOperand)):
        raise EncodeError("movabs supports imm -> reg only")
    width = _width_of(insn)
    _setup_width(enc, width)
    enc.opcode = bytes([0xB8 + (dst.reg.number & 7)])
    enc.set_reg_bits(dst.reg, "b")
    enc.imm = _pack(src.value, width // 8)


def _enc_lea(insn: Instruction, enc: _Enc,
             symtab: Optional[Dict[str, int]]) -> None:
    src, dst = insn.operands
    if not (isinstance(src, Memory) and isinstance(dst, RegisterOperand)):
        raise EncodeError("lea needs memory source and register dest")
    _setup_width(enc, _width_of(insn))
    enc.opcode = b"\x8d"
    _modrm_reg(enc, dst.reg, src, symtab)


def _enc_extend(insn: Instruction, enc: _Enc,
                symtab: Optional[Dict[str, int]]) -> None:
    src_w, dst_w = insn.info.extend
    src, dst = insn.operands
    if not isinstance(dst, RegisterOperand):
        raise EncodeError("movsx/movzx destination must be a register")
    _setup_width(enc, dst_w)
    if insn.base == "movsx":
        if src_w == 8:
            enc.opcode = b"\x0f\xbe"
        elif src_w == 16:
            enc.opcode = b"\x0f\xbf"
        else:  # movslq
            enc.opcode = b"\x63"
    else:
        enc.opcode = b"\x0f\xb6" if src_w == 8 else b"\x0f\xb7"
    if isinstance(src, RegisterOperand):
        enc.set_reg_bits(src.reg, "b")
    _modrm_reg(enc, dst.reg, src, symtab)


def _enc_test(insn: Instruction, enc: _Enc,
              symtab: Optional[Dict[str, int]]) -> None:
    width = _width_of(insn)
    _setup_width(enc, width)
    src, dst = insn.operands
    if isinstance(src, Immediate):
        value = _imm_value(src, symtab)
        _check_imm_range(value, width, insn)
        if (isinstance(dst, RegisterOperand) and dst.reg.number == 0
                and not dst.reg.high8):
            enc.opcode = b"\xa8" if width == 8 else b"\xa9"
            enc.imm = _pack(value, {8: 1, 16: 2}.get(width, 4))
            if width == 64:
                enc.rex_w = True
            return
        enc.opcode = b"\xf6" if width == 8 else b"\xf7"
        _modrm(enc, 0, dst, symtab)
        enc.imm = _pack(value, {8: 1, 16: 2}.get(width, 4))
        return
    if isinstance(src, RegisterOperand):
        enc.opcode = b"\x84" if width == 8 else b"\x85"
        _modrm_reg(enc, src.reg, dst, symtab)
        return
    raise EncodeError("unsupported test combination: %s" % insn)


def _enc_imul(insn: Instruction, enc: _Enc,
              symtab: Optional[Dict[str, int]]) -> None:
    width = _width_of(insn)
    if len(insn.operands) == 1:
        _setup_width(enc, width)
        enc.opcode = b"\xf6" if width == 8 else b"\xf7"
        _modrm(enc, _UNARY_F7["imul1"], insn.op(0), symtab)
        return
    _setup_width(enc, width)
    if len(insn.operands) == 2:
        src, dst = insn.operands
        if not isinstance(dst, RegisterOperand):
            raise EncodeError("imul destination must be a register")
        enc.opcode = b"\x0f\xaf"
        _modrm_reg(enc, dst.reg, src, symtab)
        return
    if len(insn.operands) == 3:
        immop, src, dst = insn.operands
        if not (isinstance(immop, Immediate)
                and isinstance(dst, RegisterOperand)):
            raise EncodeError("imul imm form: imm, r/m, reg")
        if _fits_signed(immop.value, 8):
            enc.opcode = b"\x6b"
            enc.imm = _pack(immop.value, 1)
        else:
            enc.opcode = b"\x69"
            enc.imm = _pack(immop.value, 2 if width == 16 else 4)
        _modrm_reg(enc, dst.reg, src, symtab)
        return
    raise EncodeError("imul with %d operands" % len(insn.operands))


def _enc_unary_f7(insn: Instruction, enc: _Enc,
                  symtab: Optional[Dict[str, int]]) -> None:
    width = _width_of(insn)
    _setup_width(enc, width)
    enc.opcode = b"\xf6" if width == 8 else b"\xf7"
    _modrm(enc, _UNARY_F7[insn.base], insn.op(0), symtab)


def _enc_incdec(insn: Instruction, enc: _Enc,
                symtab: Optional[Dict[str, int]]) -> None:
    width = _width_of(insn)
    _setup_width(enc, width)
    enc.opcode = b"\xfe" if width == 8 else b"\xff"
    _modrm(enc, 0 if insn.base == "inc" else 1, insn.op(0), symtab)


def _enc_shift(insn: Instruction, enc: _Enc,
               symtab: Optional[Dict[str, int]]) -> None:
    n = _SHIFT_GROUP[insn.base]
    width = _width_of(insn)
    _setup_width(enc, width)
    if len(insn.operands) == 1:
        # Implicit shift-by-1: "sarl %ecx".
        enc.opcode = b"\xd0" if width == 8 else b"\xd1"
        _modrm(enc, n, insn.op(0), symtab)
        return
    count, dst = insn.operands
    if isinstance(count, Immediate):
        if count.value == 1:
            enc.opcode = b"\xd0" if width == 8 else b"\xd1"
            _modrm(enc, n, dst, symtab)
            return
        enc.opcode = b"\xc0" if width == 8 else b"\xc1"
        _modrm(enc, n, dst, symtab)
        enc.imm = _pack(count.value, 1)
        return
    if isinstance(count, RegisterOperand) and count.reg.name == "cl":
        enc.opcode = b"\xd2" if width == 8 else b"\xd3"
        _modrm(enc, n, dst, symtab)
        return
    raise EncodeError("shift count must be immediate or %%cl: %s" % insn)


def _enc_push(insn: Instruction, enc: _Enc,
              symtab: Optional[Dict[str, int]]) -> None:
    op = insn.op(0)
    if isinstance(op, RegisterOperand):
        enc.opcode = bytes([0x50 + (op.reg.number & 7)])
        enc.set_reg_bits(op.reg, "b")
        return
    if isinstance(op, Immediate):
        value = _imm_value(op, symtab)
        if _fits_signed(value, 8) and op.symbol is None:
            enc.opcode = b"\x6a"
            enc.imm = _pack(value, 1)
        else:
            enc.opcode = b"\x68"
            enc.imm = _pack(value, 4)
        return
    if isinstance(op, Memory):
        enc.opcode = b"\xff"
        _modrm(enc, 6, op, symtab)
        return
    raise EncodeError("unsupported push operand: %s" % insn)


def _enc_pop(insn: Instruction, enc: _Enc,
             symtab: Optional[Dict[str, int]]) -> None:
    op = insn.op(0)
    if isinstance(op, RegisterOperand):
        enc.opcode = bytes([0x58 + (op.reg.number & 7)])
        enc.set_reg_bits(op.reg, "b")
        return
    if isinstance(op, Memory):
        enc.opcode = b"\x8f"
        _modrm(enc, 0, op, symtab)
        return
    raise EncodeError("unsupported pop operand: %s" % insn)


def _branch_rel(insn: Instruction, symtab: Optional[Dict[str, int]],
                address: Optional[int]) -> Optional[int]:
    """Resolved displacement target address, or None."""
    label = insn.branch_target_label()
    if label is None or symtab is None or label not in symtab:
        return None
    if address is None:
        return None
    return symtab[label]


def _enc_jmp(insn: Instruction, enc: _Enc,
             symtab: Optional[Dict[str, int]],
             address: Optional[int]) -> None:
    op = insn.op(0)
    if isinstance(op, (RegisterOperand, Memory)):
        enc.opcode = b"\xff"
        _modrm(enc, 4, op, symtab)
        return
    target = _branch_rel(insn, symtab, address)
    if target is not None:
        rel8 = target - (address + 2)
        if _fits_signed(rel8, 8):
            enc.opcode = b"\xeb"
            enc.imm = _pack(rel8, 1)
            return
        enc.opcode = b"\xe9"
        enc.imm = _pack(target - (address + 5), 4)
        return
    enc.opcode = b"\xe9"
    enc.imm = _pack(0, 4)


def _enc_jcc(insn: Instruction, enc: _Enc,
             symtab: Optional[Dict[str, int]],
             address: Optional[int]) -> None:
    cc = cc_encoding(insn.cond)
    target = _branch_rel(insn, symtab, address)
    if target is not None:
        rel8 = target - (address + 2)
        if _fits_signed(rel8, 8):
            enc.opcode = bytes([0x70 + cc])
            enc.imm = _pack(rel8, 1)
            return
        enc.opcode = bytes([0x0F, 0x80 + cc])
        enc.imm = _pack(target - (address + 6), 4)
        return
    enc.opcode = bytes([0x0F, 0x80 + cc])
    enc.imm = _pack(0, 4)


def _enc_call(insn: Instruction, enc: _Enc,
              symtab: Optional[Dict[str, int]],
              address: Optional[int]) -> None:
    op = insn.op(0)
    if isinstance(op, (RegisterOperand, Memory)):
        enc.opcode = b"\xff"
        _modrm(enc, 2, op, symtab)
        return
    target = _branch_rel(insn, symtab, address)
    enc.opcode = b"\xe8"
    enc.imm = _pack((target - (address + 5)) if target is not None else 0, 4)


def _enc_setcc(insn: Instruction, enc: _Enc,
               symtab: Optional[Dict[str, int]]) -> None:
    enc.opcode = bytes([0x0F, 0x90 + cc_encoding(insn.cond)])
    op = insn.op(0)
    if isinstance(op, RegisterOperand) and op.reg.width != 8:
        raise EncodeError("setcc needs an 8-bit destination: %s" % insn)
    if isinstance(op, RegisterOperand):
        enc.set_reg_bits(op.reg, "b")
    _modrm(enc, 0, op, symtab)


def _enc_cmov(insn: Instruction, enc: _Enc,
              symtab: Optional[Dict[str, int]]) -> None:
    src, dst = insn.operands
    if not isinstance(dst, RegisterOperand):
        raise EncodeError("cmov destination must be a register")
    _setup_width(enc, _width_of(insn))
    enc.opcode = bytes([0x0F, 0x40 + cc_encoding(insn.cond)])
    _modrm_reg(enc, dst.reg, src, symtab)


def _enc_xchg(insn: Instruction, enc: _Enc,
              symtab: Optional[Dict[str, int]]) -> None:
    width = _width_of(insn)
    src, dst = insn.operands
    if (isinstance(src, RegisterOperand) and isinstance(dst, RegisterOperand)
            and width != 8):
        for acc, other in ((src, dst), (dst, src)):
            if acc.reg.number == 0 and not acc.reg.high8:
                _setup_width(enc, width)
                enc.opcode = bytes([0x90 + (other.reg.number & 7)])
                enc.set_reg_bits(other.reg, "b")
                return
    _setup_width(enc, width)
    enc.opcode = b"\x86" if width == 8 else b"\x87"
    if isinstance(src, RegisterOperand):
        _modrm_reg(enc, src.reg, dst, symtab)
    elif isinstance(dst, RegisterOperand):
        _modrm_reg(enc, dst.reg, src, symtab)
    else:
        raise EncodeError("xchg needs at least one register operand")


def _enc_bswap(insn: Instruction, enc: _Enc,
               symtab: Optional[Dict[str, int]]) -> None:
    op = insn.op(0)
    if not isinstance(op, RegisterOperand):
        raise EncodeError("bswap operand must be a register")
    _setup_width(enc, _width_of(insn))
    enc.opcode = bytes([0x0F, 0xC8 + (op.reg.number & 7)])
    enc.set_reg_bits(op.reg, "b")


def _enc_prefetch(insn: Instruction, enc: _Enc,
                  symtab: Optional[Dict[str, int]]) -> None:
    enc.opcode = b"\x0f\x18"
    _modrm(enc, _PREFETCH_DIGIT[insn.base], insn.op(0), symtab)


def _xmm_reg(op: Operand, what: str) -> Register:
    if not (isinstance(op, RegisterOperand) and op.reg.reg_class == "xmm"):
        raise EncodeError("%s must be an xmm register" % what)
    return op.reg


def _enc_sse_mov(insn: Instruction, enc: _Enc,
                 symtab: Optional[Dict[str, int]]) -> None:
    prefix = {"movss": 0xF3, "movsd": 0xF2,
              "movups": None, "movaps": None}[insn.base]
    if insn.base == "movaps":
        load_op, store_op = 0x28, 0x29
    else:
        load_op, store_op = 0x10, 0x11
    enc.mandatory = prefix
    src, dst = insn.operands
    if isinstance(dst, RegisterOperand):
        enc.opcode = bytes([0x0F, load_op])
        _modrm_reg(enc, _xmm_reg(dst, "dest"), src, symtab)
    else:
        enc.opcode = bytes([0x0F, store_op])
        _modrm_reg(enc, _xmm_reg(src, "source"), dst, symtab)


def _enc_sse_alu(insn: Instruction, enc: _Enc,
                 symtab: Optional[Dict[str, int]]) -> None:
    prefix, opcode = _SSE_ALU[insn.base]
    enc.mandatory = prefix
    src, dst = insn.operands
    enc.opcode = bytes([0x0F, opcode])
    _modrm_reg(enc, _xmm_reg(dst, "dest"), src, symtab)


def _enc_sse_logic(insn: Instruction, enc: _Enc,
                   symtab: Optional[Dict[str, int]]) -> None:
    table = {"xorps": (None, 0x57), "xorpd": (0x66, 0x57),
             "pxor": (0x66, 0xEF),
             "ucomiss": (None, 0x2E), "ucomisd": (0x66, 0x2E),
             "comiss": (None, 0x2F), "comisd": (0x66, 0x2F)}
    prefix, opcode = table[insn.base]
    enc.mandatory = prefix
    src, dst = insn.operands
    enc.opcode = bytes([0x0F, opcode])
    _modrm_reg(enc, _xmm_reg(dst, "dest"), src, symtab)


def _enc_cvt(insn: Instruction, enc: _Enc,
             symtab: Optional[Dict[str, int]]) -> None:
    base = insn.base
    quad = base.endswith("q") and base not in ("cvtsi2ss", "cvtsi2sd")
    stem = base[:-1] if quad else base
    table = {"cvtsi2ss": (0xF3, 0x2A), "cvtsi2sd": (0xF2, 0x2A),
             "cvttss2si": (0xF3, 0x2C), "cvttsd2si": (0xF2, 0x2C)}
    prefix, opcode = table[stem]
    enc.mandatory = prefix
    if quad:
        enc.rex_w = True
    src, dst = insn.operands
    enc.opcode = bytes([0x0F, opcode])
    if stem.startswith("cvtsi"):
        _modrm_reg(enc, _xmm_reg(dst, "dest"), src, symtab)
    else:
        if not isinstance(dst, RegisterOperand):
            raise EncodeError("cvtt*2si destination must be a GP register")
        _modrm_reg(enc, dst.reg, src, symtab)


def _enc_sse_movq(insn: Instruction, enc: _Enc,
                  symtab: Optional[Dict[str, int]]) -> None:
    src, dst = insn.operands
    src_xmm = isinstance(src, RegisterOperand) and src.reg.reg_class == "xmm"
    dst_xmm = isinstance(dst, RegisterOperand) and dst.reg.reg_class == "xmm"
    if src_xmm and not dst_xmm:
        # movq %xmm, r/m64 -> 66 REX.W 0F 7E /r
        enc.mandatory = 0x66
        enc.rex_w = True
        enc.opcode = b"\x0f\x7e"
        _modrm_reg(enc, src.reg, dst, symtab)
    elif dst_xmm and not src_xmm:
        enc.mandatory = 0x66
        enc.rex_w = True
        enc.opcode = b"\x0f\x6e"
        _modrm_reg(enc, dst.reg, src, symtab)
    else:
        # xmm <- xmm: F3 0F 7E /r
        enc.mandatory = 0xF3
        enc.opcode = b"\x0f\x7e"
        _modrm_reg(enc, dst.reg, src, symtab)


def _enc_movd(insn: Instruction, enc: _Enc,
              symtab: Optional[Dict[str, int]]) -> None:
    src, dst = insn.operands
    enc.mandatory = 0x66
    if isinstance(dst, RegisterOperand) and dst.reg.reg_class == "xmm":
        enc.opcode = b"\x0f\x6e"
        _modrm_reg(enc, dst.reg, src, symtab)
    else:
        enc.opcode = b"\x0f\x7e"
        _modrm_reg(enc, _xmm_reg(src, "source"), dst, symtab)


def encode_instruction(insn: Instruction,
                       symtab: Optional[Dict[str, int]] = None,
                       address: Optional[int] = None) -> bytes:
    """Encode one instruction to machine-code bytes.

    Args:
        insn: the instruction.
        symtab: label/symbol -> address map; used to resolve branch targets
            and RIP-relative displacements.  Optional.
        address: the instruction's own start address (needed for relative
            displacements).  Falls back to ``insn.address``.

    Returns the encoding; also caches it on ``insn.encoding``.

    Address-independent instructions (``not symbol_dependent(insn)``) are
    served from the process-wide encoding cache; symbol-dependent forms
    always run the full encoder.
    """
    if address is None:
        address = insn.address

    cacheable = _CACHE_ENABLED and not symbol_dependent(insn)
    if cacheable:
        # Fast path: the encoding pinned on this very instruction object
        # (no key construction, no hashing).
        cached = insn._cached_encoding
        if cached is not None:
            _CACHE_STATS["hits"] += 1
            insn.encoding = cached
            return cached
        # Slow path: the process-wide canonical-form cache, shared between
        # equal instructions ("encode exactly once per process").
        key = _cache_key(insn)
        cached = _ENCODE_CACHE.get(key)
        if cached is not None:
            _CACHE_STATS["hits"] += 1
            insn._cached_encoding = cached
            insn.encoding = cached
            return cached
        _CACHE_STATS["misses"] += 1
    else:
        _CACHE_STATS["bypasses"] += 1

    enc = _Enc()
    for p in insn.prefixes:
        if p not in _LEGACY_PREFIX:
            raise EncodeError("unsupported prefix %r" % p)
        enc.legacy.append(_LEGACY_PREFIX[p])

    base = insn.base
    try:
        if base in _ALU_GROUP:
            _enc_alu(insn, enc, symtab)
        elif base == "mov":
            _enc_mov(insn, enc, symtab)
        elif base == "movabs":
            _enc_movabs(insn, enc, symtab)
        elif base == "lea":
            _enc_lea(insn, enc, symtab)
        elif base in ("movsx", "movzx"):
            _enc_extend(insn, enc, symtab)
        elif base == "test":
            _enc_test(insn, enc, symtab)
        elif base == "imul":
            _enc_imul(insn, enc, symtab)
        elif base in ("mul", "div", "idiv", "neg", "not"):
            _enc_unary_f7(insn, enc, symtab)
        elif base in ("inc", "dec"):
            _enc_incdec(insn, enc, symtab)
        elif base in _SHIFT_GROUP:
            _enc_shift(insn, enc, symtab)
        elif base == "push":
            _enc_push(insn, enc, symtab)
        elif base == "pop":
            _enc_pop(insn, enc, symtab)
        elif base == "jmp":
            _enc_jmp(insn, enc, symtab, address)
        elif base == "j":
            _enc_jcc(insn, enc, symtab, address)
        elif base == "call":
            _enc_call(insn, enc, symtab, address)
        elif base == "set":
            _enc_setcc(insn, enc, symtab)
        elif base == "cmov":
            _enc_cmov(insn, enc, symtab)
        elif base == "xchg":
            _enc_xchg(insn, enc, symtab)
        elif base == "bswap":
            _enc_bswap(insn, enc, symtab)
        elif base in _PREFETCH_DIGIT:
            _enc_prefetch(insn, enc, symtab)
        elif base in ("movss", "movsd", "movaps", "movups"):
            _enc_sse_mov(insn, enc, symtab)
        elif base in _SSE_ALU:
            _enc_sse_alu(insn, enc, symtab)
        elif base in ("xorps", "xorpd", "pxor", "ucomiss", "ucomisd",
                      "comiss", "comisd"):
            _enc_sse_logic(insn, enc, symtab)
        elif base.startswith("cvt"):
            _enc_cvt(insn, enc, symtab)
        elif base == "movd":
            _enc_movd(insn, enc, symtab)
        elif base == "nop" and insn.operands:
            # Multi-byte NOP: 0F 1F /0 (66-prefixed for nopw).
            if insn.width == 16:
                enc.opsize66 = True
            enc.opcode = b"\x0f\x1f"
            _modrm(enc, 0, insn.op(0), symtab)
        elif base == "ret" and insn.operands:
            enc.opcode = b"\xc2"
            enc.imm = _pack(_imm_operand(insn).value, 2)
        elif base in _NO_OPERAND and not insn.operands:
            enc.opcode = _NO_OPERAND[base]
        else:
            raise EncodeError("no encoder for %s" % insn)
    except (KeyError, IndexError) as exc:
        raise EncodeError("malformed %s: %s" % (insn, exc)) from exc

    data = enc.emit(symtab, address)
    insn.encoding = data
    if cacheable:
        _ENCODE_CACHE[key] = data
        insn._cached_encoding = data
    return data


def instruction_length(insn: Instruction,
                       symtab: Optional[Dict[str, int]] = None,
                       address: Optional[int] = None) -> int:
    """Length in bytes of the instruction's encoding."""
    return len(encode_instruction(insn, symtab=symtab, address=address))
