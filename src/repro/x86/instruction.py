"""The Instruction type — PyMAO's equivalent of gas's ``i386_insn`` struct.

The paper notes that every x86 instruction is encoded into *a single C
struct*, and that this uniformity is what makes the IR easy to manipulate.
:class:`Instruction` plays that role here: one type for every instruction,
holding the decomposed mnemonic, the operand list (in AT&T order —
source first, destination last), and the cached binary encoding produced by
the encoder/relaxation machinery.
"""

from __future__ import annotations

from typing import List, Optional

from repro.x86.isa import MnemonicInfo, split_mnemonic
from repro.x86.operands import (
    Immediate,
    LabelRef,
    Memory,
    Operand,
    RegisterOperand,
)
from repro.x86.registers import Register


class Instruction:
    """A single x86-64 instruction.

    Attributes:
        mnemonic: the original (AT&T) mnemonic as written, e.g. ``addl``.
        info: the decomposed :class:`MnemonicInfo` (base / width / cc).
        operands: operand list in AT&T order (sources before destination).
        prefixes: instruction prefixes such as ``lock`` or ``rep``.
        encoding: cached byte encoding, or None if not yet encoded.
        address: address assigned by the most recent relaxation, or None.
    """

    __slots__ = ("mnemonic", "info", "operands", "prefixes",
                 "encoding", "address", "_cached_encoding", "_symdep")

    def __init__(self, mnemonic: str, operands: Optional[List[Operand]] = None,
                 prefixes: Optional[List[str]] = None) -> None:
        self.mnemonic = mnemonic
        self.info: MnemonicInfo = split_mnemonic(mnemonic)
        self.operands: List[Operand] = list(operands or [])
        self.prefixes: List[str] = list(prefixes or [])
        self.encoding: Optional[bytes] = None
        self.address: Optional[int] = None
        #: Encoder-owned memo slots (see repro.x86.encoder): the pinned
        #: address-independent encoding and the symbol_dependent() verdict.
        #: Sound because operands are immutable value objects — passes build
        #: new Instructions rather than mutating operands in place.
        self._cached_encoding: Optional[bytes] = None
        self._symdep: Optional[bool] = None

    # ---- structural accessors -------------------------------------------

    @property
    def base(self) -> str:
        return self.info.base

    @property
    def width(self) -> Optional[int]:
        """Explicit operand width from the mnemonic suffix, if any."""
        return self.info.width

    @property
    def cond(self) -> Optional[str]:
        return self.info.cond

    def op(self, i: int) -> Operand:
        return self.operands[i]

    @property
    def num_operands(self) -> int:
        return len(self.operands)

    @property
    def src(self) -> Optional[Operand]:
        """First operand (AT&T source) for two-operand instructions."""
        return self.operands[0] if len(self.operands) >= 2 else None

    @property
    def dest(self) -> Optional[Operand]:
        """Last operand (AT&T destination)."""
        return self.operands[-1] if self.operands else None

    # ---- classification ---------------------------------------------------

    @property
    def is_jump(self) -> bool:
        return self.base in ("jmp", "j")

    @property
    def is_cond_jump(self) -> bool:
        return self.base == "j"

    @property
    def is_uncond_jump(self) -> bool:
        return self.base == "jmp"

    @property
    def is_call(self) -> bool:
        return self.base == "call"

    @property
    def is_ret(self) -> bool:
        return self.base == "ret"

    @property
    def is_control_transfer(self) -> bool:
        return self.base in ("jmp", "j", "call", "ret", "hlt", "ud2")

    @property
    def is_nop(self) -> bool:
        if self.base == "nop":
            return True
        # Common assembler-generated alignment filler: xchg %ax,%ax etc. and
        # "mov %reg,%reg" / "lea 0(%reg),%reg" forms count as effective nops.
        if self.base == "xchg" and len(self.operands) == 2:
            a, b = self.operands
            return (isinstance(a, RegisterOperand)
                    and isinstance(b, RegisterOperand) and a.reg == b.reg)
        return False

    @property
    def is_indirect_branch(self) -> bool:
        if self.base not in ("jmp", "call"):
            return False
        target = self.branch_target_operand()
        if isinstance(target, RegisterOperand):
            return True
        return isinstance(target, Memory)

    def branch_target_operand(self) -> Optional[Operand]:
        """The target operand of a jump/call, else None."""
        if self.base in ("jmp", "j", "call") and self.operands:
            return self.operands[0]
        return None

    def branch_target_label(self) -> Optional[str]:
        """The label name targeted by a direct jump/call, else None."""
        target = self.branch_target_operand()
        if isinstance(target, LabelRef):
            return target.name
        return None

    @property
    def has_memory_operand(self) -> bool:
        return any(isinstance(op, Memory) for op in self.operands)

    def memory_operand(self) -> Optional[Memory]:
        for op in self.operands:
            if isinstance(op, Memory):
                return op
        return None

    @property
    def reads_memory(self) -> bool:
        """True if the instruction loads from its memory operand.

        ``lea`` computes an address without touching memory; prefetches are
        hints.  For everything else a memory *source* (or a read-modify-write
        memory destination) counts as a read.
        """
        if not self.has_memory_operand or self.base == "lea":
            return False
        if self.base.startswith("prefetch"):
            return False
        if self.base in ("mov", "movss", "movsd", "movaps", "movups",
                         "movsx", "movzx", "movabs", "movd"):
            # Plain moves read memory only when memory is the source.
            return isinstance(self.operands[0], Memory) if self.operands else False
        if self.base == "push":
            return isinstance(self.operands[0], Memory)
        if self.base == "pop":
            return False
        return True

    @property
    def writes_memory(self) -> bool:
        if not self.has_memory_operand or self.base == "lea":
            return False
        if self.base.startswith("prefetch"):
            return False
        if self.base in ("cmp", "test", "ucomiss", "ucomisd", "push", "bt"):
            return False
        return isinstance(self.dest, Memory)

    # ---- effective width --------------------------------------------------

    def effective_width(self) -> Optional[int]:
        """Operand width in bits: mnemonic suffix, else register operand."""
        if self.width is not None:
            return self.width
        for op in reversed(self.operands):
            if isinstance(op, RegisterOperand) and op.reg.reg_class == "gp":
                return op.reg.width
        return None

    # ---- misc ---------------------------------------------------------------

    def register_operands(self) -> List[Register]:
        """All registers appearing anywhere in the operand list."""
        regs: List[Register] = []
        for op in self.operands:
            if isinstance(op, RegisterOperand):
                regs.append(op.reg)
            elif isinstance(op, Memory):
                if op.base is not None:
                    regs.append(op.base)
                if op.index is not None:
                    regs.append(op.index)
        return regs

    def clone(self) -> "Instruction":
        new = Instruction(self.mnemonic, list(self.operands),
                          list(self.prefixes))
        new.encoding = self.encoding
        new.address = self.address
        new._cached_encoding = self._cached_encoding
        new._symdep = self._symdep
        return new

    def __str__(self) -> str:
        prefix = " ".join(self.prefixes)
        ops = ", ".join(str(op) for op in self.operands)
        body = ("%s %s" % (self.mnemonic, ops)) if ops else self.mnemonic
        return ("%s %s" % (prefix, body)) if prefix else body

    def __repr__(self) -> str:
        return "Instruction(%s)" % str(self)

    def same_text(self, other: "Instruction") -> bool:
        return str(self) == str(other)


def make(mnemonic: str, *operands: Operand) -> Instruction:
    """Convenience constructor: ``make("addl", Immediate(1), reg("eax"))``."""
    return Instruction(mnemonic, list(operands))


def reg(name: str, indirect: bool = False) -> RegisterOperand:
    from repro.x86.registers import get_register
    return RegisterOperand(get_register(name), indirect=indirect)


def imm(value: int) -> Immediate:
    return Immediate(value)


def mem(disp: int = 0, base: Optional[str] = None, index: Optional[str] = None,
        scale: int = 1, symbol: Optional[str] = None) -> Memory:
    from repro.x86.registers import get_register
    return Memory(
        disp=disp,
        base=get_register(base) if base else None,
        index=get_register(index) if index else None,
        scale=scale,
        symbol=symbol,
    )


def label(name: str) -> LabelRef:
    return LabelRef(name)
