"""x86-64 register model.

Registers are identified by name (without the AT&T ``%`` sigil).  Each
register knows its width in bits, its hardware encoding number, and the
*alias group* it belongs to: ``rax``, ``eax``, ``ax``, ``al`` and ``ah`` all
alias the same physical register.  Data-flow analyses and the interpreter use
alias groups so a write to ``%eax`` is seen as killing ``%rax``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

GP_CLASS = "gp"
XMM_CLASS = "xmm"
IP_CLASS = "ip"
FLAGS_CLASS = "flags"


@dataclass(frozen=True)
class Register:
    """A single architectural register name (one width of a physical reg)."""

    name: str          # e.g. "eax", "r8d", "xmm3"
    width: int         # bits: 8, 16, 32, 64, 128
    number: int        # hardware encoding number 0..15
    reg_class: str     # GP_CLASS, XMM_CLASS, IP_CLASS or FLAGS_CLASS
    group: str         # alias-group key, e.g. "rax", "r8", "xmm3"
    high8: bool = False  # True for ah/bh/ch/dh

    def __str__(self) -> str:
        return "%" + self.name

    @property
    def needs_rex(self) -> bool:
        """True if encoding this register requires a REX prefix bit."""
        return self.number >= 8

    @property
    def is_new_low8(self) -> bool:
        """True for spl/bpl/sil/dil, which need an empty REX to encode."""
        return self.name in ("spl", "bpl", "sil", "dil")


_BASE64 = ["rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi"]
_BASE32 = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"]
_BASE16 = ["ax", "cx", "dx", "bx", "sp", "bp", "si", "di"]
_BASE8 = ["al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil"]
_HIGH8 = {"ah": 0, "ch": 1, "dh": 2, "bh": 3}

_REGISTERS: Dict[str, Register] = {}


def _add(reg: Register) -> None:
    _REGISTERS[reg.name] = reg


def _build_tables() -> None:
    for num in range(8):
        group = _BASE64[num]
        _add(Register(_BASE64[num], 64, num, GP_CLASS, group))
        _add(Register(_BASE32[num], 32, num, GP_CLASS, group))
        _add(Register(_BASE16[num], 16, num, GP_CLASS, group))
        _add(Register(_BASE8[num], 8, num, GP_CLASS, group))
    for name, num in _HIGH8.items():
        _add(Register(name, 8, num + 4, GP_CLASS, _BASE64[num], high8=True))
    for num in range(8, 16):
        group = "r%d" % num
        _add(Register("r%d" % num, 64, num, GP_CLASS, group))
        _add(Register("r%dd" % num, 32, num, GP_CLASS, group))
        _add(Register("r%dw" % num, 16, num, GP_CLASS, group))
        _add(Register("r%db" % num, 8, num, GP_CLASS, group))
    for num in range(16):
        name = "xmm%d" % num
        _add(Register(name, 128, num, XMM_CLASS, name))
    _add(Register("rip", 64, 5, IP_CLASS, "rip"))
    _add(Register("eip", 32, 5, IP_CLASS, "rip"))
    _add(Register("rflags", 64, 0, FLAGS_CLASS, "rflags"))


_build_tables()


def get_register(name: str) -> Register:
    """Look up a register by name (no ``%`` sigil). Raises KeyError."""
    return _REGISTERS[name.lower()]


def is_register_name(name: str) -> bool:
    return name.lower() in _REGISTERS


def alias_group(name: str) -> str:
    """The alias-group key for a register name (e.g. ``eax`` -> ``rax``)."""
    return _REGISTERS[name.lower()].group


def registers_in_group(group: str) -> List[Register]:
    return [r for r in _REGISTERS.values() if r.group == group]


def gp_register(number: int, width: int) -> Register:
    """The GP register with a given hardware number and width.

    For width 8 the REX-encodable low byte (``spl`` family) is returned,
    never ``ah``..``dh``.
    """
    for reg in _REGISTERS.values():
        if (reg.reg_class == GP_CLASS and reg.number == number
                and reg.width == width and not reg.high8):
            return reg
    raise KeyError((number, width))


def widen(reg: Register, width: int) -> Register:
    """The same physical register at a different width."""
    if reg.reg_class != GP_CLASS:
        raise ValueError("can only widen GP registers: %s" % reg.name)
    return gp_register(reg.number if not reg.high8 else reg.number - 4, width)


#: Alias groups of all 16 GP registers, in hardware-number order.
GP_GROUPS: Tuple[str, ...] = tuple(_BASE64) + tuple("r%d" % n for n in range(8, 16))

#: Groups of registers that are callee-saved under the SysV ABI.
CALLEE_SAVED: FrozenSet[str] = frozenset(
    ["rbx", "rsp", "rbp", "r12", "r13", "r14", "r15"])

#: Allocatable scratch groups, handy for workload/sequence generation.
CALLER_SAVED: FrozenSet[str] = frozenset(
    ["rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11"])


def parse_width_suffix(suffix: str) -> Optional[int]:
    """Width in bits for an AT&T mnemonic size suffix letter."""
    return {"b": 8, "w": 16, "l": 32, "q": 64}.get(suffix)


def suffix_for_width(width: int) -> str:
    return {8: "b", 16: "w", 32: "l", 64: "q"}[width]
