"""Query layer over the generated side-effect tables.

This is the interface data-flow analysis and the optimization passes use:
given an :class:`~repro.x86.instruction.Instruction`, report which register
alias groups it reads and writes, and which RFLAGS bits it reads, writes,
clears, or leaves undefined.  Registers are reported as *alias groups*
(``eax`` -> ``rax``) so partial-register writes conservatively kill the
whole register.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set, Tuple

from repro.x86._sideeffects_tables import TABLES
from repro.x86.flags import cc_flags_read
from repro.x86.instruction import Instruction
from repro.x86.operands import Memory, Operand, RegisterOperand

#: Caller-saved groups clobbered by a call under the SysV ABI.
CALL_CLOBBERED = frozenset(
    ["rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11"]
    + ["xmm%d" % i for i in range(16)])

#: Argument/return registers conservatively read by calls/returns.
CALL_USED = frozenset(
    ["rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "rsp"]
    + ["xmm%d" % i for i in range(8)])


class UnknownSideEffects(KeyError):
    """No side-effect table entry exists for the instruction."""


def _lookup(insn: Instruction):
    base = insn.base
    arity = len(insn.operands)
    entry = TABLES.get((base, arity))
    if entry is None:
        entry = TABLES.get((base, None))
    if entry is None:
        raise UnknownSideEffects(base)
    return entry


def _resolve_items(insn: Instruction, items: Tuple[str, ...]) -> Set[str]:
    """Operand designators -> register alias groups (registers only)."""
    groups: Set[str] = set()
    ops = insn.operands
    for item in items:
        if item.startswith("%"):
            groups.add(item[1:])
            continue
        if item == "src":
            selected: Optional[Operand] = ops[0] if len(ops) >= 2 else None
        elif item == "dst":
            selected = ops[-1] if ops else None
        else:  # opN
            idx = int(item[2:])
            selected = ops[idx] if idx < len(ops) else None
        if isinstance(selected, RegisterOperand):
            groups.add(selected.reg.group)
    return groups


def _address_uses(insn: Instruction) -> Set[str]:
    groups: Set[str] = set()
    for op in insn.operands:
        if isinstance(op, Memory):
            if op.base is not None and op.base.group != "rip":
                groups.add(op.base.group)
            if op.index is not None:
                groups.add(op.index.group)
    return groups


def reg_uses(insn: Instruction) -> Set[str]:
    """Alias groups of registers the instruction reads.

    Address registers of memory operands are always uses.  Calls and other
    barriers conservatively use the ABI argument registers.
    """
    entry = _lookup(insn)
    uses, defs, _, _, _, _, _, barrier = entry
    groups = _resolve_items(insn, uses) | _address_uses(insn)
    if barrier:
        groups |= set(CALL_USED)
    return groups


def reg_defs(insn: Instruction) -> Set[str]:
    """Alias groups of registers the instruction writes."""
    entry = _lookup(insn)
    _, defs, _, _, _, _, _, barrier = entry
    groups = _resolve_items(insn, defs)
    # A designated "def" operand that is memory defines no register.
    if barrier:
        groups |= set(CALL_CLOBBERED) | {"rsp"}
    return groups


def flags_written(insn: Instruction) -> FrozenSet[str]:
    entry = _lookup(insn)
    return frozenset(entry[2])


def flags_read(insn: Instruction) -> FrozenSet[str]:
    """Flags read; resolves the ``cc`` marker via the condition suffix."""
    entry = _lookup(insn)
    flags = set(entry[3])
    if "cc" in flags:
        flags.discard("cc")
        if insn.cond is not None:
            flags |= cc_flags_read(insn.cond)
    return frozenset(flags)


def flags_cleared(insn: Instruction) -> FrozenSet[str]:
    """Flags written with a known-zero value (e.g. CF/OF after logic ops)."""
    return frozenset(_lookup(insn)[4])


def flags_result(insn: Instruction) -> FrozenSet[str]:
    """Flags whose post-state reflects the destination value."""
    return frozenset(_lookup(insn)[5])


def flags_undefined(insn: Instruction) -> FrozenSet[str]:
    return frozenset(_lookup(insn)[6])


def is_barrier(insn: Instruction) -> bool:
    """True for call/ret/syscall-like instructions that end analysis scope."""
    try:
        return bool(_lookup(insn)[7])
    except UnknownSideEffects:
        return True


def has_side_effect_entry(insn: Instruction) -> bool:
    try:
        _lookup(insn)
        return True
    except UnknownSideEffects:
        return False
