"""Tokenization of assembly source text.

The lexer is line-oriented, matching how gas treats assembly input.  It
splits a source string into logical statements (handling ``;`` statement
separators and ``#`` comments outside string literals) and provides a small
regex tokenizer for operand expressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class SourceLine:
    """One logical assembly statement with its source line number."""

    text: str
    lineno: int


def _strip_comment(line: str) -> str:
    """Remove a ``#`` comment, respecting double-quoted strings."""
    out = []
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        elif ch == "#" and not in_string:
            break
        out.append(ch)
        i += 1
    return "".join(out)


def _split_statements(line: str) -> List[str]:
    """Split on ``;`` outside of string literals."""
    parts = []
    current = []
    in_string = False
    for i, ch in enumerate(line):
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        if ch == ";" and not in_string:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)


def logical_lines(source: str) -> Iterator[SourceLine]:
    """Yield trimmed, comment-free statements from assembly source."""
    # Preserve line structure (and numbering) when removing /* */ blocks.
    source = _BLOCK_COMMENT.sub(
        lambda match: "\n" * match.group().count("\n"), source)
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        for stmt in _split_statements(line):
            stmt = stmt.strip()
            if stmt:
                yield SourceLine(stmt, lineno)


# ---------------------------------------------------------------------------
# Operand-expression tokenizer.
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(r"""
    (?P<REG>%[a-zA-Z][a-zA-Z0-9]*)
  | (?P<NUMBER>-?0[xX][0-9a-fA-F]+|-?\d+)
  | (?P<IDENT>[.@_a-zA-Z][.@_$a-zA-Z0-9]*)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<PLUS>\+)
  | (?P<MINUS>-)
  | (?P<STAR>\*)
  | (?P<DOLLAR>\$)
  | (?P<WS>\s+)
""", re.VERBOSE)


Token = Tuple[str, str]

# Token interning: corpus-scale parsing sees the same registers, opcodes,
# and punctuation on nearly every line, and allocating a fresh tuple per
# occurrence duplicates them millions of times.  Tokens are immutable, so
# one shared tuple per distinct (kind, text) is safe; the table is bounded
# because IDENT/NUMBER texts (labels, displacements) are open-ended —
# once full, rare tokens simply stop being shared.
_INTERN_MAX = 65536
_TOKEN_INTERN: dict = {}


def _intern_token(kind: str, text: str) -> Token:
    key = (kind, text)
    token = _TOKEN_INTERN.get(key)
    if token is None:
        if len(_TOKEN_INTERN) >= _INTERN_MAX:
            return key
        _TOKEN_INTERN[key] = token = key
    return token


class LexError(Exception):
    pass


def tokenize_operand(text: str) -> List[Token]:
    """Tokenize an operand string into (kind, text) pairs (whitespace
    dropped).  Tokens are interned: two parses of the same text yield the
    *same* tuple objects."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = TOKEN_RE.match(text, pos)
        if match is None:
            raise LexError("cannot tokenize operand %r at %r"
                           % (text, text[pos:]))
        kind = match.lastgroup
        if kind != "WS":
            tokens.append(_intern_token(kind, match.group()))
        pos = match.end()
    return tokens


def split_operands(text: str) -> List[str]:
    """Split an operand list on top-level commas (not inside parentheses)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_integer(text: str) -> int:
    """Parse a decimal or hex integer literal (with optional sign)."""
    text = text.strip()
    return int(text, 0)
