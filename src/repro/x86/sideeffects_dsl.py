"""The side-effect configuration language.

The paper describes MAO's approach to modelling instruction side effects:

    "MAO uses a table-driven approach to model side effects.  A tiny
    configuration language specifies opcodes, operands being modified, flags
    set, and other potential side effects.  A generator program constructs
    C tables for use by MAO."

This module defines that tiny language and its parser.  The specification
itself lives in :data:`SPEC`; ``sideeffects_gen.py`` is the generator program
that turns it into the checked-in ``_sideeffects_tables.py``, and
``sideeffects.py`` is the query layer used by data-flow analysis and passes.

Grammar (one instruction per line, ``#`` comments)::

    insn BASE[@ARITY] [use(ITEMS)] [def(ITEMS)] [flags(KEY=F1,F2 ...)] [barrier]

ITEMS are operand designators (``src`` = first operand, ``dst`` = last,
``op0``/``op1``/``op2`` = positional) or implicit registers (``%rax``).
``flags`` keys: ``w`` (written), ``r`` (read; the token ``cc`` means
"depends on the condition code"), ``clear`` (written with a known zero
value), ``result`` (flags that reflect the destination value — ``test dst,
dst`` would reproduce them), ``undef`` (architecturally undefined after the
instruction).  ``@ARITY`` selects a variant by operand count.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

_VALID_FLAGS = {"CF", "PF", "AF", "ZF", "SF", "OF", "cc"}
_VALID_ITEMS_RE = re.compile(r"^(src|dst|op\d+|%[a-z0-9]+)$")


@dataclass(frozen=True)
class SideEffectSpec:
    """Parsed side-effect description for one (base, arity) pair."""

    base: str
    arity: Optional[int]          # None = any operand count
    uses: Tuple[str, ...]         # operand designators / implicit registers
    defs: Tuple[str, ...]
    flags_written: FrozenSet[str]
    flags_read: FrozenSet[str]    # may contain "cc"
    flags_cleared: FrozenSet[str]
    flags_result: FrozenSet[str]  # reproduce-by-test subset
    flags_undef: FrozenSet[str]
    barrier: bool = False         # call/ret/syscall: clobbers everything


class SpecError(Exception):
    pass


_CLAUSE_RE = re.compile(r"(use|def|flags)\(([^)]*)\)|barrier")


def _parse_items(text: str, lineno: int) -> Tuple[str, ...]:
    items = tuple(text.split())
    for item in items:
        if not _VALID_ITEMS_RE.match(item):
            raise SpecError("line %d: bad operand item %r" % (lineno, item))
    return items


def _parse_flags(text: str, lineno: int) -> Dict[str, FrozenSet[str]]:
    result: Dict[str, FrozenSet[str]] = {}
    for part in text.split():
        if "=" not in part:
            raise SpecError("line %d: bad flags clause %r" % (lineno, part))
        key, names = part.split("=", 1)
        if key not in ("w", "r", "clear", "result", "undef"):
            raise SpecError("line %d: bad flags key %r" % (lineno, key))
        flags = frozenset(names.split(",")) - {""}
        unknown = flags - _VALID_FLAGS
        if unknown:
            raise SpecError("line %d: unknown flags %s" % (lineno, unknown))
        result[key] = flags
    return result


def parse_spec(text: str) -> List[SideEffectSpec]:
    """Parse the configuration language into spec records."""
    specs: List[SideEffectSpec] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split(None, 2)
        if parts[0] != "insn" or len(parts) < 2:
            raise SpecError("line %d: expected 'insn BASE ...'" % lineno)
        name = parts[1]
        if "@" in name:
            base, arity_text = name.split("@", 1)
            arity: Optional[int] = int(arity_text)
        else:
            base, arity = name, None
        rest = parts[2] if len(parts) == 3 else ""

        uses: Tuple[str, ...] = ()
        defs: Tuple[str, ...] = ()
        flags: Dict[str, FrozenSet[str]] = {}
        barrier = False
        for match in _CLAUSE_RE.finditer(rest):
            if match.group(0) == "barrier":
                barrier = True
            elif match.group(1) == "use":
                uses = _parse_items(match.group(2), lineno)
            elif match.group(1) == "def":
                defs = _parse_items(match.group(2), lineno)
            elif match.group(1) == "flags":
                flags = _parse_flags(match.group(2), lineno)
        specs.append(SideEffectSpec(
            base=base,
            arity=arity,
            uses=uses,
            defs=defs,
            flags_written=flags.get("w", frozenset()),
            flags_read=flags.get("r", frozenset()),
            flags_cleared=flags.get("clear", frozenset()),
            flags_result=flags.get("result", frozenset()),
            flags_undef=flags.get("undef", frozenset()),
            barrier=barrier,
        ))
    return specs


ARITH_FLAGS = "w=CF,PF,AF,ZF,SF,OF result=ZF,SF,PF"
LOGIC_FLAGS = "w=CF,PF,AF,ZF,SF,OF clear=CF,OF result=ZF,SF,PF undef=AF"
INCDEC_FLAGS = "w=PF,AF,ZF,SF,OF result=ZF,SF,PF"
SHIFT_FLAGS = "w=CF,PF,AF,ZF,SF,OF undef=AF,OF"
MUL_FLAGS = "w=CF,PF,AF,ZF,SF,OF undef=PF,AF,ZF,SF"

#: The full specification for the supported subset.
SPEC = """
# -- moves ------------------------------------------------------------------
insn mov      use(src) def(dst)
insn movabs   use(src) def(dst)
insn movsx    use(src) def(dst)
insn movzx    use(src) def(dst)
insn lea      use(src) def(dst)
insn xchg     use(src dst) def(src dst)
insn bswap    use(dst) def(dst)
insn cmov     use(src dst) def(dst) flags(r=cc)
insn set      def(dst) flags(r=cc)

# -- integer ALU --------------------------------------------------------------
insn add      use(src dst) def(dst) flags({arith})
insn sub      use(src dst) def(dst) flags({arith})
insn adc      use(src dst) def(dst) flags({arith} r=CF)
insn sbb      use(src dst) def(dst) flags({arith} r=CF)
insn and      use(src dst) def(dst) flags({logic})
insn or       use(src dst) def(dst) flags({logic})
insn xor      use(src dst) def(dst) flags({logic})
insn cmp      use(src dst) flags(w=CF,PF,AF,ZF,SF,OF)
insn test     use(src dst) flags({logic})
insn inc      use(dst) def(dst) flags({incdec})
insn dec      use(dst) def(dst) flags({incdec})
insn neg      use(dst) def(dst) flags({arith})
insn not      use(dst) def(dst)
insn bt       use(src dst) flags(w=CF undef=PF,AF,SF,OF)

# -- shifts -------------------------------------------------------------------
insn shl@1    use(dst) def(dst) flags({shift})
insn shl@2    use(src dst) def(dst) flags({shift})
insn shr@1    use(dst) def(dst) flags({shift})
insn shr@2    use(src dst) def(dst) flags({shift})
insn sar@1    use(dst) def(dst) flags({shift})
insn sar@2    use(src dst) def(dst) flags({shift})
insn rol@1    use(dst) def(dst) flags(w=CF,OF undef=OF)
insn rol@2    use(src dst) def(dst) flags(w=CF,OF undef=OF)
insn ror@1    use(dst) def(dst) flags(w=CF,OF undef=OF)
insn ror@2    use(src dst) def(dst) flags(w=CF,OF undef=OF)

# -- multiply / divide --------------------------------------------------------
insn imul@1   use(op0 %rax) def(%rax %rdx) flags({mul})
insn imul@2   use(src dst) def(dst) flags({mul})
insn imul@3   use(op0 op1) def(op2) flags({mul})
insn mul@1    use(op0 %rax) def(%rax %rdx) flags({mul})
insn idiv@1   use(op0 %rax %rdx) def(%rax %rdx) flags(w=CF,PF,AF,ZF,SF,OF undef=CF,PF,AF,ZF,SF,OF)
insn div@1    use(op0 %rax %rdx) def(%rax %rdx) flags(w=CF,PF,AF,ZF,SF,OF undef=CF,PF,AF,ZF,SF,OF)

# -- sign extensions into rax/rdx ---------------------------------------------
insn cltq     use(%rax) def(%rax)
insn cwtl     use(%rax) def(%rax)
insn cqto     use(%rax) def(%rdx)
insn cltd     use(%rax) def(%rdx)

# -- stack --------------------------------------------------------------------
insn push     use(op0 %rsp) def(%rsp)
insn pop      def(op0 %rsp) use(%rsp)
insn leave    use(%rbp) def(%rsp %rbp)

# -- control transfer ---------------------------------------------------------
insn jmp      use(op0)
insn j        flags(r=cc)
insn call     use(op0) barrier
insn ret      barrier
insn syscall  barrier
insn hlt      barrier
insn ud2      barrier
insn int3     barrier
insn cpuid    def(%rax %rbx %rcx %rdx) use(%rax %rcx) barrier
insn rdtsc    def(%rax %rdx)

# -- nops / hints -------------------------------------------------------------
insn nop
insn pause
insn mfence
insn lfence
insn sfence
insn prefetchnta use(op0)
insn prefetcht0  use(op0)
insn prefetcht1  use(op0)
insn prefetcht2  use(op0)

# -- SSE scalar ---------------------------------------------------------------
insn movss    use(src) def(dst)
insn movsd    use(src) def(dst)
insn movaps   use(src) def(dst)
insn movups   use(src) def(dst)
insn movd     use(src) def(dst)
insn addss    use(src dst) def(dst)
insn addsd    use(src dst) def(dst)
insn subss    use(src dst) def(dst)
insn subsd    use(src dst) def(dst)
insn mulss    use(src dst) def(dst)
insn mulsd    use(src dst) def(dst)
insn divss    use(src dst) def(dst)
insn divsd    use(src dst) def(dst)
insn xorps    use(src dst) def(dst)
insn xorpd    use(src dst) def(dst)
insn pxor     use(src dst) def(dst)
insn ucomiss  use(src dst) flags(w=CF,PF,ZF clear=AF,SF,OF)
insn ucomisd  use(src dst) flags(w=CF,PF,ZF clear=AF,SF,OF)
insn comiss   use(src dst) flags(w=CF,PF,ZF clear=AF,SF,OF)
insn comisd   use(src dst) flags(w=CF,PF,ZF clear=AF,SF,OF)
insn cvtss2sd use(src) def(dst)
insn cvtsd2ss use(src) def(dst)
insn cvtsi2ss use(src) def(dst)
insn cvtsi2sd use(src) def(dst)
insn cvtsi2ssq use(src) def(dst)
insn cvtsi2sdq use(src) def(dst)
insn cvttss2si use(src) def(dst)
insn cvttsd2si use(src) def(dst)
insn cvttss2siq use(src) def(dst)
insn cvttsd2siq use(src) def(dst)
""".format(arith=ARITH_FLAGS, logic=LOGIC_FLAGS, incdec=INCDEC_FLAGS,
           shift=SHIFT_FLAGS, mul=MUL_FLAGS)


def parse_builtin_spec() -> List[SideEffectSpec]:
    return parse_spec(SPEC)
