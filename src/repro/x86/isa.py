"""Instruction-set database: mnemonic canonicalization and classification.

AT&T mnemonics bundle three pieces of information: a base operation
(``add``), an optional operand-size suffix (``l``), and for the ``jcc`` /
``setcc`` / ``cmovcc`` families a condition code.  :func:`split_mnemonic`
separates these and validates the base against the supported set.

The supported subset covers everything found in compiler-generated integer
code plus the SSE scalar moves/arithmetic the paper's examples use.  Unknown
mnemonics are not an error at parse time — they become opaque IR entries that
are carried through and re-emitted verbatim — but they cannot be encoded or
simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.x86.flags import is_cc_suffix, split_cc_mnemonic
from repro.x86.registers import parse_width_suffix


@dataclass(frozen=True)
class MnemonicInfo:
    """Decomposed mnemonic: canonical base, operand width, condition code."""

    base: str                  # canonical base, e.g. "add", "j", "cmov"
    width: Optional[int]       # operand width in bits, None if unsuffixed
    cond: Optional[str] = None  # condition-code suffix for jcc/setcc/cmovcc
    #: (src_width, dst_width) for the movsx/movzx families, else None
    extend: Optional[tuple] = None


#: Bases that accept a b/w/l/q size suffix.
SUFFIXABLE: FrozenSet[str] = frozenset([
    "mov", "add", "sub", "and", "or", "xor", "cmp", "test", "adc", "sbb",
    "lea", "inc", "dec", "neg", "not", "imul", "mul", "idiv", "div",
    "shl", "sal", "shr", "sar", "rol", "ror", "push", "pop", "xchg",
    "bswap", "bt", "movabs",
])

#: Bases that never take a size suffix.
UNSUFFIXED: FrozenSet[str] = frozenset([
    "jmp", "call", "ret", "leave", "nop", "ud2", "hlt", "int3",
    "cltq", "cqto", "cltd", "cwtl", "cdqe", "cqo", "cdq", "cwde",
    "movss", "movsd", "addss", "addsd", "subss", "subsd",
    "mulss", "mulsd", "divss", "divsd", "xorps", "xorpd", "pxor",
    "movaps", "movups", "movd", "movq_sse",
    "ucomiss", "ucomisd", "comiss", "comisd",
    "cvtsi2ss", "cvtsi2sd", "cvttss2si", "cvttsd2si",
    "cvtsi2ssq", "cvtsi2sdq", "cvttss2siq", "cvttsd2siq",
    "cvtss2sd", "cvtsd2ss",
    "prefetchnta", "prefetcht0", "prefetcht1", "prefetcht2",
    "rep", "repz", "repnz", "lock", "pause", "mfence", "lfence", "sfence",
    "cpuid", "rdtsc", "syscall",
])

#: movsx / movzx in AT&T spelling: base -> (src_width, dst_width, signed).
EXTEND_MOVES = {
    "movsbw": (8, 16, True), "movsbl": (8, 32, True), "movsbq": (8, 64, True),
    "movswl": (16, 32, True), "movswq": (16, 64, True),
    "movslq": (32, 64, True),
    "movzbw": (8, 16, False), "movzbl": (8, 32, False),
    "movzbq": (8, 64, False),
    "movzwl": (16, 32, False), "movzwq": (16, 64, False),
}

#: Aliases normalized during parsing.
ALIASES = {
    "sal": "shl", "salb": "shlb", "salw": "shlw",
    "sall": "shll", "salq": "shlq",
    "cdqe": "cltq", "cqo": "cqto", "cdq": "cltd", "cwde": "cwtl",
    "jc": "jb", "jnc": "jae", "jz": "je", "jnz": "jne",
    "jna": "jbe", "jnbe": "ja", "jnae": "jb", "jnb": "jae",
    "jpe": "jp", "jpo": "jnp", "jnge": "jl", "jnl": "jge",
    "jng": "jle", "jnle": "jg",
}

#: Control-transfer bases.
BRANCH_BASES: FrozenSet[str] = frozenset(["jmp", "j", "call", "ret"])


class UnknownMnemonic(KeyError):
    """Raised when a mnemonic is not in the supported subset."""


def split_mnemonic(mnemonic: str) -> MnemonicInfo:
    """Decompose an AT&T mnemonic into a :class:`MnemonicInfo`.

    Raises :class:`UnknownMnemonic` for mnemonics outside the subset.
    """
    m = ALIASES.get(mnemonic, mnemonic)

    if m in EXTEND_MOVES:
        src_w, dst_w, signed = EXTEND_MOVES[m]
        base = "movsx" if signed else "movzx"
        return MnemonicInfo(base, dst_w, extend=(src_w, dst_w))

    if m in UNSUFFIXED:
        return MnemonicInfo(m, None)

    # jcc / setcc / cmovcc, possibly with a size suffix on cmov.
    try:
        prefix, cond = split_cc_mnemonic(m)
    except ValueError:
        pass
    else:
        return MnemonicInfo(prefix, None, cond=cond)

    # cmovXXl style: strip suffix then retry cc split.
    width = parse_width_suffix(m[-1:]) if len(m) > 1 else None
    if width is not None:
        stem = m[:-1]
        stem = ALIASES.get(stem, stem)
        if stem in SUFFIXABLE:
            return MnemonicInfo(stem, width)
        if stem.startswith("cmov") and is_cc_suffix(stem[4:]):
            return MnemonicInfo("cmov", width, cond=stem[4:])
        # jmpq / callq / retq / leaveq / pushq without "push" in stem etc.
        if stem in UNSUFFIXED:
            return MnemonicInfo(stem, width)

    if m in SUFFIXABLE:
        # Unsuffixed form; width must come from a register operand.
        return MnemonicInfo(m, None)

    raise UnknownMnemonic(mnemonic)


def is_control_transfer(info: MnemonicInfo) -> bool:
    return info.base in ("jmp", "j", "call", "ret")


def is_conditional_branch(info: MnemonicInfo) -> bool:
    return info.base == "j" and info.cond is not None
