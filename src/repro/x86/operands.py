"""Operand types for x86-64 instructions.

Four operand kinds cover everything the supported subset needs:

* :class:`RegisterOperand` — a direct register reference.
* :class:`Immediate` — an integer literal (``$5`` in AT&T syntax).
* :class:`Memory` — a full addressing-mode expression
  ``disp(base, index, scale)``, possibly RIP-relative or with a symbolic
  displacement.
* :class:`LabelRef` — a code label used as a branch / call target.

Operands are immutable value objects; passes build new instructions rather
than mutating operands in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.x86.registers import Register


@dataclass(frozen=True)
class RegisterOperand:
    reg: Register
    #: True for indirect jump/call targets written ``*%rax``.
    indirect: bool = False

    def __str__(self) -> str:
        star = "*" if self.indirect else ""
        return "%s%%%s" % (star, self.reg.name)


@dataclass(frozen=True)
class Immediate:
    """An immediate operand; ``symbol`` makes it symbolic (``$.LC0+4``)."""

    value: int
    symbol: Optional[str] = None

    def __str__(self) -> str:
        if self.symbol is not None:
            if self.value > 0:
                return "$%s+%d" % (self.symbol, self.value)
            if self.value < 0:
                return "$%s%d" % (self.symbol, self.value)
            return "$%s" % self.symbol
        return "$%d" % self.value

    def fits_signed(self, bits: int) -> bool:
        if self.symbol is not None:
            return bits >= 32
        lo = -(1 << (bits - 1))
        hi = (1 << (bits - 1)) - 1
        return lo <= self.value <= hi

    def fits_unsigned(self, bits: int) -> bool:
        if self.symbol is not None:
            return bits >= 32
        return 0 <= self.value <= (1 << bits) - 1


@dataclass(frozen=True)
class Memory:
    """An x86 memory operand: ``disp(base, index, scale)``.

    ``symbol`` holds a symbolic displacement (a label or data symbol name);
    the numeric ``disp`` is added to it.  A ``base`` of ``%rip`` denotes
    RIP-relative addressing.
    """

    disp: int = 0
    base: Optional[Register] = None
    index: Optional[Register] = None
    scale: int = 1
    symbol: Optional[str] = None
    #: True for indirect jump/call targets written ``*(%rax)``.
    indirect: bool = False

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError("invalid scale %r" % (self.scale,))
        if self.index is not None and self.index.name == "rsp":
            raise ValueError("%rsp cannot be an index register")

    @property
    def is_rip_relative(self) -> bool:
        return self.base is not None and self.base.group == "rip"

    @property
    def is_absolute(self) -> bool:
        return self.base is None and self.index is None

    def __str__(self) -> str:
        parts = []
        if self.symbol:
            parts.append(self.symbol)
            if self.disp > 0:
                parts.append("+%d" % self.disp)
            elif self.disp < 0:
                parts.append("%d" % self.disp)
        elif self.disp or (self.base is None and self.index is None):
            parts.append("%d" % self.disp)
        inner = []
        if self.base is not None or self.index is not None:
            inner.append("%%%s" % self.base.name if self.base else "")
            if self.index is not None:
                inner.append("%%%s" % self.index.name)
                inner.append("%d" % self.scale)
        star = "*" if self.indirect else ""
        if inner:
            return "%s%s(%s)" % (star, "".join(parts), ",".join(inner))
        return "%s%s" % (star, "".join(parts))


@dataclass(frozen=True)
class LabelRef:
    """A branch or call target given as a label / symbol name."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[RegisterOperand, Immediate, Memory, LabelRef]


def is_reg(op: object) -> bool:
    return isinstance(op, RegisterOperand)


def is_imm(op: object) -> bool:
    return isinstance(op, Immediate)


def is_mem(op: object) -> bool:
    return isinstance(op, Memory)


def is_label(op: object) -> bool:
    return isinstance(op, LabelRef)
