"""AT&T-syntax assembly parser.

Parses assembly text into a flat list of parsed statements — labels,
directives, and instructions — which ``repro.ir.builder`` assembles into a
:class:`~repro.ir.unit.MaoUnit`.  Mirrors how MAO uses gas: the parser is
the first "pass" and produces the raw entry stream.

Unknown mnemonics do not abort parsing; they become :class:`ParsedOpaque`
statements that are carried through the IR and re-emitted verbatim (they
just cannot be encoded or simulated).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.x86 import lexer
from repro.x86.instruction import Instruction
from repro.x86.isa import UnknownMnemonic
from repro.x86.lexer import Token, split_operands, tokenize_operand
from repro.x86.operands import (
    Immediate,
    LabelRef,
    Memory,
    Operand,
    RegisterOperand,
)
from repro.x86.registers import get_register, is_register_name


class ParseError(Exception):
    """Malformed assembly input."""

    def __init__(self, message: str, lineno: Optional[int] = None) -> None:
        if lineno is not None:
            message = "line %d: %s" % (lineno, message)
        super().__init__(message)
        self.lineno = lineno


@dataclass
class ParsedLabel:
    name: str
    lineno: int = 0


@dataclass
class ParsedDirective:
    name: str               # without the leading dot, e.g. "p2align"
    args: str               # raw argument string
    lineno: int = 0

    def int_args(self) -> List[int]:
        """Comma-separated integer arguments (missing entries skipped)."""
        values = []
        for part in split_operands(self.args):
            part = part.strip()
            if part:
                try:
                    values.append(lexer.parse_integer(part))
                except ValueError:
                    pass
        return values

    def str_args(self) -> List[str]:
        return [p.strip() for p in split_operands(self.args) if p.strip()]


@dataclass
class ParsedInstruction:
    insn: Instruction
    lineno: int = 0


@dataclass
class ParsedOpaque:
    """A statement we carry through verbatim (unsupported mnemonic)."""

    text: str
    lineno: int = 0


Statement = Union[ParsedLabel, ParsedDirective, ParsedInstruction,
                  ParsedOpaque]

_PREFIX_MNEMONICS = ("lock", "rep", "repz", "repnz", "repe", "repne")


class _OperandParser:
    """Recursive-descent parser over operand tokens."""

    def __init__(self, tokens: List[Token], is_branch: bool,
                 lineno: int) -> None:
        self.tokens = tokens
        self.pos = 0
        self.is_branch = is_branch
        self.lineno = lineno

    def peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of operand", self.lineno)
        self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.next()
        if token[0] != kind:
            raise ParseError("expected %s, got %r" % (kind, token[1]),
                             self.lineno)
        return token

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Operand:
        token = self.peek()
        if token is None:
            raise ParseError("empty operand", self.lineno)
        kind = token[0]
        if kind == "DOLLAR":
            self.next()
            return self._immediate()
        if kind == "STAR":
            self.next()
            return self._indirect()
        if kind == "REG":
            self.next()
            return RegisterOperand(self._register(token[1]))
        return self._memory_or_label(indirect=False)

    def _register(self, text: str):
        name = text[1:]
        if not is_register_name(name):
            raise ParseError("unknown register %r" % text, self.lineno)
        return get_register(name)

    def _immediate(self) -> Immediate:
        value, symbol = self._expr()
        return Immediate(value, symbol=symbol)

    def _indirect(self) -> Operand:
        token = self.peek()
        if token is not None and token[0] == "REG":
            self.next()
            return RegisterOperand(self._register(token[1]), indirect=True)
        mem = self._memory_or_label(indirect=True)
        if isinstance(mem, LabelRef):
            # "*symbol" is a memory-indirect jump through `symbol`.
            return Memory(symbol=mem.name, indirect=True)
        return mem

    def _expr(self) -> Tuple[int, Optional[str]]:
        """Parse ``[sym|num] ([+-] [sym|num])*`` into (value, symbol)."""
        value = 0
        symbol: Optional[str] = None
        sign = 1
        expect_term = True
        while True:
            token = self.peek()
            if token is None:
                break
            kind, text = token
            if expect_term and kind == "NUMBER":
                self.next()
                value += sign * lexer.parse_integer(text)
            elif expect_term and kind == "IDENT":
                self.next()
                if symbol is not None:
                    raise ParseError("two symbols in one expression",
                                     self.lineno)
                if sign < 0:
                    raise ParseError("negated symbol in expression",
                                     self.lineno)
                symbol = text
            elif expect_term and kind == "MINUS":
                self.next()
                sign = -sign
                continue
            elif kind == "PLUS":
                self.next()
                sign = 1
            elif kind == "MINUS":
                self.next()
                sign = -1
            else:
                break
            expect_term = kind in ("PLUS", "MINUS")
        return value, symbol

    def _memory_or_label(self, indirect: bool) -> Operand:
        value, symbol = 0, None
        token = self.peek()
        if token is not None and token[0] != "LPAREN":
            value, symbol = self._expr()
        token = self.peek()
        if token is None or token[0] != "LPAREN":
            # Bare expression.
            if self.is_branch and symbol is not None and value == 0:
                return LabelRef(symbol)
            return Memory(disp=value, symbol=symbol, indirect=indirect)
        self.next()  # consume LPAREN
        base = index = None
        scale = 1
        token = self.peek()
        if token is not None and token[0] == "REG":
            self.next()
            base = self._register(token[1])
        token = self.peek()
        if token is not None and token[0] == "COMMA":
            self.next()
            token = self.peek()
            if token is not None and token[0] == "REG":
                self.next()
                index = self._register(token[1])
            token = self.peek()
            if token is not None and token[0] == "COMMA":
                self.next()
                scale = lexer.parse_integer(self.expect("NUMBER")[1])
        self.expect("RPAREN")
        try:
            return Memory(disp=value, base=base, index=index, scale=scale,
                          symbol=symbol, indirect=indirect)
        except ValueError as exc:
            raise ParseError(str(exc), self.lineno) from exc


def parse_operand(text: str, is_branch: bool = False,
                  lineno: int = 0) -> Operand:
    """Parse a single AT&T operand string."""
    tokens = tokenize_operand(text)
    parser = _OperandParser(tokens, is_branch, lineno)
    operand = parser.parse()
    if not parser.at_end():
        raise ParseError("trailing tokens in operand %r" % text, lineno)
    return operand


def parse_instruction(text: str, lineno: int = 0) -> Union[ParsedInstruction,
                                                           ParsedOpaque]:
    """Parse one instruction statement (mnemonic + operands)."""
    parts = text.split(None, 1)
    # A corpus repeats the same few hundred mnemonics endlessly; intern
    # them so every Instruction shares one string per opcode.
    mnemonic = sys.intern(parts[0].lower())
    prefixes: List[str] = []
    while mnemonic in _PREFIX_MNEMONICS and len(parts) == 2:
        prefixes.append({"repe": "repz", "repne": "repnz"}.get(mnemonic,
                                                               mnemonic))
        parts = parts[1].split(None, 1)
        mnemonic = sys.intern(parts[0].lower())

    operand_text = parts[1] if len(parts) == 2 else ""
    try:
        insn = Instruction(mnemonic, prefixes=prefixes)
    except UnknownMnemonic:
        return ParsedOpaque(text, lineno)

    is_branch = insn.base in ("jmp", "j", "call")
    operands: List[Operand] = []
    for op_text in split_operands(operand_text):
        try:
            operands.append(parse_operand(op_text, is_branch, lineno))
        except lexer.LexError as exc:
            raise ParseError(str(exc), lineno) from exc
    insn.operands = operands
    return ParsedInstruction(insn, lineno)


def parse_asm_text(source: str) -> List[Statement]:
    """Parse a full assembly file into a statement list."""
    statements: List[Statement] = []
    for line in lexer.logical_lines(source):
        text = line.text
        # Leading labels: "name:" possibly several on one statement.
        while True:
            colon = text.find(":")
            if colon <= 0:
                break
            head = text[:colon].strip()
            if not head or any(ch.isspace() for ch in head) or '"' in head:
                break
            # A register or operand can't precede ':' at statement start.
            statements.append(ParsedLabel(head, line.lineno))
            text = text[colon + 1:].strip()
        if not text:
            continue
        if text.startswith("."):
            parts = text.split(None, 1)
            name = parts[0][1:].lower()
            args = parts[1] if len(parts) == 2 else ""
            statements.append(ParsedDirective(name, args.strip(),
                                              line.lineno))
            continue
        statements.append(parse_instruction(text, line.lineno))
    return statements
