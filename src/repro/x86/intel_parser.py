"""Basic Intel-syntax assembly parser.

The paper: "Since MAO is based on gas, it accepts assembly files in either
Intel or AT&T syntax".  This module covers the common Intel-syntax subset
(`mov eax, 5`, `mov dword ptr [rbp-4], 5`, `jmp label`) by translating
each statement into the canonical AT&T form and reusing the main parser —
the IR is syntax-agnostic either way.

Use :func:`parse_intel_text` for whole files (or pass
``syntax="intel"`` to :func:`repro.ir.builder.parse_unit`).
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.x86.isa import UnknownMnemonic, split_mnemonic
from repro.x86.lexer import logical_lines, split_operands
from repro.x86.parser import (
    ParseError,
    ParsedDirective,
    ParsedLabel,
    Statement,
    parse_instruction,
)
from repro.x86.registers import is_register_name

_SIZE_PTR = {
    "byte": ("b", 8), "word": ("w", 16), "dword": ("l", 32),
    "qword": ("q", 64),
}

_MEM_RE = re.compile(r"^(?:(byte|word|dword|qword)\s+ptr\s+)?\[(.+)\]$",
                     re.IGNORECASE)


class IntelSyntaxError(ParseError):
    pass


def _translate_memory(body: str) -> str:
    """``[rbp-4]`` / ``[rax+rbx*4+8]`` / ``[sym+rax*8]`` -> AT&T form."""
    base: Optional[str] = None
    index: Optional[str] = None
    scale = 1
    disp_parts: List[str] = []
    symbol: Optional[str] = None

    # Tokenize on +/- while keeping signs for displacements.
    tokens = re.findall(r"[+-]?[^+-]+", body.replace(" ", ""))
    for token in tokens:
        sign = ""
        if token[0] in "+-":
            sign = token[0]
            token = token[1:]
        if "*" in token:
            reg, _, factor = token.partition("*")
            if not is_register_name(reg):
                raise IntelSyntaxError("bad index %r" % token)
            index = reg
            scale = int(factor, 0)
        elif is_register_name(token):
            if base is None:
                base = token
            elif index is None:
                index = token
            else:
                raise IntelSyntaxError("too many registers in %r" % body)
        else:
            try:
                int(token, 0)
                disp_parts.append(sign + token)
            except ValueError:
                if symbol is not None:
                    raise IntelSyntaxError("two symbols in %r" % body)
                symbol = token

    disp = sum(int(p, 0) for p in disp_parts) if disp_parts else 0
    prefix = ""
    if symbol:
        prefix = symbol
        if disp:
            prefix += "%+d" % disp
    elif disp:
        prefix = "%d" % disp
    inner = ""
    if base or index:
        inner = "(%s%s%s)" % (
            "%" + base if base else "",
            (",%" + index) if index else "",
            (",%d" % scale) if index else "")
    elif symbol:
        # Bare symbol: address it RIP-relative, the common 64-bit form.
        inner = "(%rip)"
    return prefix + inner


def _translate_operand(text: str, mem_suffix: List[str]) -> str:
    text = text.strip()
    match = _MEM_RE.match(text)
    if match:
        size, body = match.groups()
        if size:
            mem_suffix.append(_SIZE_PTR[size.lower()][0])
        return _translate_memory(body)
    lowered = text.lower()
    if is_register_name(lowered):
        return "%" + lowered
    try:
        int(text, 0)
        return "$" + text
    except ValueError:
        pass
    if lowered.startswith("offset "):
        return "$" + text[7:].strip()
    # Label / symbol (branch target or bare symbol reference).
    return text


def translate_instruction(text: str) -> str:
    """One Intel-syntax instruction -> AT&T text."""
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    operand_text = parts[1] if len(parts) == 2 else ""

    operands = split_operands(operand_text)
    mem_suffix: List[str] = []
    translated = [_translate_operand(op, mem_suffix) for op in operands]

    is_branch = mnemonic in ("jmp", "call") or (
        mnemonic.startswith("j") and mnemonic not in ("jmp",))
    if not is_branch:
        translated.reverse()          # Intel: dest first; AT&T: dest last

    att_mnemonic = mnemonic
    try:
        info = split_mnemonic(mnemonic)
    except UnknownMnemonic:
        info = None
    # A size-ptr qualifier supplies the operand width the AT&T mnemonic
    # suffix would; registers make the width unambiguous anyway.
    if mem_suffix and info is not None and info.width is None \
            and info.base not in ("jmp", "call", "j", "ret", "push",
                                  "pop", "lea"):
        att_mnemonic = mnemonic + mem_suffix[0]

    if is_branch and translated and translated[0].startswith("%"):
        translated[0] = "*" + translated[0]

    return ("%s %s" % (att_mnemonic, ", ".join(translated))).strip()


def parse_intel_text(source: str) -> List[Statement]:
    """Parse Intel-syntax assembly into the same statement list the AT&T
    parser produces."""
    statements: List[Statement] = []
    for line in logical_lines(source):
        text = line.text
        # Directives and labels share the AT&T forms.
        while True:
            colon = text.find(":")
            if colon <= 0:
                break
            head = text[:colon].strip()
            if not head or any(ch.isspace() for ch in head):
                break
            statements.append(ParsedLabel(head, line.lineno))
            text = text[colon + 1:].strip()
        if not text:
            continue
        if text.startswith("."):
            parts = text.split(None, 1)
            statements.append(ParsedDirective(
                parts[0][1:].lower(),
                parts[1] if len(parts) == 2 else "", line.lineno))
            continue
        att = translate_instruction(text)
        statements.append(parse_instruction(att, line.lineno))
    return statements
