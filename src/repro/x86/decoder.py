"""x86-64 instruction decoder for the supported subset.

The inverse of ``encoder.py``: turns machine-code bytes back into
:class:`~repro.x86.instruction.Instruction` objects.  It exists for the
paper's §III.A verification methodology — "We then disassemble O1 and O2
and verify that both disassembled files are textually identical" — which
``repro.verify.disassemble_compare`` implements on top of this module, and
as an independent check on the encoder (round-trip property tests).

Branch targets decode to absolute addresses rendered as synthetic labels
``.Laddr_<hex>``; :func:`disassemble` emits matching label definitions so
the output re-assembles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.x86.flags import CC_CANONICAL
from repro.x86.instruction import Instruction
from repro.x86.operands import (
    Immediate,
    LabelRef,
    Memory,
    Operand,
    RegisterOperand,
)
from repro.x86.registers import (
    Register,
    get_register,
    gp_register,
    suffix_for_width,
)


class DecodeError(Exception):
    """The byte sequence is not a supported instruction."""


@dataclass
class Decoded:
    """One decoded instruction."""

    insn: Instruction
    length: int
    address: int
    #: Absolute target for direct branches, else None.
    branch_target: Optional[int] = None


_ALU_NAMES = ["add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"]
_SHIFT_NAMES = {0: "rol", 1: "ror", 4: "shl", 5: "shr", 7: "sar"}
_F7_NAMES = {2: "not", 3: "neg", 4: "mul", 5: "imul", 6: "div", 7: "idiv"}


def _signed(data: bytes) -> int:
    return int.from_bytes(data, "little", signed=True)


def _unsigned(data: bytes) -> int:
    return int.from_bytes(data, "little")


class _Cursor:
    def __init__(self, data: bytes, offset: int) -> None:
        self.data = data
        self.pos = offset

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise DecodeError("truncated instruction")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise DecodeError("truncated instruction")
        chunk = self.data[self.pos:self.pos + count]
        self.pos += count
        return chunk


class _Ctx:
    """Prefix state for one instruction."""

    def __init__(self) -> None:
        self.rex = 0
        self.has_rex = False      # a REX prefix was present (even 0x40)
        self.opsize = False       # 0x66 seen
        self.rep = None           # 0xF2 / 0xF3
        self.lock = False

    @property
    def rex_w(self) -> bool:
        return bool(self.rex & 8)

    def gp_width(self) -> int:
        if self.rex_w:
            return 64
        if self.opsize:
            return 16
        return 32

    def reg(self, number: int, width: int, high_ok: bool = False
            ) -> Register:
        if width == 8 and not self.has_rex and number >= 4 \
                and number < 8 and high_ok:
            # Without REX, encodings 4-7 are ah/ch/dh/bh.
            return get_register(["ah", "ch", "dh", "bh"][number - 4])
        return gp_register(number, width)

    def xmm(self, number: int) -> Register:
        return get_register("xmm%d" % number)


def _modrm(cur: _Cursor, ctx: _Ctx, width: int,
           xmm_rm: bool = False) -> Tuple[int, Operand]:
    """Decode ModRM(+SIB+disp); returns (reg field, r/m operand)."""
    modrm = cur.byte()
    mod = modrm >> 6
    reg = ((modrm >> 3) & 7) | ((ctx.rex & 4) << 1)
    rm_low = modrm & 7

    if mod == 3:
        number = rm_low | ((ctx.rex & 1) << 3)
        if xmm_rm:
            return reg, RegisterOperand(ctx.xmm(number))
        return reg, RegisterOperand(
            ctx.reg(number, width, high_ok=width == 8))

    base: Optional[Register] = None
    index: Optional[Register] = None
    scale = 1
    disp = 0

    if rm_low == 4:                 # SIB
        sib = cur.byte()
        scale = 1 << (sib >> 6)
        index_bits = ((sib >> 3) & 7) | ((ctx.rex & 2) << 2)
        base_bits = (sib & 7) | ((ctx.rex & 1) << 3)
        if index_bits != 4:
            index = gp_register(index_bits, 64)
        if (sib & 7) == 5 and mod == 0:
            base = None
            disp = _signed(cur.take(4))
        else:
            base = gp_register(base_bits, 64)
    elif rm_low == 5 and mod == 0:   # RIP-relative
        disp = _signed(cur.take(4))
        return reg, Memory(disp=disp, base=get_register("rip"))
    else:
        base = gp_register(rm_low | ((ctx.rex & 1) << 3), 64)

    if mod == 1:
        disp = _signed(cur.take(1))
    elif mod == 2:
        disp = _signed(cur.take(4))

    return reg, Memory(disp=disp, base=base, index=index, scale=scale)


def _mk(mnemonic: str, *operands: Operand) -> Instruction:
    return Instruction(mnemonic, list(operands))


def _suffixed(base: str, width: int) -> str:
    return base + suffix_for_width(width)


def decode_one(data: bytes, offset: int = 0,
               address: int = 0) -> Decoded:
    """Decode one instruction starting at *offset*.

    ``address`` is the instruction's runtime address (used to compute
    absolute branch targets).
    """
    cur = _Cursor(data, offset)
    ctx = _Ctx()

    # Prefixes.
    while True:
        byte = cur.byte()
        if byte == 0x66:
            ctx.opsize = True
        elif byte in (0xF2, 0xF3):
            ctx.rep = byte
        elif byte == 0xF0:
            ctx.lock = True
        elif 0x40 <= byte <= 0x4F:
            ctx.rex = byte & 0xF
            ctx.has_rex = True
        else:
            opcode = byte
            break

    insn, target = _decode_opcode(cur, ctx, opcode, address, offset)
    length = cur.pos - offset
    insn.address = address
    insn.encoding = bytes(data[offset:offset + length])
    return Decoded(insn=insn, length=length, address=address,
                   branch_target=target)


def _imm_for(cur: _Cursor, width: int) -> int:
    size = {8: 1, 16: 2, 32: 4, 64: 4}[width]
    return _signed(cur.take(size))


def _target_label(target: int) -> LabelRef:
    return LabelRef(".Laddr_%x" % target)


def _decode_opcode(cur: _Cursor, ctx: _Ctx, opcode: int,
                   address: int, start: int
                   ) -> Tuple[Instruction, Optional[int]]:
    width = ctx.gp_width()

    # ---- ALU block 00..3D ------------------------------------------------
    if opcode < 0x40 and (opcode & 7) <= 5 and opcode not in (0x0F,):
        name = _ALU_NAMES[opcode >> 3]
        form = opcode & 7
        if form in (0, 1):            # MR
            w = 8 if form == 0 else width
            reg, rm = _modrm(cur, ctx, w)
            return _mk(_suffixed(name, w),
                       RegisterOperand(ctx.reg(reg, w, high_ok=w == 8)),
                       rm), None
        if form in (2, 3):            # RM
            w = 8 if form == 2 else width
            reg, rm = _modrm(cur, ctx, w)
            return _mk(_suffixed(name, w), rm,
                       RegisterOperand(ctx.reg(reg, w, high_ok=w == 8))
                       ), None
        if form in (4, 5):            # acc, imm
            w = 8 if form == 4 else width
            imm = _imm_for(cur, w)
            return _mk(_suffixed(name, w), Immediate(imm),
                       RegisterOperand(ctx.reg(0, w))), None

    if 0x50 <= opcode <= 0x57:
        number = (opcode & 7) | ((ctx.rex & 1) << 3)
        return _mk("push", RegisterOperand(gp_register(number, 64))), None
    if 0x58 <= opcode <= 0x5F:
        number = (opcode & 7) | ((ctx.rex & 1) << 3)
        return _mk("pop", RegisterOperand(gp_register(number, 64))), None

    if opcode == 0x63:               # movslq
        reg, rm = _modrm(cur, ctx, 32)
        return _mk("movslq", rm,
                   RegisterOperand(ctx.reg(reg, 64))), None
    if opcode == 0x68:
        return _mk("pushq", Immediate(_signed(cur.take(4)))), None
    if opcode == 0x6A:
        return _mk("pushq", Immediate(_signed(cur.take(1)))), None
    if opcode in (0x69, 0x6B):       # imul imm
        reg, rm = _modrm(cur, ctx, width)
        imm = _signed(cur.take(1)) if opcode == 0x6B \
            else _imm_for(cur, width)
        return _mk(_suffixed("imul", width), Immediate(imm), rm,
                   RegisterOperand(ctx.reg(reg, width))), None

    if 0x70 <= opcode <= 0x7F:       # jcc rel8
        rel = _signed(cur.take(1))
        target = address + (cur.pos - start) + rel
        return _mk("j" + CC_CANONICAL[opcode & 0xF],
                   _target_label(target)), target

    if opcode in (0x80, 0x81, 0x83):
        w = 8 if opcode == 0x80 else width
        digit, rm = _modrm(cur, ctx, w)
        digit &= 7
        if opcode == 0x83:
            imm = _signed(cur.take(1))
        else:
            imm = _imm_for(cur, w)
        return _mk(_suffixed(_ALU_NAMES[digit], w), Immediate(imm),
                   rm), None

    if opcode in (0x84, 0x85):
        w = 8 if opcode == 0x84 else width
        reg, rm = _modrm(cur, ctx, w)
        return _mk(_suffixed("test", w),
                   RegisterOperand(ctx.reg(reg, w, high_ok=w == 8)),
                   rm), None
    if opcode in (0x86, 0x87):
        w = 8 if opcode == 0x86 else width
        reg, rm = _modrm(cur, ctx, w)
        return _mk(_suffixed("xchg", w),
                   RegisterOperand(ctx.reg(reg, w, high_ok=w == 8)),
                   rm), None

    if opcode in (0x88, 0x89, 0x8A, 0x8B):
        w = 8 if opcode in (0x88, 0x8A) else width
        reg, rm = _modrm(cur, ctx, w)
        reg_op = RegisterOperand(ctx.reg(reg, w, high_ok=w == 8))
        if opcode in (0x88, 0x89):
            return _mk(_suffixed("mov", w), reg_op, rm), None
        return _mk(_suffixed("mov", w), rm, reg_op), None

    if opcode == 0x8D:
        reg, rm = _modrm(cur, ctx, width)
        return _mk(_suffixed("lea", width), rm,
                   RegisterOperand(ctx.reg(reg, width))), None
    if opcode == 0x8F:
        _, rm = _modrm(cur, ctx, 64)
        return _mk("popq", rm), None

    if opcode == 0x90 and not (ctx.rex & 1):
        if ctx.rep == 0xF3:
            return _mk("pause"), None
        return _mk("nop"), None
    if 0x90 <= opcode <= 0x97:
        number = (opcode & 7) | ((ctx.rex & 1) << 3)
        return _mk(_suffixed("xchg", width),
                   RegisterOperand(gp_register(number, width)),
                   RegisterOperand(ctx.reg(0, width))), None

    if opcode == 0x98:
        return _mk("cltq" if ctx.rex_w else "cwtl"), None
    if opcode == 0x99:
        return _mk("cqto" if ctx.rex_w else "cltd"), None

    if opcode in (0xA8, 0xA9):
        w = 8 if opcode == 0xA8 else width
        imm = _imm_for(cur, w)
        return _mk(_suffixed("test", w), Immediate(imm),
                   RegisterOperand(ctx.reg(0, w))), None

    if 0xB0 <= opcode <= 0xB7:
        number = (opcode & 7) | ((ctx.rex & 1) << 3)
        imm = _unsigned(cur.take(1))
        return _mk("movb", Immediate(imm),
                   RegisterOperand(ctx.reg(number, 8,
                                           high_ok=True))), None
    if 0xB8 <= opcode <= 0xBF:
        number = (opcode & 7) | ((ctx.rex & 1) << 3)
        if ctx.rex_w:
            imm = _signed(cur.take(8))
            return _mk("movabsq", Immediate(imm),
                       RegisterOperand(gp_register(number, 64))), None
        w = 16 if ctx.opsize else 32
        imm = _signed(cur.take(w // 8))
        return _mk(_suffixed("mov", w), Immediate(imm),
                   RegisterOperand(gp_register(number, w))), None

    if opcode in (0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3):
        w = 8 if opcode in (0xC0, 0xD0, 0xD2) else width
        digit, rm = _modrm(cur, ctx, w)
        digit &= 7
        if digit not in _SHIFT_NAMES:
            raise DecodeError("bad shift digit %d" % digit)
        name = _suffixed(_SHIFT_NAMES[digit], w)
        if opcode in (0xC0, 0xC1):
            return _mk(name, Immediate(_unsigned(cur.take(1))), rm), None
        if opcode in (0xD0, 0xD1):
            return _mk(name, Immediate(1), rm), None
        return _mk(name, RegisterOperand(get_register("cl")), rm), None

    if opcode == 0xC2:
        return _mk("ret", Immediate(_unsigned(cur.take(2)))), None
    if opcode == 0xC3:
        return _mk("ret"), None
    if opcode in (0xC6, 0xC7):
        w = 8 if opcode == 0xC6 else width
        _, rm = _modrm(cur, ctx, w)
        imm = _imm_for(cur, w)
        return _mk(_suffixed("mov", w), Immediate(imm), rm), None
    if opcode == 0xC9:
        return _mk("leave"), None
    if opcode == 0xCC:
        return _mk("int3"), None

    if opcode == 0xE8:
        rel = _signed(cur.take(4))
        target = address + (cur.pos - start) + rel
        return _mk("call", _target_label(target)), target
    if opcode == 0xE9:
        rel = _signed(cur.take(4))
        target = address + (cur.pos - start) + rel
        return _mk("jmp", _target_label(target)), target
    if opcode == 0xEB:
        rel = _signed(cur.take(1))
        target = address + (cur.pos - start) + rel
        return _mk("jmp", _target_label(target)), target

    if opcode == 0xF4:
        return _mk("hlt"), None

    if opcode in (0xF6, 0xF7):
        w = 8 if opcode == 0xF6 else width
        digit, rm = _modrm(cur, ctx, w)
        digit &= 7
        if digit == 0:
            imm = _imm_for(cur, w)
            return _mk(_suffixed("test", w), Immediate(imm), rm), None
        if digit in _F7_NAMES:
            return _mk(_suffixed(_F7_NAMES[digit], w), rm), None
        raise DecodeError("bad F7 digit %d" % digit)

    if opcode in (0xFE, 0xFF):
        w = 8 if opcode == 0xFE else width
        digit, rm = _modrm(cur, ctx, w)
        digit &= 7
        if digit == 0:
            return _mk(_suffixed("inc", w), rm), None
        if digit == 1:
            return _mk(_suffixed("dec", w), rm), None
        if opcode == 0xFF and digit == 2:
            return _mk("call", _indirect(rm)), None
        if opcode == 0xFF and digit == 4:
            return _mk("jmp", _indirect(rm)), None
        if opcode == 0xFF and digit == 6:
            return _mk("pushq", rm), None
        raise DecodeError("bad FF digit %d" % digit)

    if opcode == 0x0F:
        return _decode_0f(cur, ctx, address, start)

    raise DecodeError("unsupported opcode %#x" % opcode)


def _indirect(rm: Operand) -> Operand:
    if isinstance(rm, RegisterOperand):
        return RegisterOperand(rm.reg, indirect=True)
    if isinstance(rm, Memory):
        return Memory(disp=rm.disp, base=rm.base, index=rm.index,
                      scale=rm.scale, symbol=rm.symbol, indirect=True)
    return rm


_SSE_ARITH_0F = {0x58: "add", 0x59: "mul", 0x5C: "sub", 0x5E: "div"}


def _decode_0f(cur: _Cursor, ctx: _Ctx, address: int,
               start: int) -> Tuple[Instruction, Optional[int]]:
    opcode = cur.byte()
    width = ctx.gp_width()

    if opcode == 0x05:
        return _mk("syscall"), None
    if opcode == 0x0B:
        return _mk("ud2"), None
    if opcode == 0x18:
        digit, rm = _modrm(cur, ctx, 64)
        names = {0: "prefetchnta", 1: "prefetcht0", 2: "prefetcht1",
                 3: "prefetcht2"}
        return _mk(names[digit & 7], rm), None
    if opcode == 0x1F:
        _, rm = _modrm(cur, ctx, width)
        return _mk("nopw" if ctx.opsize else "nopl", rm), None
    if opcode == 0x31:
        return _mk("rdtsc"), None
    if opcode == 0xA2:
        return _mk("cpuid"), None
    if opcode == 0xAE:
        sub = cur.byte()
        return _mk({0xF0: "mfence", 0xE8: "lfence",
                    0xF8: "sfence"}[sub]), None

    if 0x40 <= opcode <= 0x4F:
        reg, rm = _modrm(cur, ctx, width)
        return _mk("cmov%s%s" % (CC_CANONICAL[opcode & 0xF],
                                 suffix_for_width(width)),
                   rm, RegisterOperand(ctx.reg(reg, width))), None
    if 0x80 <= opcode <= 0x8F:
        rel = _signed(cur.take(4))
        target = address + (cur.pos - start) + rel
        return (_mk("j" + CC_CANONICAL[opcode & 0xF],
                    _target_label(target)), target)
    if 0x90 <= opcode <= 0x9F:
        _, rm = _modrm(cur, ctx, 8)
        return _mk("set" + CC_CANONICAL[opcode & 0xF], rm), None

    if opcode == 0xAF:
        reg, rm = _modrm(cur, ctx, width)
        return _mk(_suffixed("imul", width), rm,
                   RegisterOperand(ctx.reg(reg, width))), None
    if opcode in (0xB6, 0xB7, 0xBE, 0xBF):
        src_w = 8 if opcode in (0xB6, 0xBE) else 16
        signed = opcode >= 0xBE
        reg, rm = _modrm(cur, ctx, src_w)
        dst_w = width
        name = ("movs" if signed else "movz") \
            + suffix_for_width(src_w) + suffix_for_width(dst_w)
        return _mk(name, rm,
                   RegisterOperand(ctx.reg(reg, dst_w))), None
    if 0xC8 <= opcode <= 0xCF:
        number = (opcode & 7) | ((ctx.rex & 1) << 3)
        return _mk(_suffixed("bswap", width),
                   RegisterOperand(gp_register(number, width))), None
    if opcode == 0xA3:
        reg, rm = _modrm(cur, ctx, width)
        return _mk(_suffixed("bt", width),
                   RegisterOperand(ctx.reg(reg, width)), rm), None

    # ---- SSE ---------------------------------------------------------------
    if opcode in (0x10, 0x11):
        if ctx.rep == 0xF3:
            name = "movss"
        elif ctx.rep == 0xF2:
            name = "movsd"
        else:
            name = "movups"
        reg, rm = _modrm(cur, ctx, 128, xmm_rm=True)
        xmm = RegisterOperand(ctx.xmm(reg))
        if opcode == 0x10:
            return _mk(name, rm, xmm), None
        return _mk(name, xmm, rm), None
    if opcode in (0x28, 0x29):
        reg, rm = _modrm(cur, ctx, 128, xmm_rm=True)
        xmm = RegisterOperand(ctx.xmm(reg))
        if opcode == 0x28:
            return _mk("movaps", rm, xmm), None
        return _mk("movaps", xmm, rm), None
    if opcode in (0x2E, 0x2F):
        name = ("ucomis" if opcode == 0x2E else "comis") \
            + ("d" if ctx.opsize else "s")
        reg, rm = _modrm(cur, ctx, 128, xmm_rm=True)
        return _mk(name, rm, RegisterOperand(ctx.xmm(reg))), None
    if opcode == 0x2A:
        name = "cvtsi2s" + ("s" if ctx.rep == 0xF3 else "d")
        if ctx.rex_w:
            name += "q"
        reg, rm = _modrm(cur, ctx, 64 if ctx.rex_w else 32)
        return _mk(name, rm, RegisterOperand(ctx.xmm(reg))), None
    if opcode == 0x2C:
        name = "cvtts" + ("s" if ctx.rep == 0xF3 else "d") + "2si"
        if ctx.rex_w:
            name += "q"
        reg, rm = _modrm(cur, ctx, 128, xmm_rm=True)
        return _mk(name, rm,
                   RegisterOperand(gp_register(
                       reg, 64 if ctx.rex_w else 32))), None
    if opcode == 0x5A:
        name = "cvtss2sd" if ctx.rep == 0xF3 else "cvtsd2ss"
        reg, rm = _modrm(cur, ctx, 128, xmm_rm=True)
        return _mk(name, rm, RegisterOperand(ctx.xmm(reg))), None
    if opcode in _SSE_ARITH_0F:
        suffix = "s" if ctx.rep == 0xF3 else "d"
        name = _SSE_ARITH_0F[opcode] + "s" + suffix
        reg, rm = _modrm(cur, ctx, 128, xmm_rm=True)
        return _mk(name, rm, RegisterOperand(ctx.xmm(reg))), None
    if opcode == 0x57:
        name = "xorpd" if ctx.opsize else "xorps"
        reg, rm = _modrm(cur, ctx, 128, xmm_rm=True)
        return _mk(name, rm, RegisterOperand(ctx.xmm(reg))), None
    if opcode == 0xEF:
        reg, rm = _modrm(cur, ctx, 128, xmm_rm=True)
        return _mk("pxor", rm, RegisterOperand(ctx.xmm(reg))), None
    if opcode == 0x6E:
        reg, rm = _modrm(cur, ctx, 64 if ctx.rex_w else 32)
        name = "movq" if ctx.rex_w else "movd"
        return _mk(name, rm, RegisterOperand(ctx.xmm(reg))), None
    if opcode == 0x7E:
        if ctx.rep == 0xF3:
            reg, rm = _modrm(cur, ctx, 128, xmm_rm=True)
            return _mk("movq", rm, RegisterOperand(ctx.xmm(reg))), None
        reg, rm = _modrm(cur, ctx, 64 if ctx.rex_w else 32)
        name = "movq" if ctx.rex_w else "movd"
        return _mk(name, RegisterOperand(ctx.xmm(reg)), rm), None

    raise DecodeError("unsupported 0F opcode %#x" % opcode)


def decode_all(data: bytes, base_address: int = 0) -> List[Decoded]:
    """Decode a flat code image into an instruction list."""
    decoded: List[Decoded] = []
    offset = 0
    while offset < len(data):
        item = decode_one(data, offset, base_address + offset)
        decoded.append(item)
        offset += item.length
    return decoded


def disassemble(data: bytes, base_address: int = 0) -> str:
    """Disassemble a code image to re-assemblable AT&T text."""
    decoded = decode_all(data, base_address)
    targets = {d.branch_target for d in decoded
               if d.branch_target is not None}
    lines = [".text"]
    for item in decoded:
        if item.address in targets:
            lines.append(".Laddr_%x:" % item.address)
        lines.append("    " + str(item.insn))
    return "\n".join(lines) + "\n"
