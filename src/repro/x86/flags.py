"""Condition-code (RFLAGS) modelling.

The paper stresses that MAO "precisely models the x86/64 condition codes",
which is what enables the redundant-test-removal pass.  This module defines
the individual flag bits, the 4-bit condition-code encodings used by
``jcc``/``setcc``/``cmovcc``, and the exact set of flags each condition
reads.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

# Individual arithmetic flags.
CF = "CF"
PF = "PF"
AF = "AF"
ZF = "ZF"
SF = "SF"
OF = "OF"
DF = "DF"

ALL_FLAGS: FrozenSet[str] = frozenset([CF, PF, AF, ZF, SF, OF])

#: Status flags whose value after ``test r, r`` equals their value after the
#: arithmetic instruction that produced ``r`` (for add/sub results these
#: three match; CF/OF generally do not).
RESULT_FLAGS: FrozenSet[str] = frozenset([ZF, SF, PF])

# Condition-code encodings (the low nibble of the 0F 8x / 0F 9x / 0F 4x
# opcodes).  Multiple mnemonic spellings share one encoding.
_CC_ENCODING: Dict[str, int] = {
    "o": 0x0, "no": 0x1,
    "b": 0x2, "c": 0x2, "nae": 0x2,
    "ae": 0x3, "nb": 0x3, "nc": 0x3,
    "e": 0x4, "z": 0x4,
    "ne": 0x5, "nz": 0x5,
    "be": 0x6, "na": 0x6,
    "a": 0x7, "nbe": 0x7,
    "s": 0x8, "ns": 0x9,
    "p": 0xA, "pe": 0xA,
    "np": 0xB, "po": 0xB,
    "l": 0xC, "nge": 0xC,
    "ge": 0xD, "nl": 0xD,
    "le": 0xE, "ng": 0xE,
    "g": 0xF, "nle": 0xF,
}

_CC_READS: Dict[int, FrozenSet[str]] = {
    0x0: frozenset([OF]), 0x1: frozenset([OF]),
    0x2: frozenset([CF]), 0x3: frozenset([CF]),
    0x4: frozenset([ZF]), 0x5: frozenset([ZF]),
    0x6: frozenset([CF, ZF]), 0x7: frozenset([CF, ZF]),
    0x8: frozenset([SF]), 0x9: frozenset([SF]),
    0xA: frozenset([PF]), 0xB: frozenset([PF]),
    0xC: frozenset([SF, OF]), 0xD: frozenset([SF, OF]),
    0xE: frozenset([ZF, SF, OF]), 0xF: frozenset([ZF, SF, OF]),
}

#: Canonical mnemonic spelling for each encoding (used by the printer).
CC_CANONICAL: Dict[int, str] = {
    0x0: "o", 0x1: "no", 0x2: "b", 0x3: "ae", 0x4: "e", 0x5: "ne",
    0x6: "be", 0x7: "a", 0x8: "s", 0x9: "ns", 0xA: "p", 0xB: "np",
    0xC: "l", 0xD: "ge", 0xE: "le", 0xF: "g",
}


def cc_encoding(cond: str) -> int:
    """The 4-bit encoding for a condition-code mnemonic suffix."""
    return _CC_ENCODING[cond]


def is_cc_suffix(cond: str) -> bool:
    return cond in _CC_ENCODING


def cc_flags_read(cond: str) -> FrozenSet[str]:
    """The exact set of RFLAGS bits a condition-code suffix reads."""
    return _CC_READS[_CC_ENCODING[cond]]


def cc_negate(cond: str) -> str:
    """Canonical spelling of the negated condition."""
    return CC_CANONICAL[_CC_ENCODING[cond] ^ 1]


def split_cc_mnemonic(mnemonic: str) -> Tuple[str, str]:
    """Split a cc-suffixed mnemonic into (prefix, cc), or raise ValueError.

    Handles ``j``, ``set``, ``cmov`` prefixes: ``jne`` -> (``j``, ``ne``),
    ``cmovle`` -> (``cmov``, ``le``).
    """
    for prefix in ("cmov", "set", "j"):
        if mnemonic.startswith(prefix):
            cond = mnemonic[len(prefix):]
            if is_cc_suffix(cond) and not (prefix == "j" and cond in ("mp",)):
                return prefix, cond
    raise ValueError("not a condition-code mnemonic: %r" % mnemonic)


def parity(value: int) -> bool:
    """PF: set when the low byte of *value* has even parity."""
    return bin(value & 0xFF).count("1") % 2 == 0
