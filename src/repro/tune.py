"""``repro.tune`` — the pass-pipeline autotuner.

MAO's value is picking the right micro-architectural pass sequence for an
input, but the classic surface makes the *caller* hand-write the spec.
This module searches the spec space per input instead: generate candidate
pipelines along several strategy paths, score each with the analytical
throughput predictor (:mod:`repro.uarch.static_model` — orders of
magnitude cheaper than simulation), optionally re-score the top few with
trace simulation for ground truth, and return the winning spec with a
scored leaderboard.

The control loop (multi-path candidate generation, ``n_select``
promotion, quality-based caching, early stop on a known bound) follows
the MoA HDL-generation exemplar with codegen swapped for pass
scheduling.  Three mechanisms keep it cheap:

* **Prefix-artifact caching.**  Every candidate is evaluated on a prefix
  trie: the unit optimized by ``[A, B]`` is materialized once and then
  extended to ``[A, B, C]`` and ``[A, B, D]`` with one pass run each,
  instead of re-running every candidate's full pipeline from the source.
  Materialized prefixes are also published to the persistent
  content-addressed :class:`~repro.batch.cache.ArtifactCache` under
  exactly the batch engine's key — ``sha256(salt || sha256(source) ||
  encode_pass_spec(prefix))`` — which is sound because a per-pass text
  round trip is byte-identical to a one-shot pipeline (the process pass
  backend already relies on this).  A warm re-tune therefore replays
  every prefix and executes **zero** pass runs, and a later batch run of
  the winning spec replays the tuner's artifact.

* **Beam search.**  After the seed paths (peephole-first,
  alignment-first, combined — each evaluated as a ladder of its own
  prefixes), only the ``n_select`` best candidates are extended by one
  more pass per round, bounded by ``max_rounds`` and a hard ``budget``
  of pass executions.

* **Early stopping.**  Tuning stops as soon as a candidate's predicted
  cycles reach the static lower bound — the max of the three predictor
  bounds with all removable stalls gone
  (:func:`repro.uarch.static_model.static_lower_bound`): no pipeline
  built from these passes can beat it, so further search is waste.

Determinism: candidate generation, admission, scoring, and every merge
happen in a fixed order on the coordinator; worker pools only execute
independent prefix materializations, so ``TuneResult.to_dict()`` is
byte-identical across ``jobs=1`` / ``jobs=4`` and the thread / process
backends (pinned by tests).

Entry points: :func:`repro.api.tune` (the facade), ``mao tune`` (CLI),
``POST /v1/tune`` (service + fleet, routed by input digest so tuner
traffic for one input lands on the worker whose cache holds its
prefixes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.result import ApiResult, register_schema

#: Schema of :meth:`TuneResult.to_dict`.
TUNE_SCHEMA = "pymao.tune/1"

#: Schema of the tuner benchmark document (BENCH_tune.json).
TUNE_BENCH_SCHEMA = register_schema("bench-tune", "mao-bench-tune/1")

#: The hand-written spec `mao` applies when nobody tunes — the
#: leaderboard always contains it, so the winner is never worse.
DEFAULT_SPEC = "REDTEST:LOOP16"

DEFAULT_BUDGET = 48
DEFAULT_N_SELECT = 3
DEFAULT_MAX_ROUNDS = 2

#: Seed strategy paths.  Each is evaluated as a *ladder*: every prefix of
#: the path is itself a candidate, so the trie shares all of them and the
#: path costs len(path) pass runs instead of O(len^2).
PEEPHOLE_PATH: Tuple[str, ...] = ("REDTEST", "NOPKILL", "ADDADD",
                                  "REDZEE", "REDMOV")
ALIGNMENT_PATH: Tuple[str, ...] = ("LOOP16", "LSDFIT", "SCHED", "BRALIGN")
COMBINED_PATH: Tuple[str, ...] = ("REDTEST", "LOOP16", "LSDFIT",
                                  "NOPKILL", "SCHED")

#: Pool of single steps beam rounds may append to a promoted candidate.
BEAM_STEPS: Tuple[str, ...] = ("REDTEST", "NOPKILL", "ADDADD", "REDZEE",
                               "REDMOV", "LOOP16", "LSDFIT", "SCHED",
                               "BRALIGN")

#: Slack for the lower-bound comparison (pure float noise).
_EPSILON = 1e-9

Spec = Tuple[Tuple[str, Dict[str, Any]], ...]


class TuneError(ValueError):
    """The input cannot be tuned (unparsable, no analyzable function,
    bad search parameters)."""


def _spec_of(names) -> Spec:
    return tuple((name, {}) for name in names)


def _encode(spec: Spec) -> str:
    from repro.passes.manager import encode_pass_spec

    return encode_pass_spec(list(spec))


def _canonical(spec: Spec) -> str:
    from repro.passes.manager import canonical_pass_spec

    return canonical_pass_spec(list(spec))


def _step_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Materialize one prefix-trie node: run a single pass over the
    parent's emitted assembly.

    Top-level and picklable (the process backend ships it across
    ``ProcessPoolExecutor``), never raises, plain dicts in and out —
    the same contract as the batch and server workers.  The text round
    trip (parse parent asm, run, re-emit) makes thread and process
    results byte-identical by construction.
    """
    import repro.passes  # noqa: F401 — register built-ins in spawned children
    from repro import api

    try:
        name, options = payload["step"]
        result = api.optimize(payload["asm"], [(name, dict(options))])
        return {"status": "ok",
                "asm": result.unit.to_asm(),
                "reports": [r.to_dict() for r in result.pipeline.reports]}
    except Exception as exc:  # parse errors, pass failures
        return {"status": "error", "kind": type(exc).__name__,
                "error": "%s: %s" % (type(exc).__name__, exc)}


@dataclass
class _Candidate:
    """One candidate pipeline moving through the search."""

    spec: Spec
    origin: str                    # strategy path that proposed it
    prediction: Any = None         # Prediction once scored
    sim_cycles: Optional[int] = None
    error: Optional[str] = None

    @property
    def encoding(self) -> str:
        return _encode(self.spec)

    @property
    def canonical(self) -> str:
        return _canonical(self.spec)

    def sort_key(self):
        # Ranking score first (lower is better), canonical spec as the
        # total-order tiebreak so equal predictions rank deterministically
        # (shorter spec wins the string compare over its extensions).
        return self.prediction.ranking_score() + (self.canonical,)


class _PrefixEvaluator:
    """The prefix trie: materialized ``spec prefix -> emitted asm``.

    Admission (which nodes a candidate needs, what the disk cache
    already holds, what fits the budget) runs serially on the
    coordinator so it is deterministic; only the independent pass runs
    of one trie depth fan out across the worker pool.
    """

    def __init__(self, source: str, cache, jobs: int,
                 parallel_backend: str) -> None:
        from repro.batch.cache import source_sha256

        self.source = source
        self.source_sha = source_sha256(source)
        self.cache = cache
        self.jobs = max(1, int(jobs))
        self.parallel_backend = parallel_backend
        self._pool = None
        root = _encode(())
        self._asm: Dict[str, str] = {root: source}
        self._reports: Dict[str, List[Dict[str, Any]]] = {root: []}
        self._failed: Dict[str, str] = {}
        self.executed = 0          # pass runs actually performed
        self.cache_hits = 0        # prefixes replayed from the disk cache

    # -- pool ---------------------------------------------------------------

    def _map(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        if self.jobs <= 1 or len(payloads) <= 1:
            return [_step_worker(p) for p in payloads]
        if self._pool is None:
            import concurrent.futures as futures

            if self.parallel_backend == "process":
                self._pool = futures.ProcessPoolExecutor(
                    max_workers=self.jobs)
            else:
                self._pool = futures.ThreadPoolExecutor(
                    max_workers=self.jobs)
        return list(self._pool.map(_step_worker, payloads))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # -- cache --------------------------------------------------------------

    def _cache_key(self, encoding: str) -> str:
        return self.cache.key_for(self.source, encoding)

    def _load_from_cache(self, encoding: str) -> bool:
        if self.cache is None:
            return False
        hit = self.cache.get(self._cache_key(encoding))
        if hit is None:
            return False
        reports = (hit.pipeline or {}).get("reports")
        self._asm[encoding] = hit.asm
        self._reports[encoding] = list(reports) \
            if isinstance(reports, list) else []
        self.cache_hits += 1
        obs.REGISTRY.inc("tune.cache_hits")
        return True

    # -- admission + execution ----------------------------------------------

    def run_batch(self, candidates: List[_Candidate],
                  budget_left: int) -> Tuple[List[_Candidate], bool]:
        """Admit *candidates* in order while their new trie nodes fit
        *budget_left*, materialize the missing nodes depth wave by depth
        wave, and return ``(admitted, budget_exhausted)``."""
        admitted: List[_Candidate] = []
        plan: Dict[str, Tuple[int, str, Tuple[str, Dict[str, Any]], Spec]] \
            = {}
        exhausted = False
        for cand in candidates:
            new_nodes = []
            prefix: Spec = ()
            parent_enc = _encode(())
            for step in cand.spec:
                prefix = prefix + (step,)
                enc = _encode(prefix)
                if enc not in self._asm and enc not in plan \
                        and enc not in self._failed \
                        and not self._load_from_cache(enc):
                    new_nodes.append((enc, (len(prefix), parent_enc,
                                            step, prefix)))
                parent_enc = enc
            if len(plan) + len(new_nodes) > budget_left:
                exhausted = True
                break
            for enc, node in new_nodes:
                plan[enc] = node
            admitted.append(cand)

        by_depth: Dict[int, List[Tuple[str, str, Tuple[str, Dict[str, Any]],
                                       Spec]]] = {}
        for enc, (depth, parent_enc, step, prefix) in plan.items():
            by_depth.setdefault(depth, []).append((enc, parent_enc, step,
                                                   prefix))
        for depth in sorted(by_depth):
            wave = [row for row in by_depth[depth]
                    if self._propagate_failure(row[0], row[1])]
            payloads = [{"asm": self._asm[parent_enc],
                         "step": [step[0], step[1]]}
                        for _enc, parent_enc, step, _prefix in wave]
            outcomes = self._map(payloads)
            for (enc, parent_enc, step, prefix), out in zip(wave, outcomes):
                if out["status"] != "ok":
                    self._failed[enc] = out["error"]
                    continue
                self.executed += 1
                obs.REGISTRY.inc("tune.pass_runs")
                self._asm[enc] = out["asm"]
                reports = self._reports[parent_enc] + list(out["reports"])
                self._reports[enc] = reports
                if self.cache is not None:
                    from repro.passes.manager import PIPELINE_SCHEMA

                    self.cache.put(self._cache_key(enc), out["asm"],
                                   {"schema": PIPELINE_SCHEMA,
                                    "reports": reports},
                                   source_sha=self.source_sha,
                                   spec=_canonical(prefix))
        return admitted, exhausted

    def _propagate_failure(self, enc: str, parent_enc: str) -> bool:
        """Skip a planned node whose parent failed; keep the error."""
        if parent_enc in self._failed:
            self._failed[enc] = self._failed[parent_enc]
            return False
        return True

    # -- lookups ------------------------------------------------------------

    def asm_for(self, spec: Spec) -> Optional[str]:
        return self._asm.get(_encode(spec))

    def failure_for(self, spec: Spec) -> Optional[str]:
        return self._failed.get(_encode(spec))

    def pipeline_doc(self, spec: Spec) -> Dict[str, Any]:
        from repro.passes.manager import PIPELINE_SCHEMA

        return {"schema": PIPELINE_SCHEMA,
                "reports": list(self._reports.get(_encode(spec), []))}


@dataclass
class TuneResult(ApiResult):
    """Outcome of one :func:`tune` call.

    ``to_dict()`` is the versioned ``pymao.tune/1`` document:
    deterministic for a given (source, core, search parameters, cache
    state) regardless of ``jobs`` or backend; wall-clock timings only
    with ``timings=True``.  ``asm`` (the winning emitted assembly) rides
    as an attribute, not in the document — the server envelope carries
    it as its own field, like ``/v1/optimize`` does.
    """

    SCHEMA = TUNE_SCHEMA

    model_name: str
    source_sha256: str
    function: Optional[str]
    default_spec: str
    budget: int
    n_select: int
    max_rounds: int
    rounds: int
    winner: Dict[str, Any]
    leaderboard: List[Dict[str, Any]] = field(default_factory=list)
    candidates: Dict[str, int] = field(default_factory=dict)
    pass_runs: Dict[str, int] = field(default_factory=dict)
    early_stop: Dict[str, Any] = field(default_factory=dict)
    asm: str = ""
    elapsed_s: float = 0.0

    @property
    def winner_spec(self) -> str:
        """The winning spec as a canonical ``--mao=`` string."""
        return self.winner["spec"]

    @property
    def winner_items(self) -> List[Tuple[str, Dict[str, Any]]]:
        """The winning spec as ``(name, options)`` items."""
        return [(name, dict(options))
                for name, options in self.winner["items"]]

    @property
    def winner_cycles(self) -> float:
        """Predicted cycles/iteration of the winning spec."""
        return self.winner["cycles"]

    def to_dict(self, timings: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema": TUNE_SCHEMA,
            "model": self.model_name,
            "source_sha256": self.source_sha256,
            "function": self.function,
            "default_spec": self.default_spec,
            "budget": self.budget,
            "n_select": self.n_select,
            "max_rounds": self.max_rounds,
            "rounds": self.rounds,
            "winner": dict(self.winner),
            "leaderboard": [dict(row) for row in self.leaderboard],
            "candidates": dict(self.candidates),
            "pass_runs": dict(self.pass_runs),
            "early_stop": dict(self.early_stop),
        }
        if timings:
            data["timings"] = {"elapsed_s": round(self.elapsed_s, 6)}
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneResult":
        cls.check_schema(data)
        timings = data.get("timings") or {}
        return cls(model_name=data["model"],
                   source_sha256=data.get("source_sha256", ""),
                   function=data.get("function"),
                   default_spec=data.get("default_spec", DEFAULT_SPEC),
                   budget=int(data.get("budget", 0)),
                   n_select=int(data.get("n_select", 0)),
                   max_rounds=int(data.get("max_rounds", 0)),
                   rounds=int(data.get("rounds", 0)),
                   winner=dict(data["winner"]),
                   leaderboard=[dict(row)
                                for row in data.get("leaderboard", ())],
                   candidates=dict(data.get("candidates", {})),
                   pass_runs=dict(data.get("pass_runs", {})),
                   early_stop=dict(data.get("early_stop", {})),
                   elapsed_s=float(timings.get("elapsed_s", 0.0)))

    def explain(self) -> str:
        """Human-readable leaderboard + search summary (``--explain``)."""
        lines = []
        lines.append("tune on %s (function %s): %d candidates scored, "
                     "%d rounds"
                     % (self.model_name, self.function or "<first>",
                        self.candidates.get("scored", 0), self.rounds))
        lines.append("  winner %s: %.2f cycles/iteration (%s)"
                     % (self.winner["spec"] or "<no passes>",
                        self.winner["cycles"], self.winner["origin"]))
        stop = self.early_stop
        lines.append("  stop: %s (lower bound %.2f, best %.2f)"
                     % (stop.get("reason"), stop.get("lower_bound", 0.0),
                        stop.get("best_cycles", 0.0)))
        runs = self.pass_runs
        lines.append("  pass runs: %d executed, %d cache replays, "
                     "%d of %d naive steps saved"
                     % (runs.get("executed", 0), runs.get("cache_hits", 0),
                        runs.get("saved", 0), runs.get("total_steps", 0)))
        lines.append("leaderboard (predicted cycles/iteration):")
        for row in self.leaderboard:
            sim = "  sim=%d" % row["sim_cycles"] \
                if row.get("sim_cycles") is not None else ""
            lines.append("  %8.2f  %-12s %s%s"
                         % (row["cycles"], row["origin"],
                            row["spec"] or "<no passes>", sim))
        return "\n".join(lines)


def seed_candidates(default_spec: str = DEFAULT_SPEC) -> List[_Candidate]:
    """The deterministic seed set: baseline, the default spec, and the
    prefix ladder of every strategy path (first origin wins dedup)."""
    from repro.passes.manager import parse_pass_spec

    out: List[_Candidate] = []
    seen = set()

    def add(spec: Spec, origin: str) -> None:
        enc = _encode(spec)
        if enc not in seen:
            seen.add(enc)
            out.append(_Candidate(spec=spec, origin=origin))

    add((), "baseline")
    add(tuple((name, dict(options))
              for name, options in parse_pass_spec(default_spec)), "default")
    for origin, path in (("peephole-first", PEEPHOLE_PATH),
                         ("alignment-first", ALIGNMENT_PATH),
                         ("combined", COMBINED_PATH)):
        for depth in range(1, len(path) + 1):
            add(_spec_of(path[:depth]), origin)
    return out


def _beam_extensions(promoted: List[_Candidate],
                     seen: set) -> List[_Candidate]:
    """One new step appended to each promoted candidate, skipping steps
    already in its spec and specs already generated."""
    out: List[_Candidate] = []
    for cand in promoted:
        used = {name for name, _options in cand.spec}
        for name in BEAM_STEPS:
            if name in used:
                continue
            spec = cand.spec + ((name, {}),)
            enc = _encode(spec)
            if enc in seen:
                continue
            seen.add(enc)
            out.append(_Candidate(spec=spec, origin="beam"))
    return out


def tune(source: str, core, *,
         function: Optional[str] = None,
         budget: int = DEFAULT_BUDGET,
         n_select: int = DEFAULT_N_SELECT,
         max_rounds: int = DEFAULT_MAX_ROUNDS,
         simulate_top: int = 0,
         jobs: int = 1,
         parallel_backend: str = "thread",
         cache=None,
         default_spec: str = DEFAULT_SPEC,
         entry_symbol: str = "main",
         max_steps: int = 5_000_000) -> TuneResult:
    """Search the pass-spec space for *source* on *core*.

    *cache* is an optional :class:`~repro.batch.cache.ArtifactCache`
    instance; when given, every materialized prefix is published to it
    (and replayed from it), so a warm re-tune executes zero pass runs.
    ``simulate_top > 0`` re-scores that many leaders with full trace
    simulation; the winner is then picked by simulated cycles.

    Raises :class:`TuneError` for bad search parameters or inputs the
    predictor cannot analyze.
    """
    from repro.uarch import static_model
    from repro.uarch.model import ProcessorModel

    if budget < 0:
        raise TuneError("budget must be >= 0")
    if n_select < 1:
        raise TuneError("n_select must be >= 1")
    if max_rounds < 0:
        raise TuneError("max_rounds must be >= 0")
    if parallel_backend not in ("thread", "process"):
        raise TuneError("unknown parallel backend %r "
                        "(expected 'thread' or 'process')"
                        % (parallel_backend,))
    if not isinstance(source, str):
        raise TuneError("tune() needs source text (got %s)"
                        % type(source).__name__)

    if isinstance(core, ProcessorModel):
        model = core
    else:
        from repro.uarch import tables

        try:
            model = tables.resolve_core(core)
        except tables.ProfileError as exc:
            raise TuneError(str(exc)) from exc

    start = time.perf_counter()
    obs.REGISTRY.inc("tune.requests")
    with obs.span("tune", model=model.name, budget=budget,
                  n_select=n_select) as root:
        try:
            from repro.ir import parse_unit

            unit = parse_unit(source)
            baseline_prediction = static_model.predict_unit(
                unit, model, function=function)
            lower_bound = static_model.static_lower_bound(
                unit, model, function=function)
        except (static_model.PredictError, ValueError) as exc:
            raise TuneError("cannot tune input: %s" % exc)

        evaluator = _PrefixEvaluator(source, cache, jobs, parallel_backend)
        scored: List[_Candidate] = []
        failed: List[_Candidate] = []
        rounds_run = 0
        stop_reason = None
        # Naive cost of the candidate set: what exhaustive enumeration
        # (every generated candidate's full pipeline re-run from the
        # source, no prefix sharing, no early stop) would execute.  The
        # ratio against `executed` is the bench's efficiency gate.
        generated = 1
        naive_steps = 0

        baseline = _Candidate(spec=(), origin="baseline")
        baseline.prediction = baseline_prediction
        scored.append(baseline)

        def best() -> _Candidate:
            return min(scored, key=_Candidate.sort_key)

        def hit_lower_bound() -> bool:
            return best().prediction.cycles <= lower_bound + _EPSILON

        try:
            seen = {baseline.encoding}
            batch = [c for c in seed_candidates(default_spec)
                     if c.encoding not in seen]
            seen.update(c.encoding for c in batch)
            generated += len(batch)
            naive_steps += sum(len(c.spec) for c in batch)
            while True:
                if hit_lower_bound():
                    stop_reason = "lower_bound"
                    break
                admitted, exhausted = evaluator.run_batch(
                    batch, budget - evaluator.executed)
                for cand in admitted:
                    error = evaluator.failure_for(cand.spec)
                    if error is not None:
                        cand.error = error
                        failed.append(cand)
                        continue
                    asm = evaluator.asm_for(cand.spec)
                    try:
                        cand.prediction = static_model.predict(
                            asm, model, function=function)
                    except (static_model.PredictError, ValueError) as exc:
                        cand.error = "%s: %s" % (type(exc).__name__, exc)
                        failed.append(cand)
                        continue
                    scored.append(cand)
                if hit_lower_bound():
                    stop_reason = "lower_bound"
                    break
                if exhausted:
                    stop_reason = "budget"
                    break
                if rounds_run >= max_rounds:
                    stop_reason = "rounds"
                    break
                rounds_run += 1
                ranked = sorted(scored, key=_Candidate.sort_key)
                batch = _beam_extensions(ranked[:n_select], seen)
                if not batch:
                    stop_reason = "exhausted"
                    break
                generated += len(batch)
                naive_steps += sum(len(c.spec) for c in batch)
        finally:
            evaluator.close()

        ranked = sorted(scored, key=_Candidate.sort_key)
        if simulate_top > 0:
            _simulate_rescore(ranked[:simulate_top], evaluator, model,
                              entry_symbol, max_steps)
            sim_scored = [c for c in ranked if c.sim_cycles is not None]
            winner = min(sim_scored,
                         key=lambda c: (c.sim_cycles,) + c.sort_key()) \
                if sim_scored else ranked[0]
        else:
            winner = ranked[0]

        if stop_reason == "lower_bound":
            obs.REGISTRY.inc("tune.early_stops")
        obs.REGISTRY.inc("tune.candidates", len(scored))
        obs.REGISTRY.observe("tune.seconds", time.perf_counter() - start)

        saved = naive_steps - evaluator.executed - evaluator.cache_hits
        result = TuneResult(
            model_name=model.name,
            source_sha256=evaluator.source_sha,
            function=function,
            default_spec=default_spec,
            budget=budget,
            n_select=n_select,
            max_rounds=max_rounds,
            rounds=rounds_run,
            winner=_winner_row(winner, evaluator),
            leaderboard=[_leaderboard_row(c) for c in ranked],
            candidates={"generated": generated,
                        "scored": len(scored),
                        "failed": len(failed),
                        "skipped": generated - len(scored) - len(failed)},
            pass_runs={"executed": evaluator.executed,
                       "cache_hits": evaluator.cache_hits,
                       "total_steps": naive_steps,
                       "saved": max(0, saved)},
            early_stop={"reason": stop_reason,
                        "lower_bound": round(lower_bound, 4),
                        "best_cycles": round(
                            winner.prediction.cycles, 4)},
            asm=evaluator.asm_for(winner.spec) or source,
            elapsed_s=time.perf_counter() - start,
        )
        if root:
            root.attach(winner=result.winner_spec,
                        cycles=result.winner["cycles"],
                        rounds=rounds_run,
                        executed=evaluator.executed,
                        stop=stop_reason)
    return result


def _simulate_rescore(leaders: List[_Candidate], evaluator: _PrefixEvaluator,
                      model, entry_symbol: str, max_steps: int) -> None:
    """Ground-truth re-scoring: run the trace simulator over each
    leader's emitted assembly.  Failures (no entry symbol, step cap) are
    recorded, not raised — prediction order already ranked them."""
    from repro import api

    for cand in leaders:
        asm = evaluator.asm_for(cand.spec)
        if asm is None:
            continue
        try:
            sim = api.simulate(asm, model, entry_symbol=entry_symbol,
                               max_steps=max_steps)
            cand.sim_cycles = sim.cycles
        except Exception as exc:
            cand.error = "simulate: %s: %s" % (type(exc).__name__, exc)


def _leaderboard_row(cand: _Candidate) -> Dict[str, Any]:
    prediction = cand.prediction
    row: Dict[str, Any] = {
        "spec": cand.canonical,
        "origin": cand.origin,
        "cycles": round(prediction.cycles, 4),
        "ranking": [round(v, 4) for v in prediction.ranking_score()],
        "bottleneck": prediction.bottleneck,
        "sim_cycles": cand.sim_cycles,
    }
    return row


def _winner_row(cand: _Candidate, evaluator: _PrefixEvaluator
                ) -> Dict[str, Any]:
    row = _leaderboard_row(cand)
    row["items"] = [[name, {k: str(v) for k, v in options.items()}]
                    for name, options in cand.spec]
    row["pipeline"] = evaluator.pipeline_doc(cand.spec)
    return row
