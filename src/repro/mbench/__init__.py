"""Micro-architectural parameter-detection framework (paper §IV).

The paper ships this framework as Python classes — Processor, Instruction,
InstructionSequence, Loop, Benchmark — to "simplify the creation and
execution of microbenchmarks"; this package mirrors that API exactly
(compare Fig. 6's ``InstructionLatency`` with
:func:`repro.mbench.detect.InstructionLatency`).

The paper executes the generated microbenchmarks "on a host with the
specified target processor in isolation"; here they run on the
``repro.uarch`` timing model, whose parameters can be *blinded* so the
detection really infers them from measurements.
"""

from repro.mbench.processor import Processor
from repro.mbench.instruction import InstructionTemplate
from repro.mbench.sequence import DagType, InstructionSequence
from repro.mbench.loop import Loop, LoopList, StraightLineLoop
from repro.mbench.benchmark import Benchmark
from repro.mbench import detect

__all__ = [
    "Processor",
    "InstructionTemplate",
    "DagType",
    "InstructionSequence",
    "Loop",
    "LoopList",
    "StraightLineLoop",
    "Benchmark",
    "detect",
]
