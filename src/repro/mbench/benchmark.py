"""The Benchmark class (paper §IV.e).

"This class is used to construct an assembly program from the specified
loops, assemble the program, execute the program on a target architecture
in isolation and collect any specified PMU counters."

Assembly and execution go through the in-repo toolchain: parse ->
relax/encode -> architectural interpretation -> uarch timing model.

Detection sweeps (``repro.mbench.detect``) evaluate the same kernel text at
many parameter values, and many of those parameter values re-emit identical
programs; a bounded program cache keyed by source text reuses one loaded
program (parse + relax + load done once) across sweep points.  Each
execution runs against a private clone of the program's memory image, so
reuse is invisible to results — a property the detection tests assert.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence

from repro.ir import parse_unit
from repro.mbench.loop import LoopList
from repro.mbench.processor import Processor
from repro.sim.loader import LoadedProgram, load_unit
from repro.uarch.pipeline import simulate_program

_PROGRAM_CACHE: "OrderedDict[tuple, LoadedProgram]" = OrderedDict()
_PROGRAM_CACHE_MAX = 256
_PROGRAM_CACHE_STATS = {"hits": 0, "misses": 0}


def load_program_cached(source: str,
                        entry_symbol: str = "main") -> LoadedProgram:
    """Parse/relax/load *source* once; later calls reuse the program.

    Sound because a LoadedProgram's code image and symbol table are
    immutable — only its memory mutates during execution, and cached
    programs are always run with a private memory clone.
    """
    key = (entry_symbol, source)
    program = _PROGRAM_CACHE.get(key)
    if program is not None:
        _PROGRAM_CACHE.move_to_end(key)
        _PROGRAM_CACHE_STATS["hits"] += 1
        return program
    _PROGRAM_CACHE_STATS["misses"] += 1
    program = load_unit(parse_unit(source), entry_symbol)
    _PROGRAM_CACHE[key] = program
    while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_MAX:
        _PROGRAM_CACHE.popitem(last=False)
    return program


def program_cache_stats() -> Dict[str, object]:
    stats: Dict[str, object] = dict(_PROGRAM_CACHE_STATS)
    stats["entries"] = len(_PROGRAM_CACHE)
    lookups = stats["hits"] + stats["misses"]
    stats["hit_rate"] = (stats["hits"] / lookups) if lookups else 0.0
    return stats


def reset_program_cache() -> None:
    _PROGRAM_CACHE.clear()
    _PROGRAM_CACHE_STATS["hits"] = 0
    _PROGRAM_CACHE_STATS["misses"] = 0


class Benchmark:
    """Build, run, and measure one microbenchmark program."""

    def __init__(self, loop_list: LoopList) -> None:
        self.loop_list = loop_list
        self.source: Optional[str] = None
        self.last_steps = 0

    def Assemble(self) -> str:
        self.source = self.loop_list.emit_program()
        return self.source

    def Execute(self, proc: Processor,
                counter_names: Sequence[str],
                max_steps: int = 2_000_000) -> Dict[str, int]:
        """Run the benchmark on *proc*'s model; returns the counters."""
        from repro import obs

        with obs.span("mbench", model=proc.model.name) as span:
            if self.source is None:
                self.Assemble()
            program = load_program_cached(self.source)
            result, stats = simulate_program(program, proc.model,
                                             max_steps=max_steps,
                                             private_memory=True)
            if result.reason != "ret":
                raise RuntimeError("microbenchmark did not finish: %s"
                                   % result.reason)
            self.last_steps = result.steps
            obs.REGISTRY.inc("mbench.executions")
            if span:
                span.attach(steps=result.steps,
                            counters={n: stats[n] for n in counter_names})
        return {name: stats[name] for name in counter_names}
