"""The Benchmark class (paper §IV.e).

"This class is used to construct an assembly program from the specified
loops, assemble the program, execute the program on a target architecture
in isolation and collect any specified PMU counters."

Assembly and execution go through the in-repo toolchain: parse ->
relax/encode -> architectural interpretation -> uarch timing model.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.ir import parse_unit
from repro.mbench.loop import LoopList
from repro.mbench.processor import Processor
from repro.sim import run_unit
from repro.uarch.pipeline import simulate_trace


class Benchmark:
    """Build, run, and measure one microbenchmark program."""

    def __init__(self, loop_list: LoopList) -> None:
        self.loop_list = loop_list
        self.source: Optional[str] = None
        self.last_steps = 0

    def Assemble(self) -> str:
        self.source = self.loop_list.emit_program()
        return self.source

    def Execute(self, proc: Processor,
                counter_names: Sequence[str],
                max_steps: int = 2_000_000) -> Dict[str, int]:
        """Run the benchmark on *proc*'s model; returns the counters."""
        if self.source is None:
            self.Assemble()
        unit = parse_unit(self.source)
        result = run_unit(unit, collect_trace=True, max_steps=max_steps)
        if result.reason != "ret":
            raise RuntimeError("microbenchmark did not finish: %s"
                               % result.reason)
        self.last_steps = result.steps
        stats = simulate_trace(result.trace, proc.model)
        return {name: stats[name] for name in counter_names}
