"""InstructionSequence (paper §IV.c).

"This class encapsulates an acyclic sequence of instructions.  A sequence
is specified by the set of candidate instructions that can appear in the
sequence and the dependencies among the instructions ...  The supported
types include CHAIN (each instruction in the sequence has a RAW dependence
on the previous instruction), CYCLE (a CHAIN where the first instruction
depends on the last), RANDOM (arbitrary dependencies between instructions)
and DISJOINT (each instruction is independent of other).  The
InstructionSequence class generates a random sequence satisfying the
specified constraints."
"""

from __future__ import annotations

import random
from enum import Enum
from typing import List, Optional

from repro.mbench.instruction import InstructionTemplate
from repro.mbench.processor import Processor


class DagType(Enum):
    CHAIN = "chain"
    CYCLE = "cycle"
    RANDOM = "random"
    DISJOINT = "disjoint"


class InstructionSequence:
    """Generates a concrete instruction list obeying a dependence shape."""

    def __init__(self, proc: Processor,
                 length: int = 8, seed: Optional[int] = None) -> None:
        self.proc = proc
        self.length = length
        self.templates: List[InstructionTemplate] = []
        self.dag_type = DagType.DISJOINT
        self.rng = random.Random(proc.seed if seed is None else seed)
        self.instructions: List[str] = []

    # -- paper API -----------------------------------------------------------

    def SetInstructionTemplate(self, template) -> None:
        if isinstance(template, str):
            template = InstructionTemplate(template)
        self.templates = [template]

    def SetCandidateTemplates(self, templates) -> None:
        self.templates = [
            InstructionTemplate(t) if isinstance(t, str) else t
            for t in templates]

    def SetDagType(self, dag_type: DagType) -> None:
        self.dag_type = dag_type

    def SetLength(self, length: int) -> None:
        self.length = length

    def Generate(self) -> List[str]:
        """Build the instruction strings for the requested dependence DAG."""
        if not self.templates:
            raise ValueError("no instruction templates set")
        registers = self._register_pool()
        instructions: List[str] = []
        prev_dest: Optional[str] = None
        first_dest: Optional[str] = None
        dests: List[str] = []

        for i in range(self.length):
            template = self.rng.choice(self.templates)
            last = i == self.length - 1
            if self.dag_type == DagType.CHAIN:
                src = prev_dest
                dest = self._pick(registers, avoid=None)
            elif self.dag_type == DagType.CYCLE:
                src = prev_dest
                # Close the cycle: the last instruction writes the first
                # source; with one register per link, reuse dest = the
                # chain register so the loop-carried dependence is real.
                dest = first_dest if last and first_dest else \
                    self._pick(registers, avoid=None)
            elif self.dag_type == DagType.RANDOM:
                src = self.rng.choice(dests) if dests \
                    and self.rng.random() < 0.7 else None
                dest = self._pick(registers, avoid=None)
            else:  # DISJOINT
                # Each instruction works on its own register so the
                # sequence members are mutually independent.
                dest = registers[i % len(registers)]
                src = dest
            text = self._instantiate(template, src, dest, registers)
            instructions.append(text)
            prev_dest = dest
            if first_dest is None:
                first_dest = dest
            dests.append(dest)

        if self.dag_type == DagType.CYCLE and self.length >= 1:
            # Make the first instruction consume the last destination so
            # iterations serialize (the Fig. 6 latency pattern).
            template = self.templates[0]
            instructions[0] = self._instantiate(
                template, prev_dest, first_dest, registers)
        self.instructions = instructions
        return instructions

    # -- helpers -----------------------------------------------------------------

    def _register_pool(self) -> List[str]:
        width = self.templates[0].width
        if any("%x" in t.placeholders for t in self.templates):
            return [r for r in self.proc.xmm_registers][:12]
        return self.proc.scratch_registers(width)[:12]

    def _pick(self, registers: List[str], avoid: Optional[str]) -> str:
        choices = [r for r in registers if r != avoid]
        return self.rng.choice(choices)

    def _instantiate(self, template: InstructionTemplate,
                     src: Optional[str], dest: str,
                     registers: List[str]) -> str:
        operands: List[str] = []
        slots = template.placeholders
        for index, slot in enumerate(slots):
            is_dest_slot = index == len(slots) - 1
            if slot in ("%r", "%x"):
                if is_dest_slot:
                    operands.append("%" + dest)
                elif src is not None:
                    operands.append("%" + src)
                else:
                    operands.append("%" + self._pick(registers, dest))
            elif slot == "$i":
                operands.append("$%d" % self.rng.randint(1, 100))
            elif slot == "%m":
                operands.append("0(%r15)")   # scratch buffer pointer
        return template.instantiate(operands)
