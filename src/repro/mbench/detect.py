"""Parameter-detection experiments (paper §IV and §IV.A).

:func:`InstructionLatency` is a line-for-line port of the paper's Fig. 6.
The other detectors realize the section's goal — "to discover
micro-architectural features ... semi-automatically" — against a possibly
*blinded* processor model: they only look at PMU counters, never at the
model's fields.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mbench import loop, sequence as insseq
from repro.mbench.benchmark import Benchmark
from repro.mbench.loop import LoopList, StraightLineLoop
from repro.mbench.processor import Processor
from repro.mbench.sequence import DagType, InstructionSequence


def InstructionLatency(proc: Processor, template: str,
                       length: int = 8, trip_count: int = 2000) -> int:
    """Determine an instruction's latency (paper Fig. 6, verbatim shape).

    Form a loop with a cycle of instructions, one dependent on the other.
    Execute the chain, collect CPU cycles and obtain the latency.
    """
    seq = insseq.InstructionSequence(proc, length=length)
    seq.SetInstructionTemplate(template)
    seq.SetDagType(insseq.DagType.CYCLE)
    seq.Generate()
    loop_list = loop.LoopList(
        [loop.StraightLineLoop([seq], proc, trip_count=trip_count)])
    bench = Benchmark(loop_list)
    results = bench.Execute(proc, [proc.CPU_CYCLES])
    insns_in_loop = loop_list.NumDynamicInstructions()
    latency = round(float(results[proc.CPU_CYCLES]) / insns_in_loop)
    return latency


def InstructionThroughput(proc: Processor, template: str,
                          length: int = 12,
                          trip_count: int = 2000) -> float:
    """Reciprocal throughput: independent copies of one instruction."""
    seq = InstructionSequence(proc, length=length)
    seq.SetInstructionTemplate(template)
    seq.SetDagType(DagType.DISJOINT)
    seq.Generate()
    loop_list = LoopList([StraightLineLoop([seq], proc,
                                           trip_count=trip_count)])
    bench = Benchmark(loop_list)
    results = bench.Execute(proc, [proc.CPU_CYCLES])
    return results[proc.CPU_CYCLES] / loop_list.NumDynamicInstructions()


def _alignment_cycle_profile(proc: Processor, offsets: range,
                             trip_count: int = 24) -> List[float]:
    """Per-iteration cycles of a decode-bound loop at varying alignments.

    The body is made of wide multi-byte NOPs: they occupy decode slots but
    no execution ports and forward no results, so the loop's speed is set
    purely by how many fetch lines the body spans.  The trip count stays
    below any plausible LSD engagement threshold, and running each layout
    at two trip counts and differencing removes the prologue's cost.
    """
    def run(offset: int, trips: int) -> int:
        seq = InstructionSequence(proc, length=6)
        seq.SetInstructionTemplate("nopl 128(%rax,%rax,1)")  # 8 bytes
        seq.SetDagType(DagType.DISJOINT)
        seq.Generate()
        inner = StraightLineLoop([seq], proc, trip_count=trips)
        inner.pre_alignment_nops = offset
        bench = Benchmark(LoopList([inner]))
        return bench.Execute(proc, [proc.CPU_CYCLES])[proc.CPU_CYCLES]

    cycles: List[float] = []
    for offset in offsets:
        low = run(offset, trip_count)
        high = run(offset, trip_count * 2)
        cycles.append((high - low) / trip_count)
    return cycles


def DetectDecodeLineSize(proc: Processor,
                         max_line: int = 64) -> int:
    """Infer the decode-line size from the period of alignment effects.

    A short decode-bound loop is slid byte-by-byte through memory; its
    cycle count varies cyclically with the starting offset, and the period
    of that variation is the fetch-line size.
    """
    profile = _alignment_cycle_profile(proc, range(0, max_line))
    best_period = max_line
    for period in (8, 16, 32, 64):
        if period > len(profile):
            break
        ok = all(profile[i] == profile[i - period]
                 for i in range(period, len(profile)))
        varies = len(set(profile[:period])) > 1
        if ok and varies:
            best_period = period
            break
    return best_period


def DetectBranchPredictorShift(proc: Processor,
                               max_shift: int = 7,
                               iterations: int = 400) -> int:
    """Infer the predictor index shift from branch-aliasing interference.

    Two highly-biased branches (one always taken, one never taken) are
    placed a controlled distance D apart; the pair is slid through memory
    and the *worst-case* misprediction count over all placements is taken.
    While D < 2^shift some placement puts both branches in one bucket and
    they thrash each other's 2-bit counter; once D >= 2^shift no placement
    aliases and mispredictions collapse.  Returns the inferred shift.
    """
    from repro.mbench.benchmark import load_program_cached
    from repro.uarch.pipeline import simulate_program

    def worst_case(distance: int) -> int:
        pad = max(0, distance - 6)   # js(2) + pad + subq(4) -> jne
        worst = 0
        for slide in range(0, 2 * distance, max(1, distance // 8)):
            pre = "\n".join("    nop" for _ in range(slide))
            nops = "\n".join("    nop" for _ in range(pad))
            source = f"""
.text
.globl main
main:
    movq ${iterations}, %rbp
{pre}
.Lloop:
    testq %rbp, %rbp
    js .Lnever
{nops}
.Lnever:
    subq $1, %rbp
    jne .Lloop
    ret
"""
            program = load_program_cached(source)
            _, stats = simulate_program(program, proc.model,
                                        private_memory=True)
            worst = max(worst, stats["BR_MISP"])
        return worst

    threshold = iterations // 4
    for shift in range(2, max_shift + 1):
        if worst_case(1 << shift) < threshold:
            return shift
    return max_shift


def DetectLsdLineBudget(proc: Processor, max_lines: int = 8,
                        trip_count: int = 2000,
                        line_bytes: Optional[int] = None) -> Optional[int]:
    """Infer how many decode lines a loop may span and still stream.

    Loop bodies built from 8-byte NOPs are aligned to a line boundary and
    sized to span exactly 1..max_lines lines.  While the LSD streams, the
    cost per line is ~(instructions/stream width); beyond the budget the
    fetch bound of one line per cycle takes over — the cycles-per-line
    ratio jumps from ~0.5 to ~1.0.  Returns the last size before the jump,
    or None when no transition is observed.

    ``line_bytes`` lets a caller that already *inferred* the line size
    (:func:`DetectDecodeLineSize`) stay fully blind; when omitted the
    model's own value is used, as the original experiment did.
    """
    line = line_bytes or proc.model.decode_line_bytes
    per_line: List[float] = []
    for lines_spanned in range(1, max_lines + 1):
        # body = N eight-byte NOPs + 6 bytes of sub/jne = lines*line - 2.
        count = max(1, (lines_spanned * line - 8) // 8)
        seq = InstructionSequence(proc, length=count)
        seq.SetInstructionTemplate("nopl 128(%rax,%rax,1)")
        seq.SetDagType(DagType.DISJOINT)
        seq.Generate()
        inner = StraightLineLoop([seq], proc, trip_count=trip_count)
        inner.align_loop = line.bit_length() - 1
        bench = Benchmark(LoopList([inner]))
        results = bench.Execute(proc, [proc.CPU_CYCLES],
                                max_steps=8_000_000)
        per_iter = results[proc.CPU_CYCLES] / trip_count
        per_line.append(per_iter / lines_spanned)

    # While streaming, cycles-per-line falls with size (fixed stream
    # width over more lines); past the budget the fetch bound snaps it
    # back up.  The jump marks the budget.
    for i in range(1, len(per_line)):
        if per_line[i] > per_line[i - 1] * 1.3:
            return i          # budget = previous size in lines
    return None


def DetectForwardingBandwidth(proc: Processor,
                              max_streams: int = 4,
                              trip_count: int = 1500) -> int:
    """Infer how many results forward per cycle (§III.F effect).

    Independent result streams are added one at a time (ALU streams on the
    symmetric ports, then a load stream); once the number of results
    retiring per cycle exceeds the forwarding bandwidth,
    ``RESOURCE_STALLS:RS_FULL`` events appear.  Returns the largest stream
    count that runs stall-free.
    """
    from repro.mbench.benchmark import load_program_cached
    from repro.uarch.pipeline import simulate_program

    alu_regs = ["rbx", "rcx", "rdx"]
    clean = 0
    for streams in range(1, max_streams + 1):
        body: List[str] = []
        for i in range(min(streams, 3)):
            body.append("    addq $1, %%%s" % alu_regs[i])
        if streams >= 4:
            body.append("    movq 0(%r15), %rsi")
        # Unroll x4 so steady-state behaviour dominates.
        body = body * 4
        source = """
.text
.globl main
main:
    push %%r15
    leaq buf(%%rip), %%r15
    movq $%d, %%rbp
.Lloop:
%s
    subq $1, %%rbp
    jne .Lloop
    pop %%r15
    ret
.section .bss
buf:
    .zero 64
""" % (trip_count, "\n".join(body))
        program = load_program_cached(source)
        _, stats = simulate_program(program, proc.model,
                                    private_memory=True)
        if stats["RESOURCE_STALLS_RS_FULL"] > trip_count // 4:
            return clean
        clean = streams
    return clean


# ---------------------------------------------------------------------------
# Discovery ladders (repro.discover).  Everything below measures through PMU
# counters only, or — nanoBench-style — compares the oracle's counters with
# a *candidate* model's counters on the same generated source.  None of it
# reads the oracle model's fields.
# ---------------------------------------------------------------------------

def _run_source(model, source: str, max_steps: int = 20_000_000):
    """Assemble+simulate ``source`` against ``model``; return PMU stats."""
    from repro.mbench.benchmark import load_program_cached
    from repro.uarch.pipeline import simulate_program

    program = load_program_cached(source)
    result, stats = simulate_program(program, model, max_steps=max_steps,
                                     private_memory=True)
    if result.reason != "ret":
        raise RuntimeError("discovery benchmark did not retire cleanly: %r"
                           % (result.reason,))
    return stats


def _nop_loop_source(trip_count: int, nops: int, align: int) -> str:
    """A loop of single-byte NOPs: decode bandwidth, no port pressure."""
    body = "\n".join(["    nop"] * nops)
    return """.text
.globl main
main:
    movq $%d, %%rbp
    .p2align %d
.Lloop:
%s
    subq $1, %%rbp
    jne .Lloop
    ret
""" % (trip_count, align, body)


#: Per-class serial-dependency idioms for chain-latency ladders.  Each is a
#: self-read-modify-write on one register, so K copies form a chain of
#: length K per iteration.  ``%r`` is substituted with the chain register.
_CHAIN_IDIOMS = {
    "alu": "addq $1, %r",
    "lea": "leaq 1(%r), %r",
    "shift": "sarq $1, %r",
    "mul": "imulq $3, %r, %r",
    "load": "movq (%r), %r",
    "fp_add": "addsd %x, %x",
    "fp_mul": "mulsd %x, %x",
}


def _chain_source(klass: str, trip_count: int, copies: int) -> str:
    if klass == "div":
        # idiv's quotient chains through rax; rdx is re-zeroed from an
        # immediate each step so the chain never flows through the
        # remainder (and never overflows).
        step = "    idivq %rbx\n    movq $0, %rdx"
        body = "\n".join([step] * copies)
        prologue = ("    movq $999999999, %rax\n"
                    "    movq $0, %rdx\n"
                    "    movq $3, %rbx")
    else:
        idiom = _CHAIN_IDIOMS[klass]
        line = "    " + idiom.replace("%r", "%rbx").replace("%x", "%xmm1")
        body = "\n".join([line] * copies)
        prologue = "    movq $0, %rbx"
    return """.text
.globl main
main:
%s
    movq $%d, %%rbp
.Lloop:
%s
    subq $1, %%rbp
    jne .Lloop
    ret
""" % (prologue, trip_count, body)


def DetectChainLatency(proc: Processor, klass: str) -> int:
    """Latency of ``klass`` from a serial chain, prologue-free by differencing.

    Two trip counts are run and differenced, so the steady-state slope —
    ``copies * latency`` cycles per iteration — is measured exactly even
    when the loop's first iterations pay decode or misprediction costs.
    """
    copies = 6 if klass == "div" else 8
    low_trips, high_trips = 150, 300
    low = _run_source(proc.model, _chain_source(klass, low_trips, copies))
    high = _run_source(proc.model, _chain_source(klass, high_trips, copies))
    per_iter = (high["CPU_CYCLES"] - low["CPU_CYCLES"]) / (high_trips -
                                                           low_trips)
    return round(per_iter / copies)


def DetectDecodeWidth(proc: Processor, line_bytes: int,
                      trip_count: int = 24) -> int:
    """Infer decode width from the per-line cost of dense decode lines.

    Two bodies of single-byte NOPs spanning ``10*L`` and ``18*L`` bytes
    (both far past any LSD budget, so the loop never streams) are timed
    and differenced: the extra 8 lines cost ``8 * (1 + (L-1)//width)``
    cycles per iteration.  The smallest width consistent with that cost is
    returned — widths in the same ceiling class (e.g. 4 and 5 at L=16)
    are indistinguishable by construction, a documented limit.
    """
    align = line_bytes.bit_length() - 1

    def cpi(nops: int) -> float:
        low = _run_source(proc.model,
                          _nop_loop_source(trip_count, nops, align))
        high = _run_source(proc.model,
                           _nop_loop_source(trip_count * 2, nops, align))
        return (high["CPU_CYCLES"] - low["CPU_CYCLES"]) / trip_count

    lines_small, lines_large = 10, 18
    delta = cpi(lines_large * line_bytes) - cpi(lines_small * line_bytes)
    per_line = round(delta / (lines_large - lines_small))
    for width in range(1, line_bytes + 1):
        if 1 + (line_bytes - 1) // width == per_line:
            return width
    return line_bytes


def DetectLsdIterationThreshold(proc: Processor, line_bytes: int,
                                max_threshold: int = 512) -> Optional[int]:
    """Infer the LSD engagement threshold, or None if the LSD never engages.

    Bisects on the smallest trip count at which ``LSD_UOPS`` fires for a
    minimal one-line loop.  The streaming onset trips at
    ``min_iterations + 2`` (the tracker needs the iteration count to reach
    the threshold before the *next* fetch can stream), so two is
    subtracted back out.
    """
    align = line_bytes.bit_length() - 1

    def streams(trips: int) -> bool:
        source = """.text
.globl main
main:
    movq $%d, %%rbp
    .p2align %d
.Lloop:
    nopl 128(%%rax,%%rax,1)
    subq $1, %%rbp
    jne .Lloop
    ret
""" % (trips, align)
        return _run_source(proc.model, source)["LSD_UOPS"] > 0

    if not streams(max_threshold):
        return None
    lo, hi = 2, max_threshold          # invariant: streams(hi), not lo-1
    while lo < hi:
        mid = (lo + hi) // 2
        if streams(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo - 2


def DetectLsdStreamWidth(proc: Processor, line_bytes: int,
                         line_budget: int, min_iterations: int) -> int:
    """Infer how many streamed uops issue per cycle once the LSD is live.

    The body is packed with single-byte NOPs right up to the line budget,
    so uops-per-iteration exceeds any plausible stream width and the
    streaming front end — not the loop counter's 1-cycle dependency
    chain — is the binding resource.  Differencing two trip counts above
    the threshold isolates the streaming steady state.
    """
    align = line_bytes.bit_length() - 1
    # Worst-case tail is subq (4) + near-form jne (6) = 10 bytes.
    nops = line_budget * line_bytes - 10
    uops = nops + 2
    low_trips = min_iterations + 64
    high_trips = min_iterations + 192
    low = _run_source(proc.model,
                      _nop_loop_source(low_trips, nops, align))
    high = _run_source(proc.model,
                       _nop_loop_source(high_trips, nops, align))
    cpi = (high["CPU_CYCLES"] - low["CPU_CYCLES"]) / (high_trips - low_trips)
    return round(uops / cpi)


def DetectLsdLineBudgetByCounter(proc: Processor, line_bytes: int,
                                 min_iterations: int,
                                 max_lines: int = 8) -> int:
    """Infer the LSD line budget from the ``LSD_UOPS`` counter directly.

    :func:`DetectLsdLineBudget` infers the budget from a cycles-per-line
    discontinuity, which washes out when streamed uops-per-line happens to
    equal the fetch bound (e.g. 8-byte NOPs on a 32-byte line at stream
    width 4).  Real PMUs expose the streamed-uop count itself, so this
    ladder asks the counter: grow the aligned body one line at a time and
    return the largest span that still streams.
    """
    align = line_bytes.bit_length() - 1
    trips = min_iterations + 64
    budget = 0
    for lines_spanned in range(1, max_lines + 1):
        # Leave room for the worst-case tail: subq (4) + near-form jne (6).
        nops = lines_spanned * line_bytes - 10
        stats = _run_source(proc.model,
                            _nop_loop_source(trips, nops, align))
        if stats["LSD_UOPS"] == 0:
            break
        budget = lines_spanned
    return budget


def _forwarding_probe_source(trip_count: int = 200) -> str:
    """Many independent result streams: retire pressure scales with them."""
    body = []
    for _ in range(4):
        body.append("    addq $1, %rbx")
        body.append("    addq $1, %rcx")
        body.append("    addq $1, %rdx")
        body.append("    movq 0(%r15), %rsi")
    return """.text
.globl main
main:
    push %%r15
    leaq buf(%%rip), %%r15
    movq $%d, %%rbp
.Lloop:
%s
    subq $1, %%rbp
    jne .Lloop
    pop %%r15
    ret
.section .bss
buf:
    .zero 64
""" % (trip_count, "\n".join(body))


def DetectForwardingBandwidthMatch(proc: Processor, base_model,
                                   candidates=range(1, 9)) -> Optional[int]:
    """Grid-match the forwarding bandwidth against candidate models.

    :func:`DetectForwardingBandwidth` reads the stall counter's threshold
    crossing, which is only exact when retire pressure steps in units of
    one; this variant instead fits the whole cycle count of a
    high-pressure body (12 ALU streams + 4 loads per iteration) the way
    :func:`DetectMispredictPenalty` does.  Returns None when no candidate
    reproduces the oracle — some other base parameter is off.
    """
    import dataclasses

    source = _forwarding_probe_source()
    target = _run_source(proc.model, source)["CPU_CYCLES"]
    for bandwidth in candidates:
        candidate = dataclasses.replace(base_model,
                                        forwarding_bw=bandwidth)
        if _run_source(candidate, source)["CPU_CYCLES"] == target:
            return bandwidth
    return None


def _penalty_source(trip_count: int, pad_nops: int = 320) -> str:
    """A loop with one data-dependent (alternating) forward branch.

    The branch is taken every other iteration, so a 2-bit counter
    mispredicts ~every iteration; ``pad_nops`` single-byte NOPs push the
    body far past any LSD budget and separate the two branches beyond any
    plausible predictor-aliasing distance.
    """
    pad = "\n".join(["    nop"] * pad_nops)
    return """.text
.globl main
main:
    movq $%d, %%rbp
    movq $0, %%rbx
.Lloop:
    addq $1, %%rbx
    movq %%rbx, %%rcx
    andq $1, %%rcx
    jne .Lskip
%s
.Lskip:
    subq $1, %%rbp
    jne .Lloop
    ret
""" % (trip_count, pad)


def DetectMispredictPenalty(proc: Processor, base_model,
                            candidates=range(2, 33),
                            trip_count: int = 96) -> Optional[int]:
    """Grid-match the mispredict penalty against candidate models.

    nanoBench-style model fitting: the alternating-branch source is run on
    the oracle, then on copies of ``base_model`` (the parameters inferred
    so far) with each candidate penalty substituted; cycles scale
    monotonically in the penalty so the exact match is unique.  Returns
    None when no candidate reproduces the oracle's count (i.e. some
    *other* base parameter is off).
    """
    import dataclasses

    source = _penalty_source(trip_count)
    target = _run_source(proc.model, source)["CPU_CYCLES"]
    for penalty in candidates:
        candidate = dataclasses.replace(base_model,
                                        bp_mispredict_penalty=penalty)
        if _run_source(candidate, source)["CPU_CYCLES"] == target:
            return penalty
    return None


_PORT_PROBE_REGS = ["r8", "r9", "r10", "r11", "r12", "r13", "rsi", "rdi"]


def _port_probe_sources(klass: str, trip_count: int = 200):
    """(solo, antagonist-pair) sources for port-set probing of ``klass``.

    The solo body is 12 independent copies of the class idiom rotated over
    scratch registers (pure throughput).  The pair body interleaves the
    idiom with ``mulsd`` — an FP-multiply antagonist whose port binding is
    inferred independently — so candidates that share a port with it
    separate from candidates that do not.
    """
    idiom = _CHAIN_IDIOMS[klass]

    def fmt(reg: str) -> str:
        return "    " + idiom.replace("%r", "%" + reg)

    solo = "\n".join(fmt(_PORT_PROBE_REGS[i % 8]) for i in range(12))
    pair_lines = []
    for i in range(8):
        pair_lines.append(fmt(_PORT_PROBE_REGS[i]))
        pair_lines.append("    mulsd %%xmm%d, %%xmm%d" % (i + 1, i + 1))
    pair = "\n".join(pair_lines)
    template = """.text
.globl main
main:
    movq $%d, %%rbp
.Lloop:
%s
    subq $1, %%rbp
    jne .Lloop
    ret
"""
    return template % (trip_count, solo), template % (trip_count, pair)


def DetectPortSet(proc: Processor, base_model, klass: str,
                  candidates) -> Optional[tuple]:
    """Infer which ports execute ``klass`` by candidate-model matching.

    Both probe sources are run on the oracle; a candidate port set matches
    only if it reproduces *both* cycle counts (solo throughput pins the
    set's size, the antagonist pair pins its overlap with the FP-multiply
    ports).  Returns the matching tuple, or None when the true set lies
    outside the candidate space — discovery identifies port bindings only
    up to the hypothesis space it searches.
    """
    import dataclasses

    sources = _port_probe_sources(klass)
    targets = [_run_source(proc.model, s)["CPU_CYCLES"] for s in sources]
    for cand in candidates:
        ports = tuple(cand)
        port_map = dict(base_model.port_map)
        port_map[klass] = ports
        candidate = dataclasses.replace(base_model, port_map=port_map)
        measured = [_run_source(candidate, s)["CPU_CYCLES"] for s in sources]
        if measured == targets:
            return ports
    return None
