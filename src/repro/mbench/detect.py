"""Parameter-detection experiments (paper §IV and §IV.A).

:func:`InstructionLatency` is a line-for-line port of the paper's Fig. 6.
The other detectors realize the section's goal — "to discover
micro-architectural features ... semi-automatically" — against a possibly
*blinded* processor model: they only look at PMU counters, never at the
model's fields.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mbench import loop, sequence as insseq
from repro.mbench.benchmark import Benchmark
from repro.mbench.loop import LoopList, StraightLineLoop
from repro.mbench.processor import Processor
from repro.mbench.sequence import DagType, InstructionSequence


def InstructionLatency(proc: Processor, template: str,
                       length: int = 8, trip_count: int = 2000) -> int:
    """Determine an instruction's latency (paper Fig. 6, verbatim shape).

    Form a loop with a cycle of instructions, one dependent on the other.
    Execute the chain, collect CPU cycles and obtain the latency.
    """
    seq = insseq.InstructionSequence(proc, length=length)
    seq.SetInstructionTemplate(template)
    seq.SetDagType(insseq.DagType.CYCLE)
    seq.Generate()
    loop_list = loop.LoopList(
        [loop.StraightLineLoop([seq], proc, trip_count=trip_count)])
    bench = Benchmark(loop_list)
    results = bench.Execute(proc, [proc.CPU_CYCLES])
    insns_in_loop = loop_list.NumDynamicInstructions()
    latency = round(float(results[proc.CPU_CYCLES]) / insns_in_loop)
    return latency


def InstructionThroughput(proc: Processor, template: str,
                          length: int = 12,
                          trip_count: int = 2000) -> float:
    """Reciprocal throughput: independent copies of one instruction."""
    seq = InstructionSequence(proc, length=length)
    seq.SetInstructionTemplate(template)
    seq.SetDagType(DagType.DISJOINT)
    seq.Generate()
    loop_list = LoopList([StraightLineLoop([seq], proc,
                                           trip_count=trip_count)])
    bench = Benchmark(loop_list)
    results = bench.Execute(proc, [proc.CPU_CYCLES])
    return results[proc.CPU_CYCLES] / loop_list.NumDynamicInstructions()


def _alignment_cycle_profile(proc: Processor, offsets: range,
                             trip_count: int = 24) -> List[float]:
    """Per-iteration cycles of a decode-bound loop at varying alignments.

    The body is made of wide multi-byte NOPs: they occupy decode slots but
    no execution ports and forward no results, so the loop's speed is set
    purely by how many fetch lines the body spans.  The trip count stays
    below any plausible LSD engagement threshold, and running each layout
    at two trip counts and differencing removes the prologue's cost.
    """
    def run(offset: int, trips: int) -> int:
        seq = InstructionSequence(proc, length=6)
        seq.SetInstructionTemplate("nopl 128(%rax,%rax,1)")  # 8 bytes
        seq.SetDagType(DagType.DISJOINT)
        seq.Generate()
        inner = StraightLineLoop([seq], proc, trip_count=trips)
        inner.pre_alignment_nops = offset
        bench = Benchmark(LoopList([inner]))
        return bench.Execute(proc, [proc.CPU_CYCLES])[proc.CPU_CYCLES]

    cycles: List[float] = []
    for offset in offsets:
        low = run(offset, trip_count)
        high = run(offset, trip_count * 2)
        cycles.append((high - low) / trip_count)
    return cycles


def DetectDecodeLineSize(proc: Processor,
                         max_line: int = 64) -> int:
    """Infer the decode-line size from the period of alignment effects.

    A short decode-bound loop is slid byte-by-byte through memory; its
    cycle count varies cyclically with the starting offset, and the period
    of that variation is the fetch-line size.
    """
    profile = _alignment_cycle_profile(proc, range(0, max_line))
    best_period = max_line
    for period in (8, 16, 32, 64):
        if period > len(profile):
            break
        ok = all(profile[i] == profile[i - period]
                 for i in range(period, len(profile)))
        varies = len(set(profile[:period])) > 1
        if ok and varies:
            best_period = period
            break
    return best_period


def DetectBranchPredictorShift(proc: Processor,
                               max_shift: int = 7,
                               iterations: int = 400) -> int:
    """Infer the predictor index shift from branch-aliasing interference.

    Two highly-biased branches (one always taken, one never taken) are
    placed a controlled distance D apart; the pair is slid through memory
    and the *worst-case* misprediction count over all placements is taken.
    While D < 2^shift some placement puts both branches in one bucket and
    they thrash each other's 2-bit counter; once D >= 2^shift no placement
    aliases and mispredictions collapse.  Returns the inferred shift.
    """
    from repro.mbench.benchmark import load_program_cached
    from repro.uarch.pipeline import simulate_program

    def worst_case(distance: int) -> int:
        pad = max(0, distance - 6)   # js(2) + pad + subq(4) -> jne
        worst = 0
        for slide in range(0, 2 * distance, max(1, distance // 8)):
            pre = "\n".join("    nop" for _ in range(slide))
            nops = "\n".join("    nop" for _ in range(pad))
            source = f"""
.text
.globl main
main:
    movq ${iterations}, %rbp
{pre}
.Lloop:
    testq %rbp, %rbp
    js .Lnever
{nops}
.Lnever:
    subq $1, %rbp
    jne .Lloop
    ret
"""
            program = load_program_cached(source)
            _, stats = simulate_program(program, proc.model,
                                        private_memory=True)
            worst = max(worst, stats["BR_MISP"])
        return worst

    threshold = iterations // 4
    for shift in range(2, max_shift + 1):
        if worst_case(1 << shift) < threshold:
            return shift
    return max_shift


def DetectLsdLineBudget(proc: Processor, max_lines: int = 8,
                        trip_count: int = 2000) -> Optional[int]:
    """Infer how many decode lines a loop may span and still stream.

    Loop bodies built from 8-byte NOPs are aligned to a line boundary and
    sized to span exactly 1..max_lines lines.  While the LSD streams, the
    cost per line is ~(instructions/stream width); beyond the budget the
    fetch bound of one line per cycle takes over — the cycles-per-line
    ratio jumps from ~0.5 to ~1.0.  Returns the last size before the jump,
    or None when no transition is observed.
    """
    line = proc.model.decode_line_bytes
    per_line: List[float] = []
    for lines_spanned in range(1, max_lines + 1):
        # body = N eight-byte NOPs + 6 bytes of sub/jne = lines*line - 2.
        count = max(1, (lines_spanned * line - 8) // 8)
        seq = InstructionSequence(proc, length=count)
        seq.SetInstructionTemplate("nopl 128(%rax,%rax,1)")
        seq.SetDagType(DagType.DISJOINT)
        seq.Generate()
        inner = StraightLineLoop([seq], proc, trip_count=trip_count)
        inner.align_loop = line.bit_length() - 1
        bench = Benchmark(LoopList([inner]))
        results = bench.Execute(proc, [proc.CPU_CYCLES],
                                max_steps=8_000_000)
        per_iter = results[proc.CPU_CYCLES] / trip_count
        per_line.append(per_iter / lines_spanned)

    # While streaming, cycles-per-line falls with size (fixed stream
    # width over more lines); past the budget the fetch bound snaps it
    # back up.  The jump marks the budget.
    for i in range(1, len(per_line)):
        if per_line[i] > per_line[i - 1] * 1.3:
            return i          # budget = previous size in lines
    return None


def DetectForwardingBandwidth(proc: Processor,
                              max_streams: int = 4,
                              trip_count: int = 1500) -> int:
    """Infer how many results forward per cycle (§III.F effect).

    Independent result streams are added one at a time (ALU streams on the
    symmetric ports, then a load stream); once the number of results
    retiring per cycle exceeds the forwarding bandwidth,
    ``RESOURCE_STALLS:RS_FULL`` events appear.  Returns the largest stream
    count that runs stall-free.
    """
    from repro.mbench.benchmark import load_program_cached
    from repro.uarch.pipeline import simulate_program

    alu_regs = ["rbx", "rcx", "rdx"]
    clean = 0
    for streams in range(1, max_streams + 1):
        body: List[str] = []
        for i in range(min(streams, 3)):
            body.append("    addq $1, %%%s" % alu_regs[i])
        if streams >= 4:
            body.append("    movq 0(%r15), %rsi")
        # Unroll x4 so steady-state behaviour dominates.
        body = body * 4
        source = """
.text
.globl main
main:
    push %%r15
    leaq buf(%%rip), %%r15
    movq $%d, %%rbp
.Lloop:
%s
    subq $1, %%rbp
    jne .Lloop
    pop %%r15
    ret
.section .bss
buf:
    .zero 64
""" % (trip_count, "\n".join(body))
        program = load_program_cached(source)
        _, stats = simulate_program(program, proc.model,
                                    private_memory=True)
        if stats["RESOURCE_STALLS_RS_FULL"] > trip_count // 4:
            return clean
        clean = streams
    return clean
