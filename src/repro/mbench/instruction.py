"""Instruction templates (paper §IV.b).

"This class represents an assembly instruction.  The implicit and explicit
operands of an instruction, including their types, positions of source and
destination operands, and any other operand constraints are managed by this
class."

A template is written like ``add %r, %r`` (the paper's example) with
placeholders:

* ``%r``  — a general-purpose register (width from the mnemonic suffix,
  default 64-bit),
* ``%x``  — an xmm register,
* ``$i``  — a small immediate,
* ``%m``  — a memory operand within the benchmark's scratch buffer.

In AT&T order the *last* operand is the destination; dependence edges
(RAW) connect a producer's destination to a consumer's source slot.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple

from repro.x86.isa import split_mnemonic

# Placeholders must not swallow literal registers in a template (e.g. the
# "%r" prefix of "%rax"), so each is guarded against a following word char.
_PLACEHOLDER_RE = re.compile(
    r"(%r(?![a-zA-Z0-9])|%x(?![a-zA-Z0-9])|%m(?![a-zA-Z0-9])|\$i)")

#: Instruction "type" attributes (the paper: "the type of instructions
#: (arithmetic, memory, etc.)").
ARITHMETIC = "arithmetic"
MEMORY = "memory"
FLOATING = "floating"
CONTROL = "control"


@dataclass
class InstructionTemplate:
    """A parameterized instruction like ``add %r, %r``."""

    text: str
    itype: str = ARITHMETIC
    #: Extra attribute tags ("long-latency", etc.) — extensible per paper.
    attributes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        parts = self.text.split(None, 1)
        self.mnemonic = parts[0]
        self.operand_text = parts[1] if len(parts) > 1 else ""
        self.placeholders: List[str] = _PLACEHOLDER_RE.findall(
            self.operand_text)
        info = split_mnemonic(self.mnemonic)
        self.width = info.width or 64

    @property
    def num_register_slots(self) -> int:
        return sum(1 for p in self.placeholders if p in ("%r", "%x"))

    @property
    def has_destination(self) -> bool:
        return bool(self.placeholders) \
            and self.placeholders[-1] in ("%r", "%x", "%m")

    def instantiate(self, operands: List[str]) -> str:
        """Fill the placeholders with concrete operand strings."""
        parts = _PLACEHOLDER_RE.split(self.operand_text)
        # re.split with a capturing group alternates literal text and
        # placeholder tokens; substitute the tokens left to right.
        filled: List[str] = []
        operand_iter = iter(operands)
        for part in parts:
            if _PLACEHOLDER_RE.fullmatch(part):
                filled.append(next(operand_iter))
            else:
                filled.append(part)
        text = "".join(filled)
        return "%s %s" % (self.mnemonic, text) if text else self.mnemonic

    def __str__(self) -> str:
        return self.text
