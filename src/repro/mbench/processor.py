"""The Processor abstraction (paper §IV.a).

"This class encapsulates information specific to a target architecture.
This primarily consists of the set of registers and the set of
instructions."  It also carries the execution target — here, a
``ProcessorModel`` for the uarch simulator (possibly blinded).
"""

from __future__ import annotations

from typing import List, Optional

from repro.uarch import counters
from repro.uarch.model import ProcessorModel
from repro.uarch.profiles import core2


class Processor:
    """Target-architecture description for microbenchmark generation."""

    #: PMU counter names exposed as attributes, as in the paper's
    #: ``proc.CPU_CYCLES``.
    CPU_CYCLES = counters.CPU_CYCLES
    INSTRUCTIONS = counters.INSTRUCTIONS
    BR_MISP = counters.BR_MISP
    DECODE_LINES = counters.DECODE_LINES
    LSD_UOPS = counters.LSD_UOPS
    RESOURCE_STALLS_RS_FULL = counters.RESOURCE_STALLS_RS_FULL

    def __init__(self, model: Optional[ProcessorModel] = None,
                 seed: int = 0) -> None:
        self.model = model or core2()
        self.seed = seed
        #: Scratch GP registers microbenchmarks may allocate (64-bit names).
        self.gp_registers: List[str] = [
            "rax", "rbx", "rcx", "rdx", "rsi", "rdi",
            "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
        ]
        self.xmm_registers: List[str] = ["xmm%d" % i for i in range(16)]
        #: Registers reserved by the loop harness.
        self.reserved: List[str] = ["rsp", "rbp", "r15"]

    @property
    def name(self) -> str:
        return self.model.name

    def scratch_registers(self, width: int = 64) -> List[str]:
        from repro.x86.registers import get_register, widen
        names = []
        for name in self.gp_registers:
            if name in self.reserved:
                continue
            names.append(widen(get_register(name), width).name)
        return names
