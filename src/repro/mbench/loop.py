"""Loop harnesses (paper §IV.d).

"One or more instruction sequences are enclosed within a loop with a
specified trip count.  The simplest form of a loop is a straight line loop
which does not have any control-flow inside the loop."

The harness reserves ``%rbp`` as the trip counter and ``%r15`` as the
scratch-buffer pointer; generated sequences draw registers from the
remaining pool.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.mbench.processor import Processor
from repro.mbench.sequence import InstructionSequence


class Loop:
    """Base class: a loop over instruction sequences."""

    def __init__(self, sequences: Sequence[InstructionSequence],
                 proc: Processor, trip_count: int = 1000) -> None:
        self.sequences = list(sequences)
        self.proc = proc
        self.trip_count = trip_count
        #: Extra single-byte NOPs emitted *before* the loop label, to
        #: control the loop body's starting alignment.
        self.pre_alignment_nops = 0
        #: Extra NOPs inside the body (after the sequences).
        self.body_nops = 0
        #: If set, emit ``.p2align <n>`` before the loop label.
        self.align_loop: Optional[int] = None

    def body_instructions(self) -> List[str]:
        body: List[str] = []
        for sequence in self.sequences:
            if not sequence.instructions:
                sequence.Generate()
            body.extend(sequence.instructions)
        body.extend(["nop"] * self.body_nops)
        return body

    def num_dynamic_instructions(self) -> int:
        return len(self.body_instructions()) * self.trip_count

    def emit(self, label: str) -> List[str]:
        raise NotImplementedError


class StraightLineLoop(Loop):
    """A counted loop with no internal control flow."""

    def emit(self, label: str) -> List[str]:
        lines: List[str] = []
        lines.append("    movq $%d, %%rbp" % self.trip_count)
        lines.extend("    nop" for _ in range(self.pre_alignment_nops))
        if self.align_loop is not None:
            lines.append("    .p2align %d" % self.align_loop)
        lines.append("%s:" % label)
        for text in self.body_instructions():
            lines.append("    %s" % text)
        lines.append("    subq $1, %rbp")
        lines.append("    jne %s" % label)
        return lines


class LoopList:
    """The paper's LoopList: the program is a list of loops run in order."""

    def __init__(self, loops: Sequence[Loop]) -> None:
        self.loops = list(loops)

    def NumDynamicInstructions(self) -> int:
        return sum(loop.num_dynamic_instructions() for loop in self.loops)

    def emit_program(self) -> str:
        lines: List[str] = [
            ".text",
            ".globl main",
            ".type main, @function",
            "main:",
            "    push %rbp",
            "    push %r15",
            "    leaq scratch(%rip), %r15",
        ]
        for index, loop in enumerate(self.loops):
            lines.extend(loop.emit(".Lmb%d" % index))
        lines.extend([
            "    pop %r15",
            "    pop %rbp",
            "    ret",
            ".section .bss",
            ".align 64",
            "scratch:",
            "    .zero 65536",
        ])
        return "\n".join(lines) + "\n"
