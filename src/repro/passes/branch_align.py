"""BRALIGN — de-alias branches sharing a predictor bucket (§III.C.g).

"In many Intel platforms, branch predictor structures are indexed by
PC >> 5.  As a result, the backward branches of both the loops above use
the same branch prediction information ... Moving the second branch
instruction down via NOP insertion so that the two branch instructions
... have two different PC >> 5 values speeds up a full image manipulation
benchmark by 3%."

The pass finds pairs of conditional branches within one function whose
addresses fall into the same ``PC >> shift`` bucket and separates them by
inserting NOPs before the later branch until its bucket differs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.analysis.relax import relax_section
from repro.ir.entries import InstructionEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.passes.util import make_nop


@register_func_pass("BRALIGN")
class BranchAlignPass(MaoFunctionPass):
    """Separate conditional branches that alias in the predictor tables."""

    OPTIONS = {
        "shift": 5,           # predictor index = PC >> shift
        "max_nops": 16,       # give up beyond this many fill bytes
        "count_only": False,
    }

    def Go(self) -> bool:
        shift = int(self.option("shift"))
        max_nops = int(self.option("max_nops"))

        # Iterate: fixing one pair moves later branches, so re-relax after
        # every insertion (bounded by the number of branches).
        for _ in range(64):
            layout = relax_section(self.unit, self.function.section)
            buckets: Dict[int, List[InstructionEntry]] = defaultdict(list)
            for entry in self.function.entries():
                if isinstance(entry, InstructionEntry) \
                        and entry.insn.is_cond_jump:
                    place = layout.placement.get(entry)
                    if place is not None:
                        buckets[place.address >> shift].append(entry)
            conflict = None
            for bucket, entries in sorted(buckets.items()):
                if len(entries) > 1:
                    conflict = (bucket, entries)
                    break
            if conflict is None:
                return True
            bucket, entries = conflict
            second = entries[1]
            place = layout.placement[second]
            needed = ((bucket + 1) << shift) - place.address
            if needed <= 0 or needed > max_nops:
                self.bump("unfixable")
                return True
            self.bump("pairs_separated")
            self.bump("nops_inserted", needed)
            self.Trace(1, "separating aliased branch at %#x (+%d nops)",
                       place.address, needed)
            if self.option("count_only"):
                return True
            for _ in range(needed):
                self.unit.insert_before(second,
                                        InstructionEntry(make_nop()))
        return True
