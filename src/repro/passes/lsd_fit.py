"""LSDFIT — fit loops into the Loop Stream Detector line budget (§III.C.f).

"The loop must execute a minimum of 64 iterations, must not span more than
four 16-byte decoding lines, and may only contain certain types of
branches."  Figures 4/5 show a loop spread over six decode lines; inserting
six NOPs ahead of it packs the body into four lines and doubles the loop's
speed.

For each innermost loop whose body *could* fit the LSD line budget at a
better starting offset, the pass inserts single-byte NOPs immediately
before the loop so the body's first byte lands on the offset that minimizes
the number of decode lines spanned.  (NOPs ahead of the loop execute once
per loop entry — cheap next to streaming every iteration.)
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.cfg import build_cfg
from repro.analysis.loops import build_lsg
from repro.analysis.relax import relax_section
from repro.ir.entries import InstructionEntry, LabelEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.passes.loop16 import lines_spanned, loop_extent, minimal_lines
from repro.passes.util import make_nop


@register_func_pass("LSDFIT")
class LsdFitPass(MaoFunctionPass):
    """NOP-shift loops so they span no more decode lines than necessary."""

    OPTIONS = {
        "line": 16,
        "max_lines": 4,       # the LSD line budget
        "count_only": False,
    }

    def Go(self) -> bool:
        line_bytes = int(self.option("line"))
        max_lines = int(self.option("max_lines"))
        cfg = build_cfg(self.function, self.unit)
        lsg = build_lsg(cfg)
        if not lsg.non_root_loops():
            return True
        layout = relax_section(self.unit, self.function.section)

        for loop in lsg.inner_loops():
            if not loop.is_reducible:
                continue
            extent = loop_extent(loop, layout)
            if extent is None:
                continue
            start, end = extent
            size = end - start
            minimal = minimal_lines(size, line_bytes)
            if minimal > max_lines or size == 0:
                self.bump("too_big")
                continue
            spanned = lines_spanned(start, end, line_bytes)
            if spanned <= max(minimal, 1) or spanned <= max_lines:
                continue
            # Find the smallest forward shift that reaches the budget.
            shift = self._best_shift(start, size, line_bytes, max_lines)
            if shift is None:
                continue
            anchor = self._loop_anchor(loop)
            if anchor is None:
                continue
            self.bump("loops_shifted")
            self.bump("nops_inserted", shift)
            self.Trace(1, "shifting loop at %#x by %d nops (%d->%d lines)",
                       start, shift,
                       spanned, lines_spanned(start + shift,
                                              end + shift, line_bytes))
            if not self.option("count_only"):
                for _ in range(shift):
                    self.unit.insert_before(
                        anchor, InstructionEntry(make_nop()))
        return True

    @staticmethod
    def _best_shift(start: int, size: int, line_bytes: int,
                    max_lines: int) -> Optional[int]:
        for shift in range(1, line_bytes):
            if lines_spanned(start + shift, start + shift + size,
                             line_bytes) <= max_lines:
                return shift
        return None

    @staticmethod
    def _loop_anchor(loop):
        header = loop.header
        first = header.first
        if first is None:
            return None
        anchor = first
        node = first.prev
        while node is not None and isinstance(node, LabelEntry):
            anchor = node
            node = node.prev
        return anchor
