"""LOOP16 — short-loop 16-byte alignment (paper §III.C.e).

The 252.eon regression: a four-instruction loop that fits in one 16-byte
decode line ran 7% slower when it happened to straddle a line boundary,
because "the x86/64 Core-2 decodes instructions in 16-byte chunks.
Aligning the loop at 16 byte boundary resulted in decoding of only one
line instead of two."

The pass relaxes the function to get true addresses, then for every
innermost loop that is *short* (at most ``max_size`` bytes) and currently
spans more decode lines than its size requires, inserts a ``.p2align``
directive before the loop header so it starts on a 16-byte boundary.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.loops import build_lsg
from repro.analysis.relax import relax_section
from repro.ir.entries import DirectiveEntry, LabelEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass


def loop_extent(loop, layout) -> Optional[Tuple[int, int]]:
    """(start_address, end_address) byte extent of a loop's blocks."""
    start = None
    end = None
    for block in loop.all_blocks():
        for entry in block.entries:
            place = layout.placement.get(entry)
            if place is None:
                return None
            if start is None or place.address < start:
                start = place.address
            if end is None or place.address + place.size > end:
                end = place.address + place.size
    if start is None:
        return None
    return start, end


def lines_spanned(start: int, end: int, line_bytes: int) -> int:
    if end <= start:
        return 0
    return (end - 1) // line_bytes - start // line_bytes + 1


def minimal_lines(size: int, line_bytes: int) -> int:
    return (size + line_bytes - 1) // line_bytes


@register_func_pass("LOOP16")
class ShortLoopAlignPass(MaoFunctionPass):
    """Align short innermost loops to 16-byte decode-line boundaries."""

    OPTIONS = {
        "line": 16,          # decode-line size in bytes
        "max_size": 64,      # only consider loops up to this many bytes
        "max_skip": 15,      # .p2align max-skip budget
        "count_only": False,
    }

    def Go(self) -> bool:
        line_bytes = int(self.option("line"))
        max_size = int(self.option("max_size"))
        cfg = build_cfg(self.function, self.unit)
        lsg = build_lsg(cfg)
        if not lsg.non_root_loops():
            return True
        layout = relax_section(self.unit, self.function.section)

        for loop in lsg.inner_loops():
            if not loop.is_reducible:
                self.bump("skipped_irreducible")
                continue
            extent = loop_extent(loop, layout)
            if extent is None:
                continue
            start, end = extent
            size = end - start
            if size == 0 or size > max_size:
                continue
            spanned = lines_spanned(start, end, line_bytes)
            minimal = minimal_lines(size, line_bytes)
            self.bump("short_loops")
            if spanned <= minimal:
                continue
            header_entry = self._header_anchor(loop)
            if header_entry is None:
                continue
            self.bump("aligned")
            self.Trace(1, "aligning loop at %#x (%d bytes, %d->%d lines)",
                       start, size, spanned, minimal)
            if not self.option("count_only"):
                power = line_bytes.bit_length() - 1
                directive = DirectiveEntry(
                    "p2align", "%d,,%d" % (power, self.option("max_skip")))
                self.unit.insert_before(header_entry, directive)
        return True

    def _header_anchor(self, loop):
        """The entry before which to insert alignment: the header's label
        if it has one, else its first instruction."""
        header = loop.header
        first = header.first
        if first is None:
            return None
        # Walk back over the labels immediately preceding the first insn.
        anchor = first
        node = first.prev
        while node is not None and isinstance(node, LabelEntry):
            anchor = node
            node = node.prev
        return anchor
