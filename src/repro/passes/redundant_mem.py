"""REDMOV — redundant memory-access removal (paper §III.B.c).

Because of phase-ordering and register allocation in GCC::

    movq 24(%rsp), %rdx
    movq 24(%rsp), %rcx     # same load again

The second load is rewritten to reuse the first register::

    movq 24(%rsp), %rdx
    movq %rdx, %rcx

which is two bytes shorter and performs one explicit memory access instead
of two.  Conditions: identical memory operands and widths, and between the
two loads no store/barrier, no redefinition of the first destination, and
no redefinition of the address registers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.ir.entries import InstructionEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.passes.util import memory_address_groups, same_memory_operand
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction
from repro.x86.operands import Memory, RegisterOperand


def _is_plain_load(insn: Instruction) -> bool:
    return (insn.base == "mov" and len(insn.operands) == 2
            and isinstance(insn.operands[0], Memory)
            and isinstance(insn.operands[1], RegisterOperand)
            and not insn.operands[0].indirect)


@register_func_pass("REDMOV")
class RedundantMemAccessPass(MaoFunctionPass):
    """Rewrite repeated loads of the same address to register moves."""

    OPTIONS = {"count_only": False, "window": 8}

    def Go(self) -> bool:
        window: int = int(self.option("window"))
        cfg = build_cfg(self.function, self.unit)
        for block in cfg.blocks:
            # (entry, mem, dest_group) of loads still valid for reuse.
            available: List[Tuple[InstructionEntry, Memory, str]] = []
            for entry in block.entries:
                insn = entry.insn
                if _is_plain_load(insn):
                    mem_op = insn.operands[0]
                    dst: RegisterOperand = insn.operands[1]
                    match = self._find_match(available, insn, mem_op)
                    if match is not None:
                        first_dst = match
                        self.bump("rewritten")
                        self.Trace(2, "reusing %%%s for %s",
                                   first_dst.reg.name, insn)
                        if not self.option("count_only"):
                            insn.operands = [RegisterOperand(first_dst.reg),
                                             dst]
                            insn.encoding = None
                        self._invalidate(available, insn)
                        if not self.option("count_only"):
                            # The rewritten mov is itself a reusable copy
                            # only if it still loads; it doesn't — drop it
                            # from the window but keep the original live.
                            continue
                    self._invalidate(available, insn)
                    if dst.reg.group not in memory_address_groups(mem_op):
                        available.append((entry, mem_op, dst.reg.group))
                        if len(available) > window:
                            available.pop(0)
                    continue
                self._step(available, insn)
        return True

    def _find_match(self, available, insn: Instruction,
                    mem_op: Memory) -> Optional[RegisterOperand]:
        width = insn.effective_width()
        for entry, prev_mem, group in available:
            prev_insn = entry.insn
            if not same_memory_operand(prev_mem, mem_op):
                continue
            if prev_insn.effective_width() != width:
                continue
            dst = prev_insn.operands[1]
            if isinstance(dst, RegisterOperand):
                return dst
        return None

    def _invalidate(self, available, insn: Instruction,
                    skip_last: bool = False) -> None:
        """Drop window entries killed by *insn*'s register defs."""
        try:
            defs = sideeffects.reg_defs(insn)
        except sideeffects.UnknownSideEffects:
            available.clear()
            return
        keep = []
        items = available[:-1] if skip_last else list(available)
        tail = available[-1:] if skip_last else []
        for item in items:
            entry, mem_op, group = item
            if group in defs:
                continue
            if any(g in defs for g in memory_address_groups(mem_op)):
                continue
            keep.append(item)
        available[:] = keep + tail

    def _step(self, available, insn: Instruction) -> None:
        """Process a non-load instruction: stores/calls clear the window."""
        try:
            barrier = sideeffects.is_barrier(insn)
        except sideeffects.UnknownSideEffects:
            barrier = True
        if barrier or insn.writes_memory:
            available.clear()
            return
        self._invalidate(available, insn)
