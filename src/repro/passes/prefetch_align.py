"""PREFALIGN — keep prefetchable loads off prefetch-table alias slots.

Paper §III.C.h: "There are other alignment specific alias issues, as many
hardware features, e.g., the prefetchers, use tables indexed by address
bits at certain granularities, leading to alias effects.  For example, on
a specific Intel platform prefetchable loads should not be located at
multiples of 256 bytes.  We have not yet implemented a pass to address
this issue."

This pass implements it: after relaxation, any load instruction whose
*own address* is a multiple of the alias stride is nudged forward by a
single NOP, de-aliasing its prefetch-table entry.  Like BRALIGN, fixing
one site can move later ones, so the pass iterates to a fixpoint.
"""

from __future__ import annotations

from repro.analysis.relax import relax_section
from repro.ir.entries import InstructionEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.passes.util import make_nop


@register_func_pass("PREFALIGN")
class PrefetchAliasAlignPass(MaoFunctionPass):
    """Move loads off ``PC % stride == 0`` prefetch-alias addresses."""

    OPTIONS = {
        "stride": 256,       # the alias granularity
        "count_only": False,
    }

    def Go(self) -> bool:
        stride = int(self.option("stride"))
        if stride <= 0:
            return True
        for _ in range(64):
            layout = relax_section(self.unit, self.function.section)
            victim = None
            for entry in self.function.entries():
                if not isinstance(entry, InstructionEntry):
                    continue
                if not entry.insn.reads_memory:
                    continue
                place = layout.placement.get(entry)
                if place is not None and place.address % stride == 0:
                    victim = entry
                    break
            if victim is None:
                return True
            self.bump("loads_moved")
            self.Trace(1, "load at alias slot %#x: %s",
                       layout.placement[victim].address, victim.insn)
            if self.option("count_only"):
                return True
            self.unit.insert_before(victim,
                                    InstructionEntry(make_nop()))
        self.Trace(0, "warning: alias fixups did not converge")
        return True
