"""PREFNTA — inverse prefetching (paper §III.E.k).

"On Intel Core-2 platforms, a load instruction can be turned into a
non-temporal load by inserting a prefetch.nta instruction to the same
address before it.  This results in these loads always replacing a single
way in the associative caches.  This technique can be used to reduce cache
pollution.  We used a novel memory reuse distance profiler to identify
loads with little reuse."

The reuse-distance profile is supplied per load site (function name, entry
identity) — in this repo it is produced by
:func:`repro.profiling.reuse.reuse_distance_profile` over an interpreter
trace.  Loads whose observed reuse distance exceeds the cache capacity are
streaming accesses: their fills are made non-temporal by inserting a
``prefetchnta`` with the identical memory operand directly before them.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.entries import InstructionEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.x86.instruction import Instruction
from repro.x86.operands import Memory

#: Profile injected by the caller: maps a load's *source line number* ->
#: median reuse distance in cache lines (line keys survive re-parsing).
#: Passes receive plain option values via the option machinery; the
#: profile object rides on this module-level registry keyed by name.
_PROFILES: Dict[str, Dict[int, float]] = {}


def register_profile(name: str, profile: Dict[int, float]) -> None:
    """Make a reuse-distance profile available to the pass by name."""
    _PROFILES[name] = profile


@register_func_pass("PREFNTA")
class InversePrefetchPass(MaoFunctionPass):
    """Insert prefetchnta before low-reuse loads."""

    OPTIONS = {
        "profile": "",          # name registered via register_profile()
        "threshold": 512.0,     # reuse distance (lines) above which to NTA
        "count_only": False,
    }

    def Go(self) -> bool:
        profile_name = str(self.option("profile"))
        profile = _PROFILES.get(profile_name)
        if profile is None:
            self.Trace(1, "no reuse profile %r; nothing to do",
                       profile_name)
            return True
        threshold = float(self.option("threshold"))
        for entry in list(self.function.entries()):
            if not isinstance(entry, InstructionEntry):
                continue
            insn = entry.insn
            if not insn.reads_memory:
                continue
            distance = profile.get(entry.lineno)
            if distance is None or distance < threshold:
                continue
            mem_op = insn.memory_operand()
            if mem_op is None or mem_op.indirect:
                continue
            self.bump("loads_marked")
            self.Trace(1, "non-temporal load: %s (reuse %.0f)",
                       insn, distance)
            if self.option("count_only"):
                continue
            hint = Instruction("prefetchnta", [Memory(
                disp=mem_op.disp, base=mem_op.base, index=mem_op.index,
                scale=mem_op.scale, symbol=mem_op.symbol)])
            self.unit.insert_before(entry, InstructionEntry(hint))
        return True
