"""ADDADD — fold add/add immediate sequences (paper §III.B.d).

GCC 4.3 generates "multiple add instructions in a row"::

    add/sub rX, IMM1
    ... no re-definition/use of rX, no use of condition codes
    add/sub rX, IMM2

which folds into a single add/sub of the combined constant.  The first
instruction is deleted and the second rewritten; the fold requires that the
first instruction's flags are dead at the second (no condition-code reads
between or after the first before the next flags write).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import FLAG_PREFIX, Liveness
from repro.ir.entries import InstructionEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction
from repro.x86.operands import Immediate, RegisterOperand
from repro.x86.registers import suffix_for_width


def _imm_addsub(insn: Instruction) -> Optional[Tuple[str, int, str, int]]:
    """(base, signed delta, dest group, width) for `add/sub $imm, %reg`."""
    if insn.base not in ("add", "sub") or len(insn.operands) != 2:
        return None
    src, dst = insn.operands
    if not (isinstance(src, Immediate) and src.symbol is None
            and isinstance(dst, RegisterOperand)):
        return None
    width = insn.effective_width()
    if width is None:
        return None
    delta = src.value if insn.base == "add" else -src.value
    return insn.base, delta, dst.reg.group, width


@register_func_pass("ADDADD")
class AddAddFoldPass(MaoFunctionPass):
    """Fold consecutive immediate add/sub to the same register."""

    OPTIONS = {"count_only": False, "window": 6}

    def Go(self) -> bool:
        window = int(self.option("window"))
        cfg = build_cfg(self.function, self.unit)
        liveness = Liveness(cfg)
        for block in cfg.blocks:
            # pending: (entry, delta, group, width, reg_operand)
            pending: List[Tuple[InstructionEntry, int, str, int,
                                RegisterOperand]] = []
            for entry in list(block.entries):
                insn = entry.insn
                info = _imm_addsub(insn)
                if info is not None:
                    base, delta, group, width = info
                    effective_delta = delta
                    match = None
                    for item in pending:
                        if item[2] == group and item[3] == width:
                            match = item
                            break
                    if match is not None:
                        first_entry, first_delta = match[0], match[1]
                        combined = first_delta + delta
                        # The folded add computes the same final value, so
                        # ZF/SF/PF agree; CF/OF/AF may differ and must be
                        # dead after the second instruction.
                        live_flags = {
                            loc[len(FLAG_PREFIX):]
                            for loc in liveness.live_after(block, entry)
                            if loc.startswith(FLAG_PREFIX)}
                        if self._fits(combined, width) \
                                and live_flags <= {"ZF", "SF", "PF"}:
                            self.bump("folded")
                            self.Trace(2, "folding %s + %s",
                                       first_entry.insn, insn)
                            if not self.option("count_only"):
                                self._rewrite(block, first_entry, entry,
                                              combined, width)
                                # The rewritten entry now carries the
                                # combined constant; a later fold against
                                # it must use that value, not the
                                # original second-add delta.
                                effective_delta = combined
                            pending = [p for p in pending
                                       if p[0] is not first_entry]
                    # This add/sub becomes the new pending op for its reg;
                    # it also kills pending entries for the same group.
                    pending = [p for p in pending if p[2] != group]
                    pending.append((entry, effective_delta, group, width,
                                    insn.operands[1]))
                    if len(pending) > window:
                        pending.pop(0)
                    continue
                pending = self._filter(pending, insn)
        return True

    @staticmethod
    def _fits(value: int, width: int) -> bool:
        bits = min(width, 32)
        return -(1 << (bits - 1)) <= value <= (1 << (bits - 1)) - 1

    def _rewrite(self, block, first_entry: InstructionEntry,
                 second_entry: InstructionEntry, combined: int,
                 width: int) -> None:
        insn = second_entry.insn
        suffix = suffix_for_width(width)
        reg_op = insn.operands[1]
        if combined >= 0:
            new = Instruction("add" + suffix,
                              [Immediate(combined), reg_op])
        else:
            new = Instruction("sub" + suffix,
                              [Immediate(-combined), reg_op])
        new.address = insn.address
        second_entry.insn = new
        block.entries.remove(first_entry)
        self.unit.remove(first_entry)

    def _filter(self, pending, insn: Instruction):
        """Drop pending adds invalidated by *insn*."""
        if not pending:
            return pending
        try:
            uses = sideeffects.reg_uses(insn)
            defs = sideeffects.reg_defs(insn)
            reads_flags = bool(sideeffects.flags_read(insn))
            barrier = sideeffects.is_barrier(insn)
        except sideeffects.UnknownSideEffects:
            return []
        if barrier or reads_flags:
            # A condition-code read kills every pending fold (the first
            # add's flags would be observed).
            return []
        return [p for p in pending
                if p[2] not in uses and p[2] not in defs]
    # Note: the *final* add rewrites flags anyway, so flag reads after the
    # second add observe the same values post-fold.
