"""Pass registry, option parsing, and pipeline driving.

Pass invocation is controlled the way the paper describes (§III.A): passes
are named, and a ``--mao=`` option string both selects passes and sets
their options; the order of passes on the command line is the invocation
order::

    --mao=LFIND=trace[3]:ASM=o[/dev/null]

selects pass ``LFIND`` with option ``trace`` set to ``3``, then pass ``ASM``
with option ``o`` (output) set to ``/dev/null``.

Parallel pipeline
-----------------

``PassPipeline.run(unit, jobs=N)`` fans independent function-scoped passes
across a ``concurrent.futures`` pool.  Function bodies are disjoint, so a
function pass can run on every function concurrently; unit-scoped passes
(reading, emission) always fall back to serial.  ``PassReport`` merging is
deterministic: reports are appended in function order regardless of worker
completion order, so serial and parallel runs produce identical results.

Two backends exist.  ``thread`` (default) runs passes directly on the
shared IR — structural mutations are made atomic by the unit's mutation
lock.  ``process`` round-trips each eligible function through textual
assembly to a worker process (parse → pass → emit) and splices the result
back; functions whose span crosses sections, or that contain opaque
entries, transparently run in-process instead.
"""

from __future__ import annotations

import json
import re
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro import obs
from repro.ir.entries import MaoEntry, OpaqueEntry
from repro.ir.unit import Function, MaoUnit
from repro.passes.base import MaoFunctionPass, MaoPass, MaoUnitPass
from repro.result import register_schema

#: Version tag of the serialized PipelineResult/PassReport format.
PIPELINE_SCHEMA = register_schema("pipeline", "pymao.pipeline/1")

_FUNC_PASSES: Dict[str, Type[MaoFunctionPass]] = {}
_UNIT_PASSES: Dict[str, Type[MaoUnitPass]] = {}


def register_func_pass(name: str):
    """Class decorator: the REGISTER_FUNC_PASS macro equivalent."""
    def decorator(cls: Type[MaoFunctionPass]) -> Type[MaoFunctionPass]:
        cls.NAME = name
        _FUNC_PASSES[name] = cls
        return cls
    return decorator


def register_unit_pass(name: str):
    def decorator(cls: Type[MaoUnitPass]) -> Type[MaoUnitPass]:
        cls.NAME = name
        _UNIT_PASSES[name] = cls
        return cls
    return decorator


def registered_passes() -> List[str]:
    return sorted(set(_FUNC_PASSES) | set(_UNIT_PASSES))


def get_pass(name: str) -> Type[MaoPass]:
    if name in _FUNC_PASSES:
        return _FUNC_PASSES[name]
    if name in _UNIT_PASSES:
        return _UNIT_PASSES[name]
    raise KeyError("unknown pass %r (known: %s)"
                   % (name, ", ".join(registered_passes())))


_OPT_RE = re.compile(r"([a-zA-Z_][a-zA-Z_0-9]*)\[([^\]]*)\]")


def parse_pass_spec(spec: str) -> List[Tuple[str, Dict[str, Any]]]:
    """Parse ``PASS=opt[val]+opt2[val2]:PASS2`` into (name, options) pairs.

    The option grammar is strict: after ``=``, the text must be a
    ``+``-joined sequence of ``name[value]`` items covering the whole
    string — ``LFIND=trace[3]garbage`` is rejected rather than silently
    parsed as ``trace=3``.
    """
    result: List[Tuple[str, Dict[str, Any]]] = []
    for item in spec.split(":"):
        item = item.strip()
        if not item:
            continue
        if "=" in item:
            name, opt_text = item.split("=", 1)
            name = name.strip()
            if not name:
                raise ValueError("missing pass name in spec item %r" % item)
            options: Dict[str, Any] = {}
            pos = 0
            while pos < len(opt_text):
                match = _OPT_RE.match(opt_text, pos)
                if match is None:
                    raise ValueError(
                        "cannot parse options %r for pass %s "
                        "(junk at %r)" % (opt_text, name, opt_text[pos:]))
                options[match.group(1)] = match.group(2)
                pos = match.end()
                if pos < len(opt_text):
                    if opt_text[pos] != "+":
                        raise ValueError(
                            "cannot parse options %r for pass %s "
                            "(junk at %r)" % (opt_text, name, opt_text[pos:]))
                    pos += 1
                    if pos == len(opt_text):
                        raise ValueError(
                            "cannot parse options %r for pass %s "
                            "(trailing '+')" % (opt_text, name))
        else:
            name, options = item, {}
        result.append((name, options))
    return result


def canonical_pass_spec(items: List[Tuple[str, Dict[str, Any]]]) -> str:
    """Render ``(name, options)`` items as one canonical ``--mao=`` string.

    Pass order is semantic and preserved; option order within one pass is
    not, so options are emitted sorted by name.  The result round-trips
    through :func:`parse_pass_spec` (with option values stringified),
    which makes it a stable cache-key component: two spellings of the
    same pipeline produce the same canonical string.
    """
    parts: List[str] = []
    for name, options in items:
        if options:
            rendered = "+".join("%s[%s]" % (key, options[key])
                                for key in sorted(options))
            parts.append("%s=%s" % (name, rendered))
        else:
            parts.append(name)
    return ":".join(parts)


def encode_pass_spec(items: List[Tuple[str, Dict[str, Any]]]) -> str:
    """Injective encoding of a pass spec, for cache keying.

    :func:`canonical_pass_spec` is the human-readable ``--mao=`` form and
    is *not* injective for arbitrary option values: a value containing
    ``]`` or ``+`` can render identically to a different spec (e.g.
    ``x=1]+y[2`` vs ``x=1, y=2``, both ``P=x[1]+y[2]``).  The CLI never
    produces such values (:func:`parse_pass_spec` rejects them) but API
    callers passing ``(name, options)`` items can, so anything used as a
    cache-key component goes through this JSON rendering instead: option
    order is normalized by sorting, values are stringified the same way
    pass construction stringifies them, and JSON escaping makes distinct
    specs distinct strings.
    """
    return json.dumps([[name, {key: str(value)
                               for key, value in options.items()}]
                       for name, options in items],
                      sort_keys=True, separators=(",", ":"))


def spec_has_side_effects(items: List[Tuple[str, Dict[str, Any]]]) -> bool:
    """True when any pass in *items* declares ``SIDE_EFFECTS``.

    Replaying a cached artifact restores the emitted assembly and the
    report but runs no pass, so a pass whose value is an effect outside
    the IR (``ASM`` writing its ``o`` target) would silently do nothing
    on a warm run.  Callers that replay results use this to bypass the
    cache for such specs.  Unregistered names conservatively count as
    effect-free: they fail pipeline construction anyway.
    """
    for name, _options in items:
        cls: Optional[Type[MaoPass]] = (_UNIT_PASSES.get(name)
                                        or _FUNC_PASSES.get(name))
        if cls is not None and getattr(cls, "SIDE_EFFECTS", False):
            return True
    return False


@dataclass
class PassReport:
    """Outcome of one pass over one function (or the unit)."""

    pass_name: str
    scope: str                     # function name or "<unit>"
    stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Frozen wire format (one row of ``pymao.pipeline/1``)."""
        return {"pass": self.pass_name, "scope": self.scope,
                "stats": dict(self.stats)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PassReport":
        return cls(pass_name=data["pass"], scope=data["scope"],
                   stats=dict(data.get("stats") or {}))


@dataclass
class PipelineResult:
    reports: List[PassReport] = field(default_factory=list)

    def total(self, pass_name: str, stat: str) -> int:
        return sum(r.stats.get(stat, 0) for r in self.reports
                   if r.pass_name == pass_name)

    def stats_for(self, pass_name: str) -> Dict[str, int]:
        combined: Dict[str, int] = {}
        for report in self.reports:
            if report.pass_name != pass_name:
                continue
            for key, value in report.stats.items():
                combined[key] = combined.get(key, 0) + value
        return combined

    def pass_names(self) -> List[str]:
        """Distinct pass names in first-report order."""
        seen: List[str] = []
        for report in self.reports:
            if report.pass_name not in seen:
                seen.append(report.pass_name)
        return seen

    def to_dict(self) -> Dict[str, Any]:
        """Stable, versioned wire format — consumed by
        ``scripts/perf_report.py`` and the bench JSON files."""
        return {"schema": PIPELINE_SCHEMA,
                "reports": [r.to_dict() for r in self.reports]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PipelineResult":
        schema = data.get("schema")
        if schema != PIPELINE_SCHEMA:
            raise ValueError("unsupported pipeline schema %r (expected %r)"
                             % (schema, PIPELINE_SCHEMA))
        return cls(reports=[PassReport.from_dict(r)
                            for r in data.get("reports", ())])


class PassPipeline:
    """An ordered list of named passes applied to a MaoUnit."""

    def __init__(self,
                 passes: Optional[List[Tuple[str, Dict[str, Any]]]] = None
                 ) -> None:
        self.passes: List[Tuple[str, Dict[str, Any]]] = list(passes or [])

    @classmethod
    def from_spec(cls, spec: str) -> "PassPipeline":
        return cls(parse_pass_spec(spec))

    def add(self, name: str, **options: Any) -> "PassPipeline":
        self.passes.append((name, options))
        return self

    def run(self, unit: MaoUnit, jobs: int = 1,
            parallel_backend: Optional[str] = None, *,
            backend: Optional[str] = None) -> PipelineResult:
        """Run the pipeline.

        ``jobs`` > 1 fans each function-scoped pass over the unit's
        functions using a ``concurrent.futures`` pool
        (``parallel_backend``: ``"thread"`` or ``"process"``); unit
        passes always run serially.  Reports — and trace spans, when
        tracing is on — are merged in function order, so the result is
        deterministic and identical to a serial run.

        ``backend=`` is the deprecated spelling of ``parallel_backend=``
        (the CLI flag has always been ``--parallel-backend``); it still
        works but warns.
        """
        parallel_backend = _resolve_backend(parallel_backend, backend)
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        if parallel_backend not in ("thread", "process"):
            raise ValueError("unknown pipeline backend %r"
                             % parallel_backend)
        result = PipelineResult()
        for name, options in self.passes:
            cls = get_pass(name)
            if issubclass(cls, MaoFunctionPass):
                parallel = jobs > 1 and len(unit.functions) > 1
                with obs.span("pass:%s" % name, kind="function",
                              parallel=parallel) as pass_span:
                    if parallel:
                        keep_going = self._run_function_pass_parallel(
                            cls, name, options, unit, result, jobs,
                            parallel_backend, pass_span)
                    else:
                        keep_going = self._run_function_pass_serial(
                            cls, name, options, unit, result, pass_span)
                if not keep_going:
                    return result
            else:
                with obs.span("pass:%s" % name, kind="unit") as pass_span:
                    pass_obj = cls(options, unit)
                    keep_going = pass_obj.Go()
                    if pass_span:
                        pass_span.attach(stats=dict(pass_obj.stats))
                _record(result, PassReport(name, "<unit>", pass_obj.stats))
                if not keep_going:
                    return result
        return result

    @staticmethod
    def _run_function_pass_serial(cls: Type[MaoFunctionPass], name: str,
                                  options: Dict[str, Any], unit: MaoUnit,
                                  result: PipelineResult,
                                  pass_span: Any) -> bool:
        for function in unit.functions:
            stats, keep_going, span = _apply_function_pass(
                cls, options, unit, function)
            obs.adopt_span(pass_span, span)
            _record(result, PassReport(name, function.name, stats))
            if not keep_going:
                return False
        return True

    @staticmethod
    def _run_function_pass_parallel(cls: Type[MaoFunctionPass], name: str,
                                    options: Dict[str, Any], unit: MaoUnit,
                                    result: PipelineResult, jobs: int,
                                    parallel_backend: str,
                                    pass_span: Any) -> bool:
        functions = list(unit.functions)
        if parallel_backend == "thread":
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(pool.map(
                    lambda fn: _apply_function_pass(cls, options, unit, fn),
                    functions))
        else:
            outcomes = _run_process_backend(
                cls, name, options, unit, functions, jobs)
        # Deterministic merge: function order, not completion order —
        # reports and worker span subtrees alike.
        for function, (stats, keep_going, span) in zip(functions, outcomes):
            obs.adopt_span(pass_span, span)
            _record(result, PassReport(name, function.name, stats))
            if not keep_going:
                return False
        return True


def _resolve_backend(parallel_backend: Optional[str],
                     backend: Optional[str]) -> str:
    """Canonicalize the pool-kind kwarg; ``backend=`` is a deprecated
    alias kept as a shim for pre-``pymao.pipeline/1`` callers."""
    if backend is not None:
        warnings.warn(
            "the backend= keyword is deprecated; use parallel_backend= "
            "(matching the CLI's --parallel-backend)",
            DeprecationWarning, stacklevel=3)
        if parallel_backend is not None and parallel_backend != backend:
            raise ValueError(
                "conflicting parallel_backend=%r and backend=%r"
                % (parallel_backend, backend))
        return backend
    return parallel_backend if parallel_backend is not None else "thread"


def _record(result: PipelineResult, report: PassReport) -> None:
    """Append one report and mirror its stats into the metrics registry
    (``pass.<NAME>.<stat>`` counters absorb the old ``--stats`` data)."""
    result.reports.append(report)
    registry = obs.REGISTRY
    registry.inc("pass.%s.runs" % report.pass_name)
    for stat, value in report.stats.items():
        registry.inc("pass.%s.%s" % (report.pass_name, stat), value)


def _apply_function_pass(cls: Type[MaoFunctionPass],
                         options: Dict[str, Any], unit: MaoUnit,
                         function: Function
                         ) -> Tuple[Dict[str, int], bool, Any]:
    """Instantiate and run one function pass in-process.

    The span is *detached* — workers cannot reach the coordinator's span
    stack — and handed back for an in-order adopt; ``None`` when tracing
    is off.
    """
    with obs.detached_span("fn:%s" % function.name) as span:
        pass_obj = cls(options, unit, function)
        pass_obj.dump_ir("before")
        keep_going = pass_obj.Go()
        pass_obj.dump_ir("after")
        if span:
            span.attach(stats=dict(pass_obj.stats))
    return pass_obj.stats, keep_going, (span if span else None)


# ---------------------------------------------------------------------------
# Process backend: round-trip a function through textual assembly.
# ---------------------------------------------------------------------------

def _function_span(function: Function) -> Optional[List[MaoEntry]]:
    """The function's entries, or None if it is ineligible for the
    process backend (span crosses sections, or contains opaque entries)."""
    span: List[MaoEntry] = []
    entry = function.start
    while entry is not None and entry is not function.end:
        if entry.section is not function.section:
            return None
        if isinstance(entry, OpaqueEntry):
            return None
        span.append(entry)
        entry = entry.next
    return span


def _render_function(function: Function, span: List[MaoEntry]) -> str:
    section = function.section
    if section.name == ".text":
        header = [".text"]
    elif section.flags:
        header = ['.section %s, "%s"' % (section.name, section.flags)]
    else:
        header = [".section %s" % section.name]
    header.append(".type %s, @function" % function.name)
    return "\n".join(header + [e.to_asm() for e in span]) + "\n"


def _pass_process_worker(payload: Tuple[str, Dict[str, Any], str, str, bool]
                         ) -> Tuple[str, Dict[str, int], bool,
                                    Optional[Dict[str, Any]]]:
    pass_name, options, function_name, asm_text, want_spans = payload
    import repro.passes  # noqa: F401 — register built-ins in spawned children
    from repro.ir.builder import parse_unit

    # The parent's tracing flag does not survive into a spawned child (and
    # must not leak out of a forked one), so it rides in the payload and
    # spans come back serialized for the deterministic merge.
    obs.set_enabled(want_spans)
    unit = parse_unit(asm_text)
    cls = get_pass(pass_name)
    function = unit.function_named(function_name)
    stats, keep_going, span = _apply_function_pass(
        cls, options, unit, function)
    span_data = span.to_dict() if span is not None else None
    return unit.to_asm(), stats, keep_going, span_data


def _splice_function(unit: MaoUnit, function: Function,
                     new_text: str) -> None:
    """Replace the function's body with the worker's optimized text.

    The original LabelEntry node is kept in place — neighbouring
    ``Function`` views use it as their ``end`` anchor — and only the
    entries after it are swapped out.
    """
    from repro.ir.builder import parse_unit

    new_unit = parse_unit(new_text)
    new_fn = new_unit.function_named(function.name)

    body: List[MaoEntry] = []
    node = new_fn.start.next
    while node is not None:
        nxt = node.next
        body.append(node)
        node = nxt

    node = function.start.next
    while node is not None and node is not function.end:
        nxt = node.next
        unit.remove(node)
        node = nxt

    anchor: MaoEntry = function.start
    for entry in body:
        entry.prev = entry.next = None
        entry.section = function.section
        unit.insert_after(anchor, entry)
        anchor = entry


def _run_process_backend(cls: Type[MaoFunctionPass], name: str,
                         options: Dict[str, Any], unit: MaoUnit,
                         functions: List[Function], jobs: int
                         ) -> List[Tuple[Dict[str, int], bool, Any]]:
    want_spans = obs.enabled()
    payload_indices: List[int] = []
    payloads: List[Tuple[str, Dict[str, Any], str, str, bool]] = []
    for index, function in enumerate(functions):
        span = _function_span(function)
        if span is not None:
            payload_indices.append(index)
            payloads.append(
                (name, options, function.name,
                 _render_function(function, span), want_spans))

    worker_results: Dict[int, tuple] = {}
    if payloads:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for index, outcome in zip(payload_indices,
                                      pool.map(_pass_process_worker,
                                               payloads)):
                worker_results[index] = outcome

    outcomes: List[Tuple[Dict[str, int], bool, Any]] = []
    for index, function in enumerate(functions):
        if index in worker_results:
            new_text, stats, keep_going, span_data = worker_results[index]
            _splice_function(unit, function, new_text)
            span = obs.Span.from_dict(span_data) if span_data else None
            outcomes.append((stats, keep_going, span))
        else:
            # Ineligible for text round-trip: run in-process instead.
            outcomes.append(
                _apply_function_pass(cls, options, unit, function))
    return outcomes


def run_passes(unit: MaoUnit, spec: str, jobs: int = 1,
               parallel_backend: Optional[str] = None, *,
               backend: Optional[str] = None) -> PipelineResult:
    """Convenience: run a ``--mao=`` style spec string over a unit.

    ``backend=`` is the deprecated alias of ``parallel_backend=``.
    """
    return PassPipeline.from_spec(spec).run(
        unit, jobs=jobs,
        parallel_backend=_resolve_backend(parallel_backend, backend))
