"""Pass registry, option parsing, and pipeline driving.

Pass invocation is controlled the way the paper describes (§III.A): passes
are named, and a ``--mao=`` option string both selects passes and sets
their options; the order of passes on the command line is the invocation
order::

    --mao=LFIND=trace[3]:ASM=o[/dev/null]

selects pass ``LFIND`` with option ``trace`` set to ``3``, then pass ``ASM``
with option ``o`` (output) set to ``/dev/null``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.ir.unit import MaoUnit
from repro.passes.base import MaoFunctionPass, MaoPass, MaoUnitPass

_FUNC_PASSES: Dict[str, Type[MaoFunctionPass]] = {}
_UNIT_PASSES: Dict[str, Type[MaoUnitPass]] = {}


def register_func_pass(name: str):
    """Class decorator: the REGISTER_FUNC_PASS macro equivalent."""
    def decorator(cls: Type[MaoFunctionPass]) -> Type[MaoFunctionPass]:
        cls.NAME = name
        _FUNC_PASSES[name] = cls
        return cls
    return decorator


def register_unit_pass(name: str):
    def decorator(cls: Type[MaoUnitPass]) -> Type[MaoUnitPass]:
        cls.NAME = name
        _UNIT_PASSES[name] = cls
        return cls
    return decorator


def registered_passes() -> List[str]:
    return sorted(set(_FUNC_PASSES) | set(_UNIT_PASSES))


def get_pass(name: str) -> Type[MaoPass]:
    if name in _FUNC_PASSES:
        return _FUNC_PASSES[name]
    if name in _UNIT_PASSES:
        return _UNIT_PASSES[name]
    raise KeyError("unknown pass %r (known: %s)"
                   % (name, ", ".join(registered_passes())))


_OPT_RE = re.compile(r"([a-zA-Z_][a-zA-Z_0-9]*)\[([^\]]*)\]")


def parse_pass_spec(spec: str) -> List[Tuple[str, Dict[str, Any]]]:
    """Parse ``PASS=opt[val]+opt2[val2]:PASS2`` into (name, options) pairs."""
    result: List[Tuple[str, Dict[str, Any]]] = []
    for item in spec.split(":"):
        item = item.strip()
        if not item:
            continue
        if "=" in item:
            name, opt_text = item.split("=", 1)
            options: Dict[str, Any] = {}
            consumed = 0
            for match in _OPT_RE.finditer(opt_text):
                options[match.group(1)] = match.group(2)
                consumed += 1
            if consumed == 0 and opt_text:
                raise ValueError("cannot parse options %r for pass %s"
                                 % (opt_text, name))
        else:
            name, options = item, {}
        result.append((name, options))
    return result


@dataclass
class PassReport:
    """Outcome of one pass over one function (or the unit)."""

    pass_name: str
    scope: str                     # function name or "<unit>"
    stats: Dict[str, int] = field(default_factory=dict)


@dataclass
class PipelineResult:
    reports: List[PassReport] = field(default_factory=list)

    def total(self, pass_name: str, stat: str) -> int:
        return sum(r.stats.get(stat, 0) for r in self.reports
                   if r.pass_name == pass_name)

    def stats_for(self, pass_name: str) -> Dict[str, int]:
        combined: Dict[str, int] = {}
        for report in self.reports:
            if report.pass_name != pass_name:
                continue
            for key, value in report.stats.items():
                combined[key] = combined.get(key, 0) + value
        return combined


class PassPipeline:
    """An ordered list of named passes applied to a MaoUnit."""

    def __init__(self,
                 passes: Optional[List[Tuple[str, Dict[str, Any]]]] = None
                 ) -> None:
        self.passes: List[Tuple[str, Dict[str, Any]]] = list(passes or [])

    @classmethod
    def from_spec(cls, spec: str) -> "PassPipeline":
        return cls(parse_pass_spec(spec))

    def add(self, name: str, **options: Any) -> "PassPipeline":
        self.passes.append((name, options))
        return self

    def run(self, unit: MaoUnit) -> PipelineResult:
        result = PipelineResult()
        for name, options in self.passes:
            cls = get_pass(name)
            if issubclass(cls, MaoFunctionPass):
                for function in unit.functions:
                    pass_obj = cls(options, unit, function)
                    pass_obj.dump_ir("before")
                    keep_going = pass_obj.Go()
                    pass_obj.dump_ir("after")
                    result.reports.append(
                        PassReport(name, function.name, pass_obj.stats))
                    if not keep_going:
                        return result
            else:
                pass_obj = cls(options, unit)
                keep_going = pass_obj.Go()
                result.reports.append(
                    PassReport(name, "<unit>", pass_obj.stats))
                if not keep_going:
                    return result
        return result


def run_passes(unit: MaoUnit, spec: str) -> PipelineResult:
    """Convenience: run a ``--mao=`` style spec string over a unit."""
    return PassPipeline.from_spec(spec).run(unit)
