"""MAO optimization passes.

Importing this package registers every built-in pass with the global
registry (the Python equivalent of the paper's ``REGISTER_FUNC_PASS``
macro).  Passes are invoked by name through
:class:`~repro.passes.manager.PassPipeline`, typically built from a
``--mao=...`` option string by :func:`~repro.passes.manager.parse_pass_spec`.
"""

from repro.passes.base import MaoFunctionPass, MaoPass, MaoUnitPass
from repro.passes.manager import (
    PassPipeline,
    get_pass,
    parse_pass_spec,
    register_func_pass,
    register_unit_pass,
    registered_passes,
    run_passes,
)

# Importing the modules registers the passes.
from repro.passes import (  # noqa: F401
    add_add,
    address_sim,
    asm_emit,
    branch_align,
    instrument,
    loop16,
    lsd_fit,
    nopinizer,
    nopkiller,
    prefetch_align,
    prefetch_nta,
    redundant_mem,
    redundant_test,
    redundant_zext,
    scalar,
    scheduler,
)

__all__ = [
    "MaoPass",
    "MaoFunctionPass",
    "MaoUnitPass",
    "PassPipeline",
    "register_func_pass",
    "register_unit_pass",
    "registered_passes",
    "get_pass",
    "parse_pass_spec",
    "run_passes",
]
