"""REDZEE — redundant zero-extension removal (paper §III.B.a).

GCC 4.3/4.4 "does not model sign- or zero-extension well", producing::

    andl $255, %eax
    mov  %eax, %eax      # meant to zero-extend; redundant

In x86-64, *every* write to a 32-bit register already zero-extends into the
full 64-bit register, so a ``mov %eXX, %eXX`` is redundant whenever the
most recent definition of the register was a 32-bit write.  If the last
definition was 64-bit (or unknown — e.g. an incoming argument), the move
truncates the upper half and must be kept.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.cfg import build_cfg
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction
from repro.x86.operands import RegisterOperand


def _is_self_mov32(insn: Instruction) -> bool:
    if insn.base != "mov" or len(insn.operands) != 2:
        return False
    src, dst = insn.operands
    return (isinstance(src, RegisterOperand)
            and isinstance(dst, RegisterOperand)
            and src.reg.width == 32 and dst.reg.width == 32
            and src.reg.group == dst.reg.group)


def _def_width(insn: Instruction, group: str) -> Optional[int]:
    """Width of insn's write to *group* via a register destination."""
    dst = insn.dest
    if isinstance(dst, RegisterOperand) and dst.reg.group == group:
        if insn.base in ("movsx", "movzx"):
            return insn.info.extend[1]
        return dst.reg.width
    return None


@register_func_pass("REDZEE")
class RedundantZeroExtensionPass(MaoFunctionPass):
    """Delete ``mov %eXX, %eXX`` whose zero-extension already happened."""

    OPTIONS = {"count_only": False}

    def Go(self) -> bool:
        cfg = build_cfg(self.function, self.unit)
        for block in cfg.blocks:
            last_def_width: Dict[str, int] = {}
            for entry in list(block.entries):
                insn = entry.insn
                if _is_self_mov32(insn):
                    group = insn.operands[0].reg.group
                    self.bump("candidates")
                    if last_def_width.get(group) == 32:
                        self.bump("removed")
                        self.Trace(2, "removing %s", insn)
                        if not self.option("count_only"):
                            block.entries.remove(entry)
                            self.unit.remove(entry)
                        continue
                try:
                    defs = sideeffects.reg_defs(insn)
                except sideeffects.UnknownSideEffects:
                    last_def_width.clear()
                    continue
                for group in defs:
                    width = _def_width(insn, group)
                    if width is not None:
                        last_def_width[group] = width
                    else:
                        # Implicit or unknown-width write: be conservative.
                        last_def_width[group] = 64
        return True
