"""Shared helpers for optimization passes."""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.analysis.cfg import CFG, BasicBlock
from repro.ir.entries import InstructionEntry
from repro.ir.unit import Function
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction, make, mem
from repro.x86.operands import Memory, RegisterOperand


def make_nop() -> Instruction:
    """A single-byte NOP."""
    return Instruction("nop")


def make_nop5() -> Instruction:
    """A 5-byte NOP: ``nopl 64(%rax,%rax,1)`` -> 0f 1f 44 00 40.

    (The encoder always picks the shortest displacement form, so a zero
    displacement would encode in 4 bytes; the disp8 form pins 5.)"""
    return make("nopl", mem(64, "rax", "rax", 1))


def nop_run(count: int) -> List[Instruction]:
    """*count* bytes worth of single-byte NOP instructions."""
    return [make_nop() for _ in range(count)]


def same_memory_operand(a: Memory, b: Memory) -> bool:
    """Textual/structural equality of two memory operands."""
    return (a.disp == b.disp and a.symbol == b.symbol
            and a.scale == b.scale
            and (a.base.group if a.base else None)
            == (b.base.group if b.base else None)
            and (a.index.group if a.index else None)
            == (b.index.group if b.index else None))


def memory_address_groups(mem_op: Memory) -> List[str]:
    groups = []
    if mem_op.base is not None and mem_op.base.group != "rip":
        groups.append(mem_op.base.group)
    if mem_op.index is not None:
        groups.append(mem_op.index.group)
    return groups


def single_register_operand(insn: Instruction,
                            index: int) -> Optional[RegisterOperand]:
    if index < len(insn.operands):
        op = insn.operands[index]
        if isinstance(op, RegisterOperand):
            return op
    return None


def block_windows(cfg: CFG) -> Iterator[Tuple[BasicBlock,
                                              List[InstructionEntry]]]:
    """(block, entries) pairs for pattern scanning."""
    for block in cfg.blocks:
        yield block, block.entries


def kills_any(insn: Instruction, groups) -> bool:
    try:
        return bool(sideeffects.reg_defs(insn) & set(groups))
    except sideeffects.UnknownSideEffects:
        return True


def uses_any(insn: Instruction, groups) -> bool:
    try:
        return bool(sideeffects.reg_uses(insn) & set(groups))
    except sideeffects.UnknownSideEffects:
        return True


def function_size_and_addresses(function: Function):
    """Relax the function's section; returns the SectionLayout."""
    from repro.analysis.relax import relax_section
    return relax_section(function.unit, function.section)
