"""NOPKILL — the Nop Killer (paper §III.E.j).

The compiler sprinkles alignment directives "based on some rough ideas
about an underlying micro-architecture".  This pass removes all alignment
directives and standalone NOP filler instructions, answering "how effective
these alignment directives actually are" — the paper found effects in the
noise for most benchmarks, plus ~1% code-size savings.
"""

from __future__ import annotations

from repro.analysis.relax import _alignment_request, relax_section
from repro.ir.entries import DirectiveEntry, InstructionEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass


@register_func_pass("NOPKILL")
class NopKillerPass(MaoFunctionPass):
    """Strip alignment directives and NOP instructions."""

    OPTIONS = {"count_only": False, "kill_nops": True,
               "kill_directives": True}

    def Go(self) -> bool:
        size_before = None
        if self.trace_level >= 1:
            size_before = relax_section(self.unit,
                                        self.function.section).size
        for entry in list(self.function.entries()):
            if isinstance(entry, DirectiveEntry) \
                    and self.option("kill_directives") \
                    and _alignment_request(entry) is not None:
                self.bump("directives_removed")
                if not self.option("count_only"):
                    self.unit.remove(entry)
            elif isinstance(entry, InstructionEntry) \
                    and self.option("kill_nops") and entry.insn.is_nop:
                self.bump("nops_removed")
                if not self.option("count_only"):
                    self.unit.remove(entry)
        if size_before is not None:
            size_after = relax_section(self.unit,
                                       self.function.section).size
            self.Trace(1, "code size %d -> %d bytes", size_before,
                       size_after)
        return True
