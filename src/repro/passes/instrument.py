"""INSTRUMENT — dynamic-instrumentation support (paper §III.E.l).

Binary instrumenters want to overwrite an instruction with a 5-byte branch
to trampoline code *atomically*.  "A simpler approach is to guarantee that
single 5-byte (nop) instructions reside at the desired instrumentation
points, and that those instructions do not cross cache lines.  MAO offers
an experimental pass that performs this transformation at all function
entry and exit points."

The pass inserts a 5-byte NOP (``0f 1f 44 00 00``) after each function
entry label and before every ``ret``, then verifies against the relaxed
layout that no inserted NOP crosses a cache-line boundary — padding with
single-byte NOPs when one does.
"""

from __future__ import annotations

from typing import List

from repro.analysis.relax import relax_section
from repro.ir.entries import InstructionEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.passes.util import make_nop, make_nop5


@register_func_pass("INSTRUMENT")
class InstrumentationPointsPass(MaoFunctionPass):
    """Place non-line-crossing 5-byte NOPs at function entry/exit."""

    OPTIONS = {"cache_line": 64, "count_only": False}

    def Go(self) -> bool:
        if self.option("count_only"):
            self.bump("entry_points")
            for entry in self.function.entries():
                if isinstance(entry, InstructionEntry) \
                        and entry.insn.is_ret:
                    self.bump("exit_points")
            return True

        inserted: List[InstructionEntry] = []
        # Entry point: right after the function label.
        node = self.function.start
        entry_nop = InstructionEntry(make_nop5())
        self.unit.insert_after(node, entry_nop)
        inserted.append(entry_nop)
        self.bump("entry_points")

        for entry in list(self.function.entries()):
            if isinstance(entry, InstructionEntry) and entry.insn.is_ret \
                    and entry is not entry_nop:
                exit_nop = InstructionEntry(make_nop5())
                self.unit.insert_before(entry, exit_nop)
                inserted.append(exit_nop)
                self.bump("exit_points")

        self._fix_line_crossings(inserted)
        return True

    def _fix_line_crossings(self, inserted: List[InstructionEntry]) -> None:
        """Pad until no instrumentation NOP crosses a cache line."""
        line = int(self.option("cache_line"))
        for _ in range(16):
            layout = relax_section(self.unit, self.function.section)
            crossing = None
            for nop_entry in inserted:
                place = layout.placement.get(nop_entry)
                if place is None:
                    continue
                if place.address // line \
                        != (place.address + place.size - 1) // line:
                    crossing = (nop_entry, place)
                    break
            if crossing is None:
                return
            nop_entry, place = crossing
            pad = line - (place.address % line)
            self.bump("padding_nops", pad)
            self.Trace(1, "5-byte nop at %#x crosses a cache line; "
                       "padding %d bytes", place.address, pad)
            for _ in range(pad):
                self.unit.insert_before(nop_entry,
                                        InstructionEntry(make_nop()))
        self.Trace(0, "warning: line-crossing fixups did not converge")
