"""Scalar optimizations (paper §III.D): unreachable-code elimination and
constant folding.

"There is typically not much opportunity left in compiler generated output
files.  However, as we seek to make MAO useful in simple code generators,
offering a standard set of scalar optimizations appears valuable."
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import FLAG_PREFIX, Liveness
from repro.ir.entries import InstructionEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction
from repro.x86.operands import Immediate, LabelRef, Memory, RegisterOperand
from repro.x86.registers import suffix_for_width


def _referenced_labels(unit) -> Set[str]:
    """Every label name referenced by any operand or data directive."""
    names: Set[str] = set()
    for entry in unit.entries():
        if isinstance(entry, InstructionEntry):
            for op in entry.insn.operands:
                if isinstance(op, LabelRef):
                    names.add(op.name)
                elif isinstance(op, Memory) and op.symbol:
                    names.add(op.symbol)
                elif isinstance(op, Immediate) and op.symbol:
                    names.add(op.symbol)
        elif entry.is_directive:
            for arg in getattr(entry, "str_args", lambda: [])():
                names.add(arg.split("+")[0].split("-")[0].strip())
    return names


@register_func_pass("UNREACH")
class UnreachableCodeEliminationPass(MaoFunctionPass):
    """Remove blocks not reachable from the function entry."""

    OPTIONS = {"count_only": False}

    def Go(self) -> bool:
        cfg = build_cfg(self.function, self.unit)
        if cfg.entry is None:
            return True
        if not cfg.is_well_formed:
            # Unresolved indirect branches: every label is a potential
            # target, so nothing is provably unreachable.
            self.Trace(1, "function flagged; skipping")
            return True
        reachable: Set[int] = set()
        stack = [cfg.entry]
        while stack:
            block = stack.pop()
            if id(block) in reachable:
                continue
            reachable.add(id(block))
            stack.extend(s for s in block.successors if s is not cfg.exit)

        referenced = _referenced_labels(self.unit)
        for block in cfg.blocks:
            if id(block) in reachable:
                continue
            if any(name in referenced for name in block.labels):
                # Address-taken label (jump table etc.) — keep.
                continue
            for entry in block.entries:
                self.bump("instructions_removed")
                if not self.option("count_only"):
                    self.unit.remove(entry)
            if not self.option("count_only"):
                for name in block.labels:
                    label_entry = self.unit.find_label(name)
                    if label_entry is not None:
                        self.unit.remove(label_entry)
            self.bump("blocks_removed")
        return True


@register_func_pass("CONSTFOLD")
class ConstantFoldPass(MaoFunctionPass):
    """Fold immediate arithmetic over registers with known constants.

    ``movl $5, %eax; addl $3, %eax`` becomes ``movl $8, %eax`` when the
    add's flags are dead.
    """

    OPTIONS = {"count_only": False}

    _FOLDABLE = {"add", "sub", "and", "or", "xor", "shl", "shr", "sar"}

    def Go(self) -> bool:
        cfg = build_cfg(self.function, self.unit)
        liveness = Liveness(cfg)
        for block in cfg.blocks:
            known: Dict[str, int] = {}
            for entry in block.entries:
                insn = entry.insn
                folded = self._try_fold(block, entry, known, liveness)
                if folded is not None:
                    insn = folded
                self._update(known, insn)
        return True

    def _try_fold(self, block, entry, known: Dict[str, int],
                  liveness: Liveness) -> Optional[Instruction]:
        insn = entry.insn
        if insn.base not in self._FOLDABLE or len(insn.operands) != 2:
            return None
        src, dst = insn.operands
        if not (isinstance(src, Immediate) and src.symbol is None
                and isinstance(dst, RegisterOperand)):
            return None
        group = dst.reg.group
        if group not in known:
            return None
        width = insn.effective_width()
        if width is None or dst.reg.high8:
            return None
        live_flags = {loc[len(FLAG_PREFIX):]
                      for loc in liveness.live_after(block, entry)
                      if loc.startswith(FLAG_PREFIX)}
        if live_flags:
            return None
        mask = (1 << width) - 1
        count_mask = 63 if width == 64 else 31
        a = known[group] & mask
        b = src.value & mask
        ops = {
            "add": lambda: a + b,
            "sub": lambda: a - b,
            "and": lambda: a & b,
            "or": lambda: a | b,
            "xor": lambda: a ^ b,
            "shl": lambda: a << (src.value & count_mask),
            "shr": lambda: a >> (src.value & count_mask),
            "sar": lambda: self._sar(a, src.value & count_mask, width),
        }
        result = ops[insn.base]() & mask
        # Express as a signed value when the top bit is set.
        value = result - (1 << width) if result >> (width - 1) else result
        if width == 64 and not (-(1 << 31) <= value < (1 << 31)):
            return None   # can't express as mov imm32 sign-extended
        self.bump("folded")
        self.Trace(2, "folding %s -> mov $%d", insn, value)
        new = Instruction("mov" + suffix_for_width(width),
                          [Immediate(value), dst])
        new.address = insn.address
        if not self.option("count_only"):
            entry.insn = new
            return new
        return None

    @staticmethod
    def _sar(a: int, count: int, width: int) -> int:
        sign = a & (1 << (width - 1))
        value = a - 2 * sign
        return value >> (count & (63 if width == 64 else 31))

    @staticmethod
    def _update(known: Dict[str, int], insn: Instruction) -> None:
        try:
            defs = sideeffects.reg_defs(insn)
        except sideeffects.UnknownSideEffects:
            known.clear()
            return
        src = insn.operands[0] if insn.operands else None
        dst = insn.dest
        if (insn.base in ("mov", "movabs")
                and isinstance(src, Immediate) and src.symbol is None
                and isinstance(dst, RegisterOperand)
                and dst.reg.width in (32, 64)):
            for group in defs:
                known.pop(group, None)
            width = insn.effective_width() or 64
            known[dst.reg.group] = src.value & ((1 << width) - 1) \
                if width == 32 else src.value
        else:
            for group in defs:
                known.pop(group, None)
