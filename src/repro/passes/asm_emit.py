"""ASM — the assembly-emission pass, and LFIND — loop finding.

Reading/parsing the input is a pass called by default as the first pass;
emission is the ``ASM`` pass, whose ``o`` option names the output file
(paper example: ``ASM=o[/dev/null]``).  When running analysis-only passes,
ASM can simply be omitted.

``LFIND`` is the loop-finding analysis pass used in the paper's
command-line example (``--mao=LFIND=trace[0]``): it builds the CFG and the
loop structure graph and reports what it found through the standard
tracing facility and its stats.
"""

from __future__ import annotations

import sys

from repro.analysis.cfg import build_cfg
from repro.analysis.loops import build_lsg
from repro.passes.base import MaoFunctionPass, MaoUnitPass
from repro.passes.manager import register_func_pass, register_unit_pass


@register_unit_pass("ASM")
class AssemblyEmissionPass(MaoUnitPass):
    """Write the unit back out as textual assembly."""

    OPTIONS = {"o": "-"}
    # Emission is the effect: replaying a cached result would skip it.
    SIDE_EFFECTS = True

    def Go(self) -> bool:
        target = str(self.option("o"))
        text = self.unit.to_asm()
        if target in ("-", ""):
            sys.stdout.write(text)
        else:
            with open(target, "w") as handle:
                handle.write(text)
        self.bump("entries_emitted", len(self.unit))
        return True


@register_func_pass("LFIND")
class LoopFindingPass(MaoFunctionPass):
    """Build the LSG and report loop statistics."""

    OPTIONS = {}

    def Go(self) -> bool:
        self.Trace(3, "Func: %s", self.function.name)
        cfg = build_cfg(self.function, self.unit)
        lsg = build_lsg(cfg)
        self.bump("blocks", len(cfg.blocks))
        self.bump("loops", len(lsg))
        for loop in lsg.non_root_loops():
            if not loop.is_reducible:
                self.bump("irreducible")
            self.Trace(1, "loop header=%r depth=%d blocks=%d reducible=%s",
                       loop.header, loop.depth(), len(loop.all_blocks()),
                       loop.is_reducible)
        if cfg.unresolved_branches:
            self.bump("unresolved_branches", len(cfg.unresolved_branches))
        return True
