"""SCHED — basic-block list scheduling (paper §III.F).

A hashing microbenchmark gained 21% "simply from scheduling instructions
differently"; PMU analysis correlated the losses with
``RESOURCE_STALLS:RS_FULL`` — a forwarding-bandwidth limitation.  "The pass
provides a framework for list-scheduling at the assembly instruction level.
By changing the cost functions associated with the instructions, different
scheduling heuristics can be implemented.  The current cost function
ensures that, when scheduling successors of an instruction with multiple
fan-outs, the instructions on the critical path are given a higher
priority."

The dependence DAG covers registers, flags, and (conservatively) memory;
the default :class:`CriticalPathCost` prioritizes by longest latency path
to a DAG leaf.  Only single-basic-block scheduling is performed, matching
the paper ("this pass does single basic block scheduling only").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.analysis.cfg import build_cfg
from repro.ir.entries import InstructionEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.uarch.classify import compute_class
from repro.uarch.model import ProcessorModel
from repro.uarch.profiles import core2
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction


class DependenceDAG:
    """Dependence graph over one basic block's instructions."""

    def __init__(self, entries: List[InstructionEntry],
                 model: ProcessorModel) -> None:
        self.entries = entries
        self.model = model
        size = len(entries)
        self.succs: List[Set[int]] = [set() for _ in range(size)]
        self.preds: List[Set[int]] = [set() for _ in range(size)]
        self._build()

    def _locs(self, insn: Instruction):
        try:
            uses = set(sideeffects.reg_uses(insn))
            defs = set(sideeffects.reg_defs(insn))
            uses |= {"F:" + f for f in sideeffects.flags_read(insn)}
            defs |= {"F:" + f for f in (sideeffects.flags_written(insn)
                                        | sideeffects.flags_undefined(insn))}
            barrier = sideeffects.is_barrier(insn)
        except sideeffects.UnknownSideEffects:
            return None
        return uses, defs, barrier

    def _add_edge(self, earlier: int, later: int) -> None:
        if earlier != later:
            self.succs[earlier].add(later)
            self.preds[later].add(earlier)

    def _build(self) -> None:
        last_def: Dict[str, int] = {}
        last_uses: Dict[str, List[int]] = {}
        last_mem_write: Optional[int] = None
        last_mem_reads: List[int] = []
        last_barrier: Optional[int] = None

        for i, entry in enumerate(self.entries):
            insn = entry.insn
            info = self._locs(insn)
            if info is None:
                # Unknown side effects: order against everything.
                for j in range(i):
                    self._add_edge(j, i)
                last_barrier = i
                continue
            uses, defs, barrier = info

            if last_barrier is not None:
                self._add_edge(last_barrier, i)
            for loc in uses:
                if loc in last_def:
                    self._add_edge(last_def[loc], i)      # RAW
            for loc in defs:
                if loc in last_def:
                    self._add_edge(last_def[loc], i)      # WAW
                for user in last_uses.get(loc, ()):
                    self._add_edge(user, i)               # WAR
            if insn.reads_memory:
                if last_mem_write is not None:
                    self._add_edge(last_mem_write, i)
                last_mem_reads.append(i)
            if insn.writes_memory:
                if last_mem_write is not None:
                    self._add_edge(last_mem_write, i)
                for reader in last_mem_reads:
                    self._add_edge(reader, i)
                last_mem_write = i
                last_mem_reads = []
            if barrier:
                for j in range(i):
                    self._add_edge(j, i)
                last_barrier = i

            for loc in uses:
                last_uses.setdefault(loc, []).append(i)
            for loc in defs:
                last_def[loc] = i
                last_uses[loc] = []

    def latency(self, index: int) -> int:
        cls = compute_class(self.entries[index].insn)
        return max(1, self.model.latency.get(cls, 1))


CostFunction = Callable[[DependenceDAG], List[float]]


def critical_path_cost(dag: DependenceDAG) -> List[float]:
    """Priority = longest latency path from the node to any DAG leaf."""
    size = len(dag.entries)
    cost = [0.0] * size
    for i in range(size - 1, -1, -1):
        best = 0.0
        for succ in dag.succs[i]:
            best = max(best, cost[succ])
        cost[i] = best + dag.latency(i)
    return cost


def list_schedule(dag: DependenceDAG,
                  cost_fn: CostFunction = critical_path_cost) -> List[int]:
    """Return the new instruction order (indices into dag.entries)."""
    size = len(dag.entries)
    cost = cost_fn(dag)
    remaining_preds = [len(p) for p in dag.preds]
    ready = [i for i in range(size) if remaining_preds[i] == 0]
    order: List[int] = []
    while ready:
        # Highest priority first; stable on original position.
        ready.sort(key=lambda i: (-cost[i], i))
        node = ready.pop(0)
        order.append(node)
        for succ in sorted(dag.succs[node]):
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.append(succ)
    if len(order) != size:
        raise RuntimeError("dependence cycle in basic block DAG")
    return order


@register_func_pass("SCHED")
class ListSchedulingPass(MaoFunctionPass):
    """Reorder instructions within basic blocks by critical-path priority.

    With ``ebb[1]`` the pass first merges trivially-sequential blocks —
    a fall-through edge whose target label is referenced by nothing —
    into extended regions before scheduling, realizing the paper's
    "schedule across basic blocks" extension ("We expect the impact to
    become much higher once we extend the pass to schedule across basic
    blocks").
    """

    OPTIONS = {"count_only": False, "ebb": False}

    #: Override to plug in a different heuristic (the paper's "cost
    #: functions" extension point).
    cost_function: CostFunction = staticmethod(critical_path_cost)

    def Go(self) -> bool:
        model = core2()
        if self.option("ebb") and not self.option("count_only"):
            merged = self._merge_sequential_blocks()
            if merged:
                self.bump("labels_merged", merged)
        cfg = build_cfg(self.function, self.unit)
        for block in cfg.blocks:
            entries = block.entries
            if len(entries) < 3:
                continue
            # Keep the terminator (and a trailing compare feeding it)
            # pinned; schedule the body.
            body = entries[:]
            tail: List[InstructionEntry] = []
            if body and body[-1].insn.is_control_transfer:
                tail.insert(0, body.pop())
            if len(body) < 2:
                continue
            if not self._contiguous(body + tail):
                self.bump("skipped_noncontiguous")
                continue
            dag = DependenceDAG(body, model)
            order = list_schedule(dag, self.cost_function)
            moved = sum(1 for pos, idx in enumerate(order) if idx != pos)
            if moved == 0:
                continue
            self.bump("instructions_moved", moved)
            self.Trace(1, "block %s: moved %d of %d instructions",
                       block, moved, len(body))
            if self.option("count_only"):
                continue
            self._apply(block, body, tail, order)
        return True

    def _merge_sequential_blocks(self) -> int:
        """Delete unreferenced fall-through labels so block-local
        scheduling sees extended regions.  Safe when the label's block
        has exactly one predecessor, reached by fall-through, and no
        operand or data directive names the label."""
        from repro.passes.scalar import _referenced_labels

        cfg = build_cfg(self.function, self.unit)
        referenced = _referenced_labels(self.unit)
        removed = 0
        for block in cfg.blocks:
            if block is cfg.entry or not block.labels:
                continue
            if any(name in referenced for name in block.labels):
                continue
            if block.labels[0] == self.function.name:
                continue
            if len(block.predecessors) != 1:
                continue
            pred = block.predecessors[0]
            last = pred.last
            if last is not None and last.insn.is_control_transfer:
                continue          # reached by branch, not fall-through
            for name in list(block.labels):
                label_entry = self.unit.find_label(name)
                if label_entry is not None:
                    self.unit.remove(label_entry)
                    removed += 1
        return removed

    @staticmethod
    def _contiguous(entries: List[InstructionEntry]) -> bool:
        """True if the block's instructions are adjacent in the IR list."""
        for a, b in zip(entries, entries[1:]):
            if a.next is not b:
                return False
        return True

    def _apply(self, block, body: List[InstructionEntry],
               tail: List[InstructionEntry],
               order: List[int]) -> None:
        anchor = body[0].prev
        for entry in body:
            self.unit.remove(entry)
        previous = anchor
        new_body = [body[i] for i in order]
        for entry in new_body:
            if previous is None:
                first_tail = tail[0] if tail else None
                if first_tail is not None:
                    self.unit.insert_before(first_tail, entry)
                else:
                    self.unit.append(entry)
            else:
                self.unit.insert_after(previous, entry)
            previous = entry
        block.entries[:] = new_body + tail
