"""ADDRSIM — forward/backward instruction simulation (paper §III.E.m).

The RACEZ sampling-based race detector needs memory addresses.  Each PMU
sample delivers one instruction address plus the register file.  "Since the
value of %rax is not being killed by this instruction ... we can use this
register's content to compute the address used in instruction IP2 via
simple forward simulation.  Similarly ... we can do a backward simulation."

Given a sample (instruction, register snapshot), the simulator walks
forward and backward within the basic block, tracking which register
values are still known (or can be *inverted*, e.g. across ``add $imm``),
and computes effective addresses of neighbouring memory instructions.
The paper reports recovered-address factors of 4.1x-6.3x over raw samples;
``benchmarks/bench_address_sim.py`` reproduces that measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.entries import InstructionEntry, LabelEntry, MaoEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction
from repro.x86.operands import Immediate, Memory, RegisterOperand

MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class RecoveredAddress:
    entry: InstructionEntry
    address: int
    direction: str      # "sample", "forward", "backward"


def _memory_ea(mem: Memory, known: Dict[str, int],
               symtab: Dict[str, int]) -> Optional[int]:
    """Effective address if every input register's value is known."""
    total = mem.disp
    if mem.symbol is not None:
        value = symtab.get(mem.symbol)
        if value is None:
            return None
        total += value
    if mem.is_rip_relative:
        return total & MASK64 if mem.symbol is not None else None
    if mem.base is not None:
        if mem.base.group not in known:
            return None
        total += known[mem.base.group]
    if mem.index is not None:
        if mem.index.group not in known:
            return None
        total += known[mem.index.group] * mem.scale
    return total & MASK64


def _forward_update(known: Dict[str, int], insn: Instruction) -> None:
    """Advance the known-value map across one executed instruction."""
    src = insn.operands[0] if insn.operands else None
    dst = insn.dest
    try:
        defs = sideeffects.reg_defs(insn)
    except sideeffects.UnknownSideEffects:
        known.clear()
        return

    computed: Optional[Tuple[str, int]] = None
    if isinstance(dst, RegisterOperand) and dst.reg.width in (32, 64):
        group = dst.reg.group
        mask = (1 << dst.reg.width) - 1
        if insn.base in ("mov", "movabs") and isinstance(src, Immediate) \
                and src.symbol is None:
            computed = (group, src.value & mask)
        elif insn.base == "mov" and isinstance(src, RegisterOperand) \
                and src.reg.group in known and src.reg.width == dst.reg.width:
            computed = (group, known[src.reg.group] & mask)
        elif insn.base in ("add", "sub") and isinstance(src, Immediate) \
                and src.symbol is None and group in known:
            delta = src.value if insn.base == "add" else -src.value
            computed = (group, (known[group] + delta) & mask)
        elif insn.base == "inc" and group in known:
            computed = (group, (known[group] + 1) & mask)
        elif insn.base == "dec" and group in known:
            computed = (group, (known[group] - 1) & mask)
        elif insn.base == "lea" and isinstance(src, Memory):
            ea = _memory_ea(src, known, {})
            if ea is not None:
                computed = (group, ea & mask)

    for group in defs:
        known.pop(group, None)
    if computed is not None:
        known[computed[0]] = computed[1]


def _backward_update(known: Dict[str, int], insn: Instruction) -> None:
    """Rewind the known-value map across one instruction (inversion)."""
    src = insn.operands[0] if insn.operands else None
    dst = insn.dest
    try:
        defs = sideeffects.reg_defs(insn)
    except sideeffects.UnknownSideEffects:
        known.clear()
        return

    inverted: Optional[Tuple[str, int]] = None
    if isinstance(dst, RegisterOperand) and dst.reg.width in (32, 64):
        group = dst.reg.group
        mask = (1 << dst.reg.width) - 1
        if insn.base in ("add", "sub") and isinstance(src, Immediate) \
                and src.symbol is None and group in known:
            delta = src.value if insn.base == "add" else -src.value
            inverted = (group, (known[group] - delta) & mask)
        elif insn.base == "inc" and group in known:
            inverted = (group, (known[group] - 1) & mask)
        elif insn.base == "dec" and group in known:
            inverted = (group, (known[group] + 1) & mask)

    for group in defs:
        known.pop(group, None)
    if inverted is not None:
        known[inverted[0]] = inverted[1]


def _block_entries(entry: InstructionEntry) -> Tuple[List[InstructionEntry],
                                                     int]:
    """The straight-line run of instructions around *entry* and its index."""
    first = entry
    node: Optional[MaoEntry] = entry.prev
    while node is not None:
        if isinstance(node, LabelEntry):
            break
        if isinstance(node, InstructionEntry):
            if node.insn.is_control_transfer:
                break
            first = node
        node = node.prev

    run: List[InstructionEntry] = []
    index = 0
    node = first
    while node is not None:
        if isinstance(node, InstructionEntry):
            if node is entry:
                index = len(run)
            run.append(node)
            if node.insn.is_control_transfer:
                break
        elif isinstance(node, LabelEntry) and run:
            break
        node = node.next
    return run, index


def recover_addresses(entry: InstructionEntry,
                      snapshot: Dict[str, int],
                      symtab: Optional[Dict[str, int]] = None
                      ) -> List[RecoveredAddress]:
    """All effective addresses derivable from one PMU sample."""
    symtab = symtab or {}
    run, index = _block_entries(entry)
    recovered: List[RecoveredAddress] = []

    def note(node: InstructionEntry, known: Dict[str, int],
             direction: str) -> None:
        insn = node.insn
        mem = insn.memory_operand()
        if mem is None or insn.base == "lea":
            return
        ea = _memory_ea(mem, known, symtab)
        if ea is not None:
            recovered.append(RecoveredAddress(node, ea, direction))

    # The sampled instruction itself.
    known: Dict[str, int] = dict(snapshot)
    note(entry, known, "sample")

    # Forward simulation.
    forward_known = dict(snapshot)
    for node in run[index:]:
        if node is not entry:
            note(node, forward_known, "forward")
        _forward_update(forward_known, node.insn)
        if not forward_known:
            break

    # Backward simulation.
    backward_known = dict(snapshot)
    for node in reversed(run[:index]):
        _backward_update(backward_known, node.insn)
        if not backward_known:
            break
        note(node, backward_known, "backward")

    return recovered


@register_func_pass("ADDRSIM")
class AddressSimulationPass(MaoFunctionPass):
    """Report how many addresses the function's shape would let a sample
    recover (an analysis-only pass; the real work is in
    :func:`recover_addresses`, driven with actual samples by the bench)."""

    OPTIONS = {}

    def Go(self) -> bool:
        for entry in self.function.entries():
            if isinstance(entry, InstructionEntry) \
                    and entry.insn.has_memory_operand \
                    and entry.insn.base != "lea":
                self.bump("memory_sites")
        return True
