"""REDTEST — redundant test-instruction removal (paper §III.B.b).

GCC "does not model the x86/64 specific condition codes well", emitting::

    subl  $16, %r15d
    testl %r15d, %r15d     # redundant: subl already set the flags

``test r, r`` sets ZF/SF/PF from ``r`` and clears CF/OF.  It is redundant
after an instruction *P* that produced ``r`` if, for every flag read before
the next flag write, the flag's value after *P* equals its value after the
test:

* ZF/SF/PF match whenever *P*'s ``flags_result`` covers them (arithmetic
  and logic results);
* CF/OF additionally match when *P* clears them too (and/or/xor/test) —
  after an add/sub they generally differ, so a consumer reading CF or OF
  blocks removal (this is the precise condition-code modelling the paper
  credits MAO with).

Constraints checked: *P* defines ``r`` as its destination, nothing between
*P* and the test redefines ``r`` or writes flags, and every flag live after
the test is in the equivalence set (flag-granular liveness across blocks).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import FLAG_PREFIX, Liveness
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.x86 import sideeffects
from repro.x86.instruction import Instruction
from repro.x86.operands import RegisterOperand


def is_self_test(insn: Instruction) -> bool:
    if insn.base != "test" or len(insn.operands) != 2:
        return False
    src, dst = insn.operands
    return (isinstance(src, RegisterOperand)
            and isinstance(dst, RegisterOperand)
            and src.reg.name == dst.reg.name)


def _equivalence_set(producer: Instruction,
                     width_matches: bool) -> Set[str]:
    """Flags equal after `producer` vs after `test r, r`."""
    if not width_matches:
        return set()
    equal = set(sideeffects.flags_result(producer))
    # test clears CF and OF; if the producer also guarantees zeros there,
    # those flags agree as well.
    cleared = sideeffects.flags_cleared(producer)
    equal |= cleared & {"CF", "OF"}
    # Flags the producer leaves undefined can't be relied on.
    equal -= sideeffects.flags_undefined(producer)
    return equal


@register_func_pass("REDTEST")
class RedundantTestPass(MaoFunctionPass):
    """Remove ``test r, r`` made redundant by a preceding flag setter."""

    OPTIONS = {"count_only": False}

    def Go(self) -> bool:
        cfg = build_cfg(self.function, self.unit)
        liveness = Liveness(cfg)

        for block in cfg.blocks:
            producer: Optional[Instruction] = None   # last flags writer
            producer_valid = False                   # r unmodified since
            for entry in list(block.entries):
                insn = entry.insn
                if is_self_test(insn):
                    self.bump("tests")
                    reg = insn.operands[0].reg
                    if producer is not None and producer_valid \
                            and self._defines(producer, reg.group):
                        width_ok = (producer.effective_width()
                                    == insn.effective_width())
                        equal = _equivalence_set(producer, width_ok)
                        live_flags = {
                            loc[len(FLAG_PREFIX):]
                            for loc in liveness.live_after(block, entry)
                            if loc.startswith(FLAG_PREFIX)}
                        if live_flags <= equal:
                            self.bump("removed")
                            self.Trace(2, "removing %s (after %s)",
                                       insn, producer)
                            if not self.option("count_only"):
                                block.entries.remove(entry)
                                self.unit.remove(entry)
                            continue
                try:
                    wrote_flags = bool(sideeffects.flags_written(insn)
                                       | sideeffects.flags_undefined(insn))
                    defs = sideeffects.reg_defs(insn)
                    barrier = sideeffects.is_barrier(insn)
                except sideeffects.UnknownSideEffects:
                    producer = None
                    producer_valid = False
                    continue
                if barrier:
                    producer = None
                    producer_valid = False
                    continue
                if wrote_flags:
                    producer = insn
                    producer_valid = True
                elif producer is not None and producer_valid:
                    # Redefining the tested register between the producer
                    # and the test invalidates the pattern.
                    producer_group = self._producer_group(producer)
                    if producer_group is not None and producer_group in defs:
                        producer_valid = False
        return True

    @staticmethod
    def _defines(insn: Instruction, group: str) -> bool:
        dst = insn.dest
        return (isinstance(dst, RegisterOperand)
                and dst.reg.group == group
                and bool(sideeffects.flags_result(insn)))

    @staticmethod
    def _producer_group(insn: Instruction) -> Optional[str]:
        dst = insn.dest
        if isinstance(dst, RegisterOperand):
            return dst.reg.group
        return None
