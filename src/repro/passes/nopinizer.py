"""NOPIN — the Nopinizer (paper §III.E.i).

"Inspired by ideas from Diwan, this pass inserts random sequences of nop
instructions in the code stream.  A random number seed can be specified to
produce repeatable experiments.  Furthermore, the insertion density can be
specified ... as well as the length of the NOP sequences."

By shifting code around at random, micro-architectural cliffs (alignment
aliasing, predictor conflicts) are exposed: rerunning the experiment across
seeds maps the performance distribution of the *same* program.
"""

from __future__ import annotations

import random
import zlib

from repro.ir.entries import InstructionEntry
from repro.passes.base import MaoFunctionPass
from repro.passes.manager import register_func_pass
from repro.passes.util import make_nop


@register_func_pass("NOPIN")
class NopinizerPass(MaoFunctionPass):
    """Insert random NOP runs with a seeded RNG."""

    OPTIONS = {
        "seed": 0,           # RNG seed for repeatable experiments
        "density": 0.05,     # insertion probability per instruction
        "maxlen": 3,         # NOP run length drawn from 1..maxlen
        "count_only": False,
    }

    def Go(self) -> bool:
        # Mix the seed with a stable hash of the function name so every
        # function gets a distinct but reproducible stream.
        rng = random.Random(int(self.option("seed")) * 1000003
                            + zlib.crc32(self.function.name.encode()))
        density = float(self.option("density"))
        maxlen = max(1, int(self.option("maxlen")))
        for entry in list(self.function.entries()):
            if not isinstance(entry, InstructionEntry):
                continue
            if rng.random() >= density:
                continue
            run = rng.randint(1, maxlen)
            self.bump("sites")
            self.bump("nops_inserted", run)
            if self.option("count_only"):
                continue
            for _ in range(run):
                self.unit.insert_before(entry,
                                        InstructionEntry(make_nop()))
        return True
