"""Pass base classes.

Mirrors the paper's pass template (Fig. 3): an optimization pass derives
from ``MaoFunctionPass``, implements ``Go()``, and is registered under a
name.  All passes share common functionality from the base class: the
tracing facility, IR dumping before/after, per-pass options with defaults,
and a ``stats`` counter map that the benches read (Fig. 7 reports these
transformation counts).
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Optional

from repro.ir.unit import Function, MaoUnit


class MaoPass:
    """Common base for all passes."""

    #: Registry name (set by subclasses).
    NAME: str = "?"
    #: Option name -> default value.  ``trace`` and ``dump`` are universal.
    OPTIONS: Dict[str, Any] = {}
    #: True for passes whose value is an effect outside the IR (e.g. ASM
    #: writing a file).  Result caches must not replay around such passes.
    SIDE_EFFECTS: bool = False

    def __init__(self, options: Optional[Dict[str, Any]] = None) -> None:
        merged: Dict[str, Any] = {"trace": 0, "dump": False}
        merged.update(self.OPTIONS)
        if options:
            for key, value in options.items():
                if key not in merged:
                    raise KeyError("unknown option %r for pass %s"
                                   % (key, self.NAME))
                default = merged[key]
                if isinstance(default, bool):
                    value = value in (True, "1", "true", "yes", "on")
                elif isinstance(default, int):
                    value = int(value)
                elif isinstance(default, float):
                    value = float(value)
                merged[key] = value
        self.options = merged
        self.trace_level = int(merged["trace"])
        self.stats: Dict[str, int] = {}

    # ---- common facilities ---------------------------------------------------

    def Trace(self, level: int, fmt: str, *args: Any) -> None:
        """The standard tracing facility available to every pass."""
        if self.trace_level >= level:
            sys.stderr.write("[%s] %s\n" % (self.NAME,
                                            fmt % args if args else fmt))

    def bump(self, stat: str, amount: int = 1) -> None:
        self.stats[stat] = self.stats.get(stat, 0) + amount

    def option(self, name: str) -> Any:
        return self.options[name]

    def Go(self) -> bool:
        """Pass entry point; returns False to abort the pipeline."""
        raise NotImplementedError


class MaoFunctionPass(MaoPass):
    """A pass invoked once per identified function."""

    def __init__(self, options: Optional[Dict[str, Any]],
                 unit: MaoUnit, function: Function) -> None:
        super().__init__(options)
        self.unit = unit
        self.function = function

    def dump_ir(self, when: str) -> None:
        if self.options.get("dump"):
            sys.stderr.write("--- %s %s %s ---\n"
                             % (self.NAME, self.function.name, when))
            for entry in self.function.entries():
                sys.stderr.write(entry.to_asm() + "\n")


class MaoUnitPass(MaoPass):
    """A pass invoked once for the whole IR (e.g., reading, emission)."""

    def __init__(self, options: Optional[Dict[str, Any]],
                 unit: MaoUnit) -> None:
        super().__init__(options)
        self.unit = unit
