"""The ``mao`` command-line driver.

Mirrors the paper's invocation style::

    mao --mao=LFIND=trace[0]:ASM=o[/dev/null] in.s

MAO-specific options carry the ``--mao=`` prefix; the order of passes in
the spec is the invocation order.  Reading/parsing the input happens
implicitly as the first pass.  Without an ``ASM`` pass the run is
analysis-only and nothing is emitted (matching MAO).  ``--list-passes``
shows everything registered.

The original MAO ships an ``as`` replacement script that filters MAO
options and then delegates to the real assembler; ``--gas-compat`` mode
emulates that flow by accepting (and ignoring) common gas flags like
``--64`` and ``-o`` so the driver can sit behind a compiler.

Batch mode: more than one input file (globs are expanded, so quoted
patterns work from scripts) switches the driver to the corpus engine —
``repro.api.optimize_many`` — which shards files across ``--jobs``
workers and replays warm results from the persistent content-addressed
artifact cache (``--cache-dir`` / ``$PYMAO_CACHE_DIR``, default
``~/.cache/pymao``; ``--no-cache`` disables it).  ``-o`` names an output
*directory* in batch mode; inputs with colliding basenames mirror their
directory structure under it instead of silently overwriting each
other.  A file that fails to read or parse does not
abort the batch: every other file is still processed, the failures are
reported at the end, and the exit status is non-zero.

Service mode: ``mao serve`` runs the long-lived :mod:`repro.server`
optimization service (admission control, shared artifact cache, graceful
SIGTERM drain) and ``mao remote`` optimizes a file against a running
server over HTTP.  Both verbs delegate to :mod:`repro.server.cli`.

Observability: the driver is a thin shell over :mod:`repro.api`, and all
reporting flags are views over :mod:`repro.obs` — ``--trace-out FILE``
writes the ``pymao.trace/1`` JSONL event log (spans + metrics snapshot),
``--stats`` prints per-pass transformation counts, ``--sim-stats`` prints
the engine-cache metrics, ``--time`` prints the parse/pass span timings,
and ``--profile-spans PATTERN`` (or ``PYMAO_PROFILE``) attaches cProfile
summaries to matching spans.  ``--sim MODEL`` simulates the optimized
unit on a processor model after the passes run.
"""

from __future__ import annotations

import argparse
import glob as _glob
import json
import os
import sys
from typing import List, Optional

import repro.passes  # noqa: F401  (registers all built-in passes)
from repro import api, obs
from repro.passes.manager import parse_pass_spec, registered_passes


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mao",
        description="PyMAO: an extensible micro-architectural optimizer")
    parser.add_argument("--mao", action="append", default=[],
                        metavar="SPEC",
                        help="pass spec, e.g. REDTEST:ASM=o[out.s]")
    parser.add_argument("--version", action="store_true",
                        help="print the package version and the pinned "
                             "report schema versions, then exit")
    parser.add_argument("--list-passes", action="store_true",
                        help="list registered passes and exit")
    parser.add_argument("--plugin", action="append", default=[],
                        metavar="FILE.py",
                        help="load a pass plug-in before running (the "
                             "file registers passes via "
                             "@register_func_pass)")
    parser.add_argument("--stats", action="store_true",
                        help="print per-pass transformation statistics")
    parser.add_argument("--sim-stats", action="store_true",
                        help="print simulation-engine statistics (encoding "
                             "cache, basic-block cache, loop fast-forward)")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print artifact-cache statistics (batch-mode "
                             "hits/misses/evictions from the metrics "
                             "registry)")
    parser.add_argument("--time", action="store_true",
                        help="report wall-clock time per pass pipeline")
    parser.add_argument("--predict", default=None, metavar="CORE",
                        help="batch mode: annotate each output with the "
                             "static throughput prediction for CORE — a "
                             "profile name ('mao profiles list') or a "
                             "pymao.uarch/1 .json path — and print the "
                             "corpus ranked by predicted cycles (see "
                             "also the 'mao predict' verb)")
    parser.add_argument("--sim", default=None, metavar="MODEL",
                        help="simulate the optimized unit on a processor "
                             "model (a profile name or a pymao.uarch/1 "
                             ".json path) and report cycles")
    parser.add_argument("--trace-out", default=None, metavar="FILE.jsonl",
                        help="write the run's trace (nested spans + "
                             "metrics snapshot) as pymao.trace/1 JSONL")
    parser.add_argument("--profile-spans", default=None, metavar="PATTERN",
                        help="attach cProfile summaries to spans matching "
                             "the fnmatch PATTERN (implies span capture; "
                             "PYMAO_PROFILE env var is the equivalent)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan function-scoped passes across N workers "
                             "(default: 1, serial)")
    parser.add_argument("--parallel-backend", choices=("thread", "process"),
                        default="thread",
                        help="worker pool kind for --jobs > 1 "
                             "(default: thread)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact-cache directory for batch mode "
                             "(default: $PYMAO_CACHE_DIR, else "
                             "~/.cache/pymao)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the artifact cache in batch mode")
    parser.add_argument("--batch-summary", default=None,
                        metavar="FILE.json",
                        help="write the batch run's pymao.batch/1 summary "
                             "as JSON (batch mode only)")
    parser.add_argument("-o", dest="output", default=None,
                        help="output file (shorthand for a final ASM pass); "
                             "an output directory in batch mode")
    parser.add_argument("--64", dest="gas64", action="store_true",
                        help="gas compatibility flag (accepted, implied)")
    parser.add_argument("input", nargs="*",
                        help="input assembly file(s); more than one "
                             "switches to batch mode, and glob patterns "
                             "are expanded")
    return parser


def expand_inputs(patterns: List[str]) -> List[str]:
    """Expand glob patterns the shell did not (quoted, or from exec).

    A pattern with no matches is kept verbatim so the batch reports it as
    an unreadable file instead of silently dropping it.
    """
    files: List[str] = []
    for pattern in patterns:
        if _glob.has_magic(pattern):
            matches = sorted(_glob.glob(pattern))
            files.extend(matches if matches else [pattern])
        else:
            files.append(pattern)
    return files


def load_plugin(path: str) -> None:
    """Load a pass plug-in: execute a Python file whose top level
    registers passes (the paper: "Passes can be statically linked into
    MAO, or dynamically loaded as plug-ins").
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "mao_plugin_%d" % abs(hash(path)), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)


def print_version(stream) -> None:
    """The package version plus every pinned report schema version.

    One block, parsed by deploy tooling: a server and its clients agree
    on payload formats iff these lines agree.
    """
    from repro import __version__, result

    # Importing a module registers its schemas (repro.result); pull in
    # the full surface so the listing is complete, then render the one
    # registry sorted by label.
    import repro.api            # noqa: F401  optimize / sim
    import repro.batch.cache    # noqa: F401  artifact
    import repro.batch.engine   # noqa: F401  batch
    import repro.discover       # noqa: F401  discover / bench-discover
    import repro.obs.span       # noqa: F401  trace
    import repro.passes.manager  # noqa: F401  pipeline
    import repro.pgo.store      # noqa: F401  profile
    import repro.server.app     # noqa: F401  server
    import repro.server.fleet   # noqa: F401  fleet
    import repro.tune           # noqa: F401  tune / bench-tune
    import repro.uarch.static_model  # noqa: F401  predict / bench-predict
    import repro.uarch.tables   # noqa: F401  uarch / uarch-ranges

    stream.write("mao (PyMAO) %s\n" % __version__)
    for label, schema in result.iter_schemas():
        stream.write("schema %-13s %s\n" % (label, schema))


def predict_main(argv: List[str]) -> int:
    """``mao predict`` — the analytical cycles-per-iteration oracle.

    Statically predicts steady-state throughput for the hottest loop of
    an input (no simulation): ``mao predict --core=core2 file.s``.
    ``--mao=SPEC`` applies a pass pipeline first, so candidates can be
    scored exactly as the optimizer would emit them.
    """
    import argparse
    import json as _json

    parser = argparse.ArgumentParser(
        prog="mao predict",
        description="statically predict steady-state cycles-per-iteration "
                    "(port binding + latency critical path + front end)")
    parser.add_argument("--core", default="core2", metavar="CORE",
                        help="processor profile to predict for: a name "
                             "from 'mao profiles list' or a pymao.uarch/1 "
                             ".json path")
    parser.add_argument("--mao", action="append", default=[], metavar="SPEC",
                        help="pass pipeline to apply before predicting")
    parser.add_argument("--function", default=None, metavar="NAME",
                        help="function to analyze (default: first)")
    parser.add_argument("--loop", default=None, metavar="LABEL",
                        help="loop back-branch target label to analyze "
                             "(default: largest innermost loop)")
    parser.add_argument("--assume-lsd", action="store_true",
                        help="use the LSD streaming rate as the front-end "
                             "bound when the body fits the LSD")
    parser.add_argument("--explain", action="store_true",
                        help="print the per-port pressure table and the "
                             "latency critical path")
    parser.add_argument("--json", action="store_true",
                        help="emit the pymao.predict/1 document instead of "
                             "the one-line summary")
    parser.add_argument("input", help="input assembly file")
    args = parser.parse_args(argv)

    try:
        with open(args.input) as handle:
            source = handle.read()
    except OSError as exc:
        sys.stderr.write("mao predict: %s\n" % exc)
        return 1

    spec_items = []
    for spec in args.mao:
        spec_items.extend(parse_pass_spec(spec))

    from repro.uarch.static_model import PredictError
    try:
        target = source
        if spec_items:
            target = api.optimize(source, spec_items,
                                  filename=args.input).unit
        prediction = api.predict(target, args.core,
                                 function=args.function, loop=args.loop,
                                 assume_lsd=args.assume_lsd)
    except (PredictError, ValueError) as exc:
        sys.stderr.write("mao predict: %s\n" % exc)
        return 1

    if args.json:
        _json.dump(prediction.to_dict(), sys.stdout, indent=2,
                   sort_keys=True)
        sys.stdout.write("\n")
    elif args.explain:
        print(prediction.explain())
    else:
        print("%s %s loop=%s: %.2f cycles/iteration (%s-bound; "
              "ports=%.2f latency=%.2f frontend=%.2f)"
              % (args.input, prediction.function,
                 prediction.loop_label or "<none>", prediction.cycles,
                 prediction.bottleneck, prediction.port_bound,
                 prediction.latency_bound, prediction.frontend_bound))
    return 0


def tune_main(argv: List[str]) -> int:
    """``mao tune`` — search the pass-spec space for the best pipeline.

    ``mao tune --core=core2 file.s`` scores candidate pipelines with the
    analytical predictor, shares pipeline prefixes through the artifact
    cache, and reports the winning spec.  The input may be an assembly
    file or the name of a workload kernel (``mao tune hash_bench``).
    """
    import argparse
    import json as _json
    import os

    parser = argparse.ArgumentParser(
        prog="mao tune",
        description="search candidate pass pipelines for the lowest "
                    "predicted cycles/iteration on a target core")
    parser.add_argument("--core", default="core2", metavar="CORE",
                        help="processor profile to tune for: a name from "
                             "'mao profiles list' or a pymao.uarch/1 "
                             ".json path")
    parser.add_argument("--budget", type=int, default=None, metavar="N",
                        help="max pass executions to spend (default 48)")
    parser.add_argument("--n-select", type=int, default=None, metavar="N",
                        help="leaders extended per beam round (default 3)")
    parser.add_argument("--max-rounds", type=int, default=None, metavar="N",
                        help="beam rounds after the seed set (default 2)")
    parser.add_argument("--simulate-top", type=int, default=0, metavar="N",
                        help="re-score the top N leaders with full trace "
                             "simulation (ground truth; slower)")
    parser.add_argument("--function", default=None, metavar="NAME",
                        help="function to score (default: first)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel workers for independent candidates")
    parser.add_argument("--parallel-backend", default="thread",
                        choices=("thread", "process"),
                        help="worker pool backend")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact cache directory "
                             "($PYMAO_CACHE_DIR, else ~/.cache/pymao)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent artifact cache")
    parser.add_argument("--explain", action="store_true",
                        help="print the scored leaderboard and search "
                             "summary")
    parser.add_argument("--json", action="store_true",
                        help="emit the pymao.tune/1 document instead of "
                             "the one-line summary")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="write the winning emitted assembly here")
    parser.add_argument("input",
                        help="input assembly file or workload kernel name")
    args = parser.parse_args(argv)

    source = args.input
    if os.path.exists(args.input) or not args.input.isidentifier():
        try:
            with open(args.input) as handle:
                source = handle.read()
        except OSError as exc:
            sys.stderr.write("mao tune: %s\n" % exc)
            return 1

    from repro.tune import TuneError
    try:
        result = api.tune(source, args.core,
                          function=args.function,
                          budget=args.budget,
                          n_select=args.n_select,
                          max_rounds=args.max_rounds,
                          simulate_top=args.simulate_top,
                          jobs=args.jobs,
                          parallel_backend=args.parallel_backend,
                          cache=not args.no_cache,
                          cache_dir=args.cache_dir)
    except (TuneError, ValueError) as exc:
        sys.stderr.write("mao tune: %s\n" % exc)
        return 1

    if args.output:
        try:
            with open(args.output, "w") as handle:
                handle.write(result.asm)
        except OSError as exc:
            sys.stderr.write("mao tune: %s\n" % exc)
            return 1

    if args.json:
        _json.dump(result.to_dict(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    elif args.explain:
        print(result.explain())
    else:
        runs = result.pass_runs
        print("%s %s: winner --mao=%s %.2f cycles/iteration (%s; "
              "%d runs, %d cached, stop=%s)"
              % (args.input, args.core,
                 result.winner_spec or "<none>", result.winner_cycles,
                 result.winner.get("origin", "?"),
                 runs.get("executed", 0), runs.get("cache_hits", 0),
                 result.early_stop.get("reason", "?")))
    return 0


def profile_main(argv: List[str]) -> int:
    """``mao profile`` — sample an input and emit its profile document.

    ``mao profile --period 1000 --seed 7 file.s`` runs the input under
    the sampling interpreter and prints the ``pymao.profile/1`` document
    that ``POST /v1/profile`` (or ``--ingest``) feeds the PGO store.
    The input may be an assembly file or a workload kernel name, and
    ``--seed`` makes the sample phase deterministic — the same seed
    reproduces the same samples at any ``--jobs`` count.
    """
    import argparse
    import json as _json
    import os

    parser = argparse.ArgumentParser(
        prog="mao profile",
        description="sample an input under the architectural interpreter "
                    "and emit its pymao.profile/1 document")
    parser.add_argument("--period", type=int, default=1000, metavar="N",
                        help="sample every N executed instructions "
                             "(default: 1000)")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="deterministic sampling-phase seed (default: "
                             "phase 0, the historical behavior)")
    parser.add_argument("--weight", type=float, default=None, metavar="W",
                        help="profile weight to record (default: executed "
                             "step count)")
    parser.add_argument("--entry", default="main", metavar="SYMBOL",
                        help="entry symbol to execute (default: main)")
    parser.add_argument("--max-steps", type=int, default=5_000_000,
                        metavar="N",
                        help="execution step bound (default: 5000000)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel workers when profiling several "
                             "inputs")
    parser.add_argument("--parallel-backend", default="thread",
                        choices=("thread", "process"),
                        help="worker pool backend")
    parser.add_argument("--ingest", action="store_true",
                        help="also store the document in the local PGO "
                             "profile store")
    parser.add_argument("--profile-dir", default=None, metavar="DIR",
                        help="profile store for --ingest (default: "
                             "$PYMAO_PROFILE_DIR, else "
                             "~/.cache/pymao-profiles)")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="write the document(s) here instead of stdout")
    parser.add_argument("inputs", nargs="+", metavar="input",
                        help="assembly files or workload kernel names")
    args = parser.parse_args(argv)
    if args.period <= 0:
        sys.stderr.write("mao profile: --period must be positive\n")
        return 2

    from repro import pgo

    pairs = []
    for name in args.inputs:
        source = name
        if os.path.exists(name) or not name.isidentifier():
            try:
                with open(name) as handle:
                    source = handle.read()
            except OSError as exc:
                sys.stderr.write("mao profile: %s\n" % exc)
                return 1
        else:
            try:
                source = api._resolve_source(source)
            except ValueError as exc:
                sys.stderr.write("mao profile: %s\n" % exc)
                return 1
        pairs.append((name, source))

    results = pgo.profile_many(pairs, period=args.period, seed=args.seed,
                               jobs=args.jobs,
                               parallel_backend=args.parallel_backend,
                               entry_symbol=args.entry,
                               max_steps=args.max_steps)
    failed = [(name, error) for name, doc, error in results if doc is None]
    for name, error in failed:
        sys.stderr.write("mao profile: %s: %s\n" % (name, error))
    documents = [doc for _, doc, _ in results if doc is not None]
    if args.weight is not None:
        for doc in documents:
            doc["weight"] = args.weight
    if args.ingest and documents:
        store = pgo.ProfileStore(args.profile_dir)
        for doc in documents:
            entry = store.ingest(doc)
            sys.stderr.write("mao profile: ingested %s epoch=%d\n"
                             % (entry.digest[:12], entry.epoch))
    rendered = _json.dumps(documents[0] if len(documents) == 1
                           else documents, indent=2, sort_keys=True)
    if args.output:
        try:
            with open(args.output, "w") as handle:
                handle.write(rendered + "\n")
        except OSError as exc:
            sys.stderr.write("mao profile: %s\n" % exc)
            return 1
    else:
        sys.stdout.write(rendered + "\n")
    return 1 if failed else 0


def discover_main(argv: List[str]) -> int:
    """``mao discover`` — infer a processor's parameters (paper §IV).

    ``mao discover --seed 7`` runs the generated-microbenchmark harness
    against the seeded blinded profile and reports every parameter it
    recovered; ``mao discover --core skylake`` targets a registry
    profile instead.  ``-o profile.json`` writes a ``pymao.uarch/1``
    document every ``--core`` surface accepts.  Output is byte-identical
    at any ``--jobs`` count and either backend.
    """
    import argparse
    import json as _json

    parser = argparse.ArgumentParser(
        prog="mao discover",
        description="infer µarch parameters by running generated "
                    "microbenchmark ladders against a processor oracle")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="discover blinded_profile(N) (the paper's "
                             "hidden-parameter experiment)")
    parser.add_argument("--core", default=None, metavar="CORE",
                        help="discover a named/inline profile instead of "
                             "a blinded seed (name or .json path)")
    parser.add_argument("--name", default=None, metavar="NAME",
                        help="name for the discovered profile")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel ladder tasks per stage (default 1)")
    parser.add_argument("--parallel-backend", default="thread",
                        choices=("thread", "process"),
                        help="worker pool backend")
    parser.add_argument("--json", action="store_true",
                        help="emit the pymao.discover/1 document instead "
                             "of the summary")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="write the discovered pymao.uarch/1 profile "
                             "here (usable as --core FILE everywhere)")
    args = parser.parse_args(argv)

    if (args.seed is None) == (args.core is None):
        sys.stderr.write("mao discover: pass exactly one of --seed or "
                         "--core\n")
        return 2
    try:
        result = api.discover(core=args.core, seed=args.seed,
                              name=args.name, jobs=args.jobs,
                              parallel_backend=args.parallel_backend)
    except ValueError as exc:
        sys.stderr.write("mao discover: %s\n" % exc)
        return 1

    if args.output:
        from repro.uarch import tables
        try:
            tables.save_profile(result.profile_doc(), args.output)
        except (OSError, ValueError) as exc:
            sys.stderr.write("mao discover: %s\n" % exc)
            return 1
    if args.json:
        _json.dump(result.to_dict(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(result.explain())
    return 0


def profiles_main(argv: List[str]) -> int:
    """``mao profiles`` — inspect the on-disk µarch profile registry.

    ``mao profiles list`` names every ``pymao.uarch/1`` document under
    ``repro/uarch/data/``; ``mao profiles show CORE`` prints one (a
    registry name or a ``.json`` path) after validation.
    """
    import argparse
    import json as _json

    from repro.uarch import tables

    parser = argparse.ArgumentParser(
        prog="mao profiles",
        description="list or show the versioned µarch profile data files")
    sub = parser.add_subparsers(dest="verb")
    sub.add_parser("list", help="name every registry profile")
    show = sub.add_parser("show", help="print one profile document")
    show.add_argument("core", help="profile name or .json path")
    args = parser.parse_args(argv)

    if args.verb == "list":
        for name in tables.profile_names():
            model = tables.get_profile(name)
            print("%-12s line=%dB width=%d ports=%d %s" % (
                name, model.decode_line_bytes, model.decode_width,
                model.num_ports,
                "lsd=%d-line" % model.lsd_max_lines if model.lsd_enabled
                else "no-lsd"))
        return 0
    if args.verb == "show":
        try:
            model = tables.resolve_core(args.core)
        except ValueError as exc:
            sys.stderr.write("mao profiles: %s\n" % exc)
            return 1
        _json.dump(tables.model_to_doc(model), sys.stdout, indent=2,
                   sort_keys=True)
        sys.stdout.write("\n")
        return 0
    parser.print_help(sys.stderr)
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Service verbs dispatch before argparse sees the argument list, so
    # `serve` is never mistaken for an input file.
    if argv and argv[0] == "serve":
        from repro.server.cli import serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "fleet":
        from repro.server.cli import fleet_main
        return fleet_main(argv[1:])
    if argv and argv[0] == "remote":
        from repro.server.cli import remote_main
        return remote_main(argv[1:])
    if argv and argv[0] == "predict":
        return predict_main(argv[1:])
    if argv and argv[0] == "tune":
        return tune_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "discover":
        return discover_main(argv[1:])
    if argv and argv[0] == "profiles":
        return profiles_main(argv[1:])

    parser = build_arg_parser()
    args = parser.parse_args(argv)

    if args.version:
        print_version(sys.stdout)
        return 0

    for plugin in args.plugin:
        load_plugin(plugin)

    if args.list_passes:
        for name in registered_passes():
            print(name)
        return 0

    files = expand_inputs(args.input)
    if not files:
        parser.error("no input file")

    spec_items = []
    for spec in args.mao:
        spec_items.extend(parse_pass_spec(spec))

    if args.profile_spans:
        obs.profile.configure(args.profile_spans)
    tracing = bool(args.trace_out or args.profile_spans)
    was_enabled = obs.set_enabled(True) if tracing else obs.enabled()
    try:
        if len(files) > 1:
            status = _run_batch(args, parser, files, spec_items)
        else:
            status = _run_single(args, parser, files[0], spec_items)
    finally:
        if tracing:
            obs.set_enabled(was_enabled)

    if args.sim_stats:
        print_sim_stats(sys.stderr)
    if args.cache_stats:
        print_cache_stats(sys.stderr)
    if args.trace_out:
        sink = obs.JsonlSink(args.trace_out)
        try:
            obs.write_trace(sink, obs.finish_spans(),
                            argv=list(argv) if argv is not None
                            else sys.argv[1:],
                            input=files[0] if len(files) == 1 else files)
        finally:
            sink.close()
    return status


def _run_single(args, parser, input_path: str, spec_items) -> int:
    """The classic one-file flow (the paper's invocation style)."""
    with open(input_path) as handle:
        source = handle.read()
    if args.output and not any(name == "ASM" for name, _ in spec_items):
        spec_items = spec_items + [("ASM", {"o": args.output})]

    result = api.optimize(source, spec_items, jobs=args.jobs,
                          parallel_backend=args.parallel_backend,
                          filename=input_path)
    sim = None
    if args.sim:
        names = [f.name for f in result.unit.functions]
        entry = "main" if "main" in names or not names else names[0]
        try:
            sim = api.simulate(result.unit, args.sim, entry_symbol=entry)
        except ValueError as exc:
            sys.stderr.write("mao: --sim: %s\n" % exc)
            return 1

    if args.stats:
        for report in result.reports:
            if report.stats:
                stats = " ".join("%s=%d" % kv
                                 for kv in sorted(report.stats.items()))
                sys.stderr.write("%-12s %-24s %s\n"
                                 % (report.pass_name, report.scope, stats))
    if args.time:
        sys.stderr.write("parse: %.3fs  passes: %.3fs\n"
                         % (result.parse_s, result.passes_s))
    if sim is not None:
        sys.stderr.write("sim[%s]: cycles=%d instructions=%d ipc=%.2f\n"
                         % (args.sim, sim.cycles, sim.steps,
                            sim.stats.ipc()))
    if args.predict:
        from repro.uarch.static_model import PredictError
        try:
            p = api.predict(result.unit, args.predict)
            sys.stderr.write("predict[%s]: %.2f cycles/iter (%s-bound, "
                             "loop %s)\n"
                             % (args.predict, p.cycles, p.bottleneck,
                                p.loop_label or "<none>"))
        except PredictError as exc:
            sys.stderr.write("predict[%s]: unanalyzable: %s\n"
                             % (args.predict, exc))
        except ValueError as exc:
            sys.stderr.write("mao: --predict: %s\n" % exc)
            return 1
    return 0


def _batch_output_paths(names: List[str]) -> dict:
    """Map each batch input to its output path relative to ``-o DIR``.

    Unique basenames keep the flat one-directory layout.  When two
    inputs share a basename (``a/foo.s`` and ``b/foo.s``, routine in
    real build trees) the flat layout would silently overwrite one
    output with the other, so the mapping falls back to mirroring the
    inputs' directory structure relative to their deepest common prefix.
    """
    basenames = [os.path.basename(name) for name in names]
    if len(set(basenames)) == len(set(names)):
        return dict(zip(names, basenames))
    resolved = {name: os.path.abspath(name) for name in names}
    common = os.path.commonpath([os.path.dirname(path)
                                 for path in resolved.values()])
    return {name: os.path.relpath(path, common)
            for name, path in resolved.items()}


def _run_batch(args, parser, files: List[str], spec_items) -> int:
    """Corpus mode: many inputs through ``api.optimize_many``.

    Emission happens here from the (possibly cache-replayed) artifact
    text — ``-o DIR`` — not via an implicit ASM pass, so a warm run
    writes byte-identical outputs without re-running any pass.
    """
    if args.sim:
        parser.error("--sim is single-file only; simulate batch outputs "
                     "individually")

    batch = api.optimize_many(files, spec_items, jobs=args.jobs,
                              parallel_backend=args.parallel_backend,
                              cache=not args.no_cache,
                              cache_dir=args.cache_dir,
                              predict_core=args.predict)

    if args.output:
        os.makedirs(args.output, exist_ok=True)
        out_rel = _batch_output_paths([item.name for item in batch])
        for item in batch:
            if item.ok:
                out_path = os.path.join(args.output, out_rel[item.name])
                os.makedirs(os.path.dirname(out_path), exist_ok=True)
                with open(out_path, "w") as handle:
                    handle.write(item.asm)
    if args.batch_summary:
        with open(args.batch_summary, "w") as handle:
            json.dump(batch.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.stats:
        for item in batch:
            if item.pipeline is None:
                continue
            for report in item.pipeline.reports:
                if report.stats:
                    stats = " ".join("%s=%d" % kv
                                     for kv in sorted(report.stats.items()))
                    sys.stderr.write("%-20s %-12s %-24s %s\n"
                                     % (item.name, report.pass_name,
                                        report.scope, stats))
    if args.time:
        sys.stderr.write("batch: files=%d ok=%d errors=%d hits=%d "
                         "misses=%d elapsed=%.3fs\n"
                         % (len(batch), batch.ok_count, batch.error_count,
                            batch.cache_hits, batch.cache_misses,
                            batch.elapsed_s))

    if args.predict:
        for item in batch.ranked_by_prediction():
            p = item.prediction
            sys.stderr.write("predict[%s]: %-24s %8.2f cycles/iter "
                             "(%s-bound, loop %s)\n"
                             % (args.predict, item.name, p["cycles"],
                                p["bottleneck"], p["loop"] or "<none>"))
        for item in batch:
            if item.ok and item.predict_error is not None:
                sys.stderr.write("predict[%s]: %-24s unanalyzable: %s\n"
                                 % (args.predict, item.name,
                                    item.predict_error))

    for item in batch.errors:
        sys.stderr.write("mao: %s: %s\n" % (item.name, item.error))
    return 1 if batch.error_count else 0


def print_sim_stats(stream) -> None:
    """Dump the engine caches' counters from the metrics registry.

    Same byte format as before the registry existed; the values now come
    from one :func:`repro.obs.Registry.snapshot` (the collectors poll the
    caches), so this view, ``--trace-out``, and the bench event logs all
    report identical numbers.
    """
    snap = obs.REGISTRY.snapshot()
    stream.write("encoding-cache: hits=%d misses=%d bypasses=%d "
                 "hit-rate=%.1f%%\n"
                 % (snap["encoding_cache.hits"],
                    snap["encoding_cache.misses"],
                    snap["encoding_cache.bypasses"],
                    snap["encoding_cache.hit_rate"] * 100.0))
    stream.write("block-cache: compiled=%d hits=%d insns-compiled=%d "
                 "hit-rate=%.1f%%\n"
                 % (snap["block_cache.blocks_compiled"],
                    snap["block_cache.block_hits"],
                    snap["block_cache.instructions_compiled"],
                    snap["block_cache.hit_rate"] * 100.0))
    stream.write("fast-forward: loops=%d iterations=%d records=%d "
                 "validation-failures=%d\n"
                 % (snap["fast_forward.loops_entered"],
                    snap["fast_forward.iterations_fast_forwarded"],
                    snap["fast_forward.records_fast_forwarded"],
                    snap["fast_forward.validation_failures"]))


def print_cache_stats(stream) -> None:
    """Dump the artifact-cache counters from the metrics registry.

    Mirrors :func:`print_sim_stats`: one fixed text format (pinned by a
    regression test) rendered from ``repro.obs.REGISTRY``, so this view
    and the ``--trace-out`` metrics event report identical numbers.
    """
    registry = obs.REGISTRY
    hits = registry.counter_value("batch.cache.hit")
    misses = registry.counter_value("batch.cache.miss")
    looked_up = hits + misses
    rate = (hits / looked_up) if looked_up else 0.0
    stream.write("artifact-cache: hits=%d misses=%d stores=%d "
                 "evictions=%d hit-rate=%.1f%%\n"
                 % (hits, misses,
                    registry.counter_value("batch.cache.store"),
                    registry.counter_value("batch.cache.evict"),
                    rate * 100.0))
    stream.write("batch: files=%d errors=%d\n"
                 % (registry.counter_value("batch.files"),
                    registry.counter_value("batch.errors")))


if __name__ == "__main__":
    sys.exit(main())
