"""The ``mao`` command-line driver.

Mirrors the paper's invocation style::

    mao --mao=LFIND=trace[0]:ASM=o[/dev/null] in.s

MAO-specific options carry the ``--mao=`` prefix; the order of passes in
the spec is the invocation order.  Reading/parsing the input happens
implicitly as the first pass.  Without an ``ASM`` pass the run is
analysis-only and nothing is emitted (matching MAO).  ``--list-passes``
shows everything registered.

The original MAO ships an ``as`` replacement script that filters MAO
options and then delegates to the real assembler; ``--gas-compat`` mode
emulates that flow by accepting (and ignoring) common gas flags like
``--64`` and ``-o`` so the driver can sit behind a compiler.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import repro.passes  # noqa: F401  (registers all built-in passes)
from repro.ir import parse_unit
from repro.passes.manager import (
    PassPipeline,
    parse_pass_spec,
    registered_passes,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mao",
        description="PyMAO: an extensible micro-architectural optimizer")
    parser.add_argument("--mao", action="append", default=[],
                        metavar="SPEC",
                        help="pass spec, e.g. REDTEST:ASM=o[out.s]")
    parser.add_argument("--list-passes", action="store_true",
                        help="list registered passes and exit")
    parser.add_argument("--plugin", action="append", default=[],
                        metavar="FILE.py",
                        help="load a pass plug-in before running (the "
                             "file registers passes via "
                             "@register_func_pass)")
    parser.add_argument("--stats", action="store_true",
                        help="print per-pass transformation statistics")
    parser.add_argument("--sim-stats", action="store_true",
                        help="print simulation-engine statistics (encoding "
                             "cache, basic-block cache, loop fast-forward)")
    parser.add_argument("--time", action="store_true",
                        help="report wall-clock time per pass pipeline")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan function-scoped passes across N workers "
                             "(default: 1, serial)")
    parser.add_argument("--parallel-backend", choices=("thread", "process"),
                        default="thread",
                        help="worker pool kind for --jobs > 1 "
                             "(default: thread)")
    parser.add_argument("-o", dest="output", default=None,
                        help="output file (shorthand for a final ASM pass)")
    parser.add_argument("--64", dest="gas64", action="store_true",
                        help="gas compatibility flag (accepted, implied)")
    parser.add_argument("input", nargs="?", help="input assembly file")
    return parser


def load_plugin(path: str) -> None:
    """Load a pass plug-in: execute a Python file whose top level
    registers passes (the paper: "Passes can be statically linked into
    MAO, or dynamically loaded as plug-ins").
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "mao_plugin_%d" % abs(hash(path)), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    for plugin in args.plugin:
        load_plugin(plugin)

    if args.list_passes:
        for name in registered_passes():
            print(name)
        return 0

    if not args.input:
        parser.error("no input file")

    with open(args.input) as handle:
        source = handle.read()

    start = time.perf_counter()
    unit = parse_unit(source, filename=args.input)
    parse_time = time.perf_counter() - start

    spec_items = []
    for spec in args.mao:
        spec_items.extend(parse_pass_spec(spec))
    if args.output and not any(name == "ASM" for name, _ in spec_items):
        spec_items.append(("ASM", {"o": args.output}))

    pipeline = PassPipeline(spec_items)
    start = time.perf_counter()
    result = pipeline.run(unit, jobs=args.jobs,
                          backend=args.parallel_backend)
    pass_time = time.perf_counter() - start

    if args.stats:
        for report in result.reports:
            if report.stats:
                stats = " ".join("%s=%d" % kv
                                 for kv in sorted(report.stats.items()))
                sys.stderr.write("%-12s %-24s %s\n"
                                 % (report.pass_name, report.scope, stats))
    if args.time:
        sys.stderr.write("parse: %.3fs  passes: %.3fs\n"
                         % (parse_time, pass_time))
    if args.sim_stats:
        print_sim_stats(sys.stderr)
    return 0


def print_sim_stats(stream) -> None:
    """Dump the engine caches' counters (mirrors encoding_cache_stats)."""
    from repro.sim.interp import block_cache_stats
    from repro.uarch.pipeline import fast_forward_stats
    from repro.x86.encoder import encoding_cache_stats

    enc = encoding_cache_stats()
    stream.write("encoding-cache: hits=%d misses=%d bypasses=%d "
                 "hit-rate=%.1f%%\n"
                 % (enc["hits"], enc["misses"], enc["bypasses"],
                    enc["hit_rate"] * 100.0))
    blk = block_cache_stats()
    stream.write("block-cache: compiled=%d hits=%d insns-compiled=%d "
                 "hit-rate=%.1f%%\n"
                 % (blk["blocks_compiled"], blk["block_hits"],
                    blk["instructions_compiled"], blk["hit_rate"] * 100.0))
    ff = fast_forward_stats()
    stream.write("fast-forward: loops=%d iterations=%d records=%d "
                 "validation-failures=%d\n"
                 % (ff["loops_entered"], ff["iterations_fast_forwarded"],
                    ff["records_fast_forwarded"],
                    ff["validation_failures"]))


if __name__ == "__main__":
    sys.exit(main())
