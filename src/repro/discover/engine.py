"""The parameter-discovery engine (nanoBench-style, paper §IV automated).

Given only a processor *oracle* — something microbenchmarks can be run
against, never a parameter listing — the engine runs a staged harness of
generated microbenchmark ladders (:mod:`repro.mbench.detect`) and emits a
complete ``pymao.uarch/1`` document:

* **Stage 1** (independent): decode-line size, branch-predictor index
  shift, and per-class chain latencies.
* **Stage 2** (needs the line size): decode width, LSD engagement
  threshold.
* **Stage 3** (needs the threshold): LSD line budget, then stream width.
* **Stage 4** (model fitting): mispredict penalty, then forwarding
  bandwidth, then per-class port sets — each by running a probe on the
  oracle and on *candidate* models built from everything inferred so
  far, keeping the candidate whose cycle counts match exactly (the
  nanoBench "fit the simulator to the measurement" move).
* **Cross-check**: the assembled model replays a battery drawn from
  every ladder family; cycle-exact agreement with the oracle is
  reported per benchmark.

Parameters the ladders cannot identify (issue width and RS size — the
timing model never reads them; predictor table size beyond aliasing
reach; memory-system details) are taken from the hypothesis document's
``fixed`` section or the model defaults and reported as *assumed*, never
silently mixed with measurements.

Determinism: every task is a pure function of the oracle model, tasks
are merged in declaration order (not completion order), and the result
document excludes wall-clock fields — so any ``jobs`` count and either
executor backend produce byte-identical documents.  Worker tasks are
module-level functions, picklable for the process backend.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.mbench import detect
from repro.mbench.processor import Processor
from repro.uarch import tables
from repro.uarch.model import ProcessorModel

#: Instruction classes whose latency the chain ladders measure.
LATENCY_CLASSES = ("alu", "lea", "shift", "mul", "div", "load",
                   "fp_add", "fp_mul")

#: Instruction classes whose port sets stage 4 tries to fit.
PORT_CLASSES = ("lea", "shift")


class DiscoveryError(RuntimeError):
    """The harness could not complete (a probe failed to retire)."""


def _base_model(inferred: Dict[str, Any], ranges: Dict[str, Any],
                name: str = "candidate") -> ProcessorModel:
    """The best model buildable from what has been inferred so far.

    Unset parameters fall back to the hypothesis document's ``fixed``
    pins, then to the :class:`ProcessorModel` defaults — the same
    completion rule the final document uses.
    """
    params = dict(ranges.get("fixed", {}))
    params.update(inferred)
    return tables.model_from_params(name, params)


# ---------------------------------------------------------------------------
# Ladder tasks.  Each is a module-level function (process-backend
# picklable) taking (model, inferred, ranges) and returning
# (updates, evidence): parameter-path -> value, plus the measurements
# that justify them.
# ---------------------------------------------------------------------------

def _task_line_size(model, inferred, ranges):
    value = detect.DetectDecodeLineSize(Processor(model))
    return ({"frontend.decode_line_bytes": value},
            {"ladder": "alignment-slide period"})


def _task_bp_shift(model, inferred, ranges):
    value = detect.DetectBranchPredictorShift(Processor(model))
    return ({"branch_predictor.index_shift": value},
            {"ladder": "branch-pair aliasing distance"})


def _task_latency(model, inferred, ranges, klass):
    value = detect.DetectChainLatency(Processor(model), klass)
    return ({"instructions.%s.latency" % klass: value},
            {"ladder": "serial chain, differenced"})


def _task_decode_width(model, inferred, ranges):
    line = inferred["frontend.decode_line_bytes"]
    value = detect.DetectDecodeWidth(Processor(model), line)
    return ({"frontend.decode_width": value},
            {"ladder": "dense-line per-line cost",
             "note": "identified up to the per-line ceiling class"})


def _task_lsd_threshold(model, inferred, ranges):
    line = inferred["frontend.decode_line_bytes"]
    value = detect.DetectLsdIterationThreshold(Processor(model), line)
    if value is None:
        return ({"lsd.enabled": False},
                {"ladder": "LSD_UOPS onset bisection",
                 "note": "no streaming observed; LSD disabled"})
    return ({"lsd.enabled": True, "lsd.min_iterations": value},
            {"ladder": "LSD_UOPS onset bisection"})


def _task_lsd_capacity(model, inferred, ranges):
    if not inferred.get("lsd.enabled"):
        return ({}, {"ladder": "LSD_UOPS body growth",
                     "note": "skipped: LSD disabled"})
    proc = Processor(model)
    line = inferred["frontend.decode_line_bytes"]
    threshold = inferred["lsd.min_iterations"]
    budget = detect.DetectLsdLineBudgetByCounter(proc, line, threshold)
    stream = detect.DetectLsdStreamWidth(proc, line, budget, threshold)
    return ({"lsd.max_lines": budget, "lsd.stream_width": stream},
            {"ladder": "LSD_UOPS body growth + streamed-uop slope"})


def _task_penalty(model, inferred, ranges):
    candidates = _candidate_values(
        ranges, "branch_predictor.mispredict_penalty", list(range(2, 33)))
    base = _base_model(inferred, ranges)
    value = detect.DetectMispredictPenalty(Processor(model), base,
                                           candidates=candidates)
    if value is None:
        return ({}, {"ladder": "alternating-branch model fit",
                     "note": "no candidate matched; penalty left assumed"})
    return ({"branch_predictor.mispredict_penalty": value},
            {"ladder": "alternating-branch model fit",
             "candidates": list(candidates)})


def _task_forwarding(model, inferred, ranges):
    candidates = _candidate_values(
        ranges, "backend.forwarding_bw", list(range(1, 9)))
    base = _base_model(inferred, ranges)
    value = detect.DetectForwardingBandwidthMatch(Processor(model), base,
                                                 candidates=candidates)
    if value is None:
        return ({}, {"ladder": "retire-pressure model fit",
                     "note": "no candidate matched; bandwidth left assumed"})
    return ({"backend.forwarding_bw": value},
            {"ladder": "retire-pressure model fit",
             "candidates": list(candidates)})


def _task_ports(model, inferred, ranges, klass):
    path = "instructions.%s.ports" % klass
    base = _base_model(inferred, ranges)
    default = list(base.port_map[klass])
    candidates = _candidate_values(ranges, path, [])
    candidates = [list(c) for c in candidates]
    if default not in candidates:
        candidates.append(default)
    value = detect.DetectPortSet(Processor(model), base, klass, candidates)
    if value is None:
        return ({}, {"ladder": "solo + antagonist-pair model fit",
                     "note": "true port set outside the hypothesis space"})
    return ({path: list(value)},
            {"ladder": "solo + antagonist-pair model fit",
             "candidates": candidates})


def _candidate_values(ranges: Dict[str, Any], path: str,
                      fallback: List[Any]) -> List[Any]:
    """Candidate grid for *path*: the hypothesis document's draw choices
    when the parameter is drawn there, else *fallback*."""
    try:
        return list(tables.draw_choices(ranges, path))
    except (KeyError, ValueError):
        return fallback


#: Task registry: name -> (function, extra args).  Declaration order is
#: the deterministic merge order.
_TASK_FNS = {
    "line_size": (_task_line_size, ()),
    "bp_shift": (_task_bp_shift, ()),
    "decode_width": (_task_decode_width, ()),
    "lsd_threshold": (_task_lsd_threshold, ()),
    "lsd_capacity": (_task_lsd_capacity, ()),
    "penalty": (_task_penalty, ()),
    "forwarding": (_task_forwarding, ()),
}
for _klass in LATENCY_CLASSES:
    _TASK_FNS["latency_%s" % _klass] = (_task_latency, (_klass,))
for _klass in PORT_CLASSES:
    _TASK_FNS["ports_%s" % _klass] = (_task_ports, (_klass,))

#: Stages: tasks within one stage are independent (run in parallel);
#: each stage sees every earlier stage's inferences.
_STAGES: List[List[str]] = [
    ["line_size", "bp_shift"] + ["latency_%s" % k for k in LATENCY_CLASSES],
    ["decode_width", "lsd_threshold"],
    ["lsd_capacity"],
    ["penalty"],
    ["forwarding"],
    ["ports_%s" % k for k in PORT_CLASSES],
]


def _exec_task(payload: Tuple[str, ProcessorModel, Dict[str, Any],
                              Dict[str, Any]]):
    """Run one ladder task (module-level for process-pool pickling)."""
    name, model, inferred, ranges = payload
    fn, extra = _TASK_FNS[name]
    updates, evidence = fn(model, inferred, ranges, *extra)
    return name, updates, evidence


def _run_stage(names: List[str], model: ProcessorModel,
               inferred: Dict[str, Any], ranges: Dict[str, Any],
               jobs: int, parallel_backend: str):
    """Execute one stage's tasks, merging results in declaration order."""
    payloads = [(name, model, dict(inferred), ranges) for name in names]
    if jobs <= 1 or len(payloads) == 1:
        outcomes = [_exec_task(p) for p in payloads]
    else:
        pool_cls = (ProcessPoolExecutor if parallel_backend == "process"
                    else ThreadPoolExecutor)
        with pool_cls(max_workers=min(jobs, len(payloads))) as pool:
            outcomes = list(pool.map(_exec_task, payloads))
    by_name = {name: (updates, evidence)
               for name, updates, evidence in outcomes}
    merged_updates: Dict[str, Any] = {}
    merged_evidence: Dict[str, Any] = {}
    for name in names:                      # declaration order, not arrival
        updates, evidence = by_name[name]
        merged_updates.update(updates)
        merged_evidence[name] = evidence
    return merged_updates, merged_evidence


# ---------------------------------------------------------------------------
# Cross-check battery: one probe per ladder family, replayed on the
# assembled model and compared cycle-for-cycle with the oracle.
# ---------------------------------------------------------------------------

def _battery_sources(inferred: Dict[str, Any]) -> List[Tuple[str, str]]:
    line = inferred.get("frontend.decode_line_bytes", 16)
    align = line.bit_length() - 1
    sources = [
        ("chain_alu", detect._chain_source("alu", 200, 8)),
        ("chain_mul", detect._chain_source("mul", 200, 8)),
        ("chain_fp_mul", detect._chain_source("fp_mul", 200, 8)),
        ("dense_lines", detect._nop_loop_source(48, 12 * line, align)),
        ("retire_pressure", detect._forwarding_probe_source()),
        ("mispredict", detect._penalty_source(96)),
        ("port_solo_lea", detect._port_probe_sources("lea")[0]),
        ("port_pair_shift", detect._port_probe_sources("shift")[1]),
    ]
    if inferred.get("lsd.enabled"):
        trips = inferred["lsd.min_iterations"] + 96
        nops = inferred["lsd.max_lines"] * line - 10
        sources.append(("lsd_stream",
                        detect._nop_loop_source(trips, nops, align)))
    return sources


def _crosscheck(oracle: ProcessorModel, candidate: ProcessorModel,
                inferred: Dict[str, Any]) -> Dict[str, Any]:
    benchmarks = []
    matched = 0
    for name, source in _battery_sources(inferred):
        expect = detect._run_source(oracle, source)["CPU_CYCLES"]
        got = detect._run_source(candidate, source)["CPU_CYCLES"]
        benchmarks.append({"benchmark": name, "oracle_cycles": expect,
                           "model_cycles": got, "match": got == expect})
        matched += got == expect
    return {"benchmarks": benchmarks, "matched": matched,
            "total": len(benchmarks)}


# ---------------------------------------------------------------------------
# The engine entry point.
# ---------------------------------------------------------------------------

def run_discovery(oracle: ProcessorModel, *, name: str = "discovered",
                  jobs: int = 1, parallel_backend: str = "thread",
                  ranges: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Infer *oracle*'s parameters; return the raw engine report.

    The report carries ``params`` (every dotted path of the assembled
    model), ``inferred``/``assumed`` partitions, per-task ``evidence``
    and the ``crosscheck`` battery.  :func:`repro.discover.discover`
    wraps it in a :class:`~repro.discover.DiscoverResult`.
    """
    if parallel_backend not in ("thread", "process"):
        raise ValueError("unknown parallel backend %r "
                         "(expected 'thread' or 'process')"
                         % (parallel_backend,))
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    ranges = ranges if ranges is not None else tables.load_ranges()

    inferred: Dict[str, Any] = {}
    evidence: Dict[str, Any] = {}
    for stage in _STAGES:
        updates, stage_evidence = _run_stage(stage, oracle, inferred,
                                             ranges, jobs, parallel_backend)
        inferred.update(updates)
        evidence.update(stage_evidence)

    model = _base_model(inferred, ranges, name=name)
    doc = tables.model_to_doc(model)
    all_paths = sorted(set(_all_param_paths(model)))
    inferred_paths = sorted(inferred)
    fixed = ranges.get("fixed", {})
    assumed = {path: tables.param_value(model, path)
               for path in all_paths if path not in inferred}
    crosscheck = _crosscheck(oracle, model, inferred)
    return {
        "name": name,
        "doc": doc,
        "params": {path: tables.param_value(model, path)
                   for path in all_paths},
        "inferred": {path: inferred[path] for path in inferred_paths},
        "assumed": assumed,
        "pinned": sorted(set(fixed) - set(inferred_paths)),
        "evidence": evidence,
        "crosscheck": crosscheck,
    }


def _all_param_paths(model: ProcessorModel) -> List[str]:
    paths = list(tables._SCALAR_PATHS)
    for klass in model.latency:
        paths.append("instructions.%s.latency" % klass)
        paths.append("instructions.%s.ports" % klass)
    return paths
