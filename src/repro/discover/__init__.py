"""``repro.discover`` — automated µarch parameter discovery.

The paper derives per-platform facts ("lea can only be executed on port
0, sarl on ports 0 and 5") from hand-run microbenchmarks; this package
automates the derivation, nanoBench-style.  :func:`discover` takes a
processor oracle — a registry name, a profile path, an inline document,
a :class:`~repro.uarch.model.ProcessorModel`, or a blinded-profile
``seed`` — runs the staged ladder harness of
:mod:`repro.discover.engine`, and returns a :class:`DiscoverResult`
whose ``profile_doc()`` is a complete ``pymao.uarch/1`` document: drop
it in a file and every ``core=`` surface accepts it.

Determinism: for a fixed oracle the result document is byte-identical
at any ``jobs`` count and under both executor backends; the discovery
determinism tests pin this.

Surfaces: ``mao discover`` / :func:`repro.api.discover` (this module),
``benchmarks/bench_discover.py`` emits ``mao-bench-discover/1``
documents gated by ``DiscoverReport`` in ``scripts/perf_report.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Optional

from repro.result import ApiResult, register_schema
from repro.uarch import tables
from repro.uarch.model import ProcessorModel
from repro.discover.engine import (  # noqa: F401  (re-exported)
    DiscoveryError,
    LATENCY_CLASSES,
    PORT_CLASSES,
    run_discovery,
)

#: Schema tag of the discovery benchmark document
#: (``benchmarks/bench_discover.py`` -> ``BENCH_discover.json``).
DISCOVER_BENCH_SCHEMA = register_schema("bench-discover",
                                        "mao-bench-discover/1")

DISCOVER_SCHEMA = "pymao.discover/1"


@dataclass
class DiscoverResult(ApiResult):
    """Outcome of one :func:`discover` run.

    ``doc`` is the assembled ``pymao.uarch/1`` profile; ``inferred`` /
    ``assumed`` partition every parameter path into measured-by-ladder
    versus taken-from-defaults; ``evidence`` records which ladder
    produced each inference; ``crosscheck`` replays a battery on the
    assembled model against the oracle.
    """

    SCHEMA: ClassVar[str] = DISCOVER_SCHEMA
    SCHEMA_LABEL: ClassVar[str] = "discover"

    name: str
    doc: Dict[str, Any]
    params: Dict[str, Any] = field(default_factory=dict)
    inferred: Dict[str, Any] = field(default_factory=dict)
    assumed: Dict[str, Any] = field(default_factory=dict)
    pinned: list = field(default_factory=list)
    evidence: Dict[str, Any] = field(default_factory=dict)
    crosscheck: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    wall_s: float = 0.0

    def profile_doc(self) -> Dict[str, Any]:
        """The ``pymao.uarch/1`` document, with discovery provenance in
        ``meta`` (deterministic — no timestamps or timings)."""
        doc = dict(self.doc)
        meta = dict(doc.get("meta") or {})
        meta["discovery"] = {
            "engine": "repro.discover",
            "seed": self.seed,
            "inferred": sorted(self.inferred),
            "assumed": sorted(self.assumed),
            "crosscheck": {"matched": self.crosscheck.get("matched"),
                           "total": self.crosscheck.get("total")},
        }
        doc["meta"] = meta
        return doc

    def model(self) -> ProcessorModel:
        return tables.doc_to_model(self.doc, where=self.name)

    def to_dict(self, timings: bool = False) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema": DISCOVER_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "profile": self.profile_doc(),
            "inferred": dict(self.inferred),
            "assumed": dict(self.assumed),
            "pinned": list(self.pinned),
            "evidence": dict(self.evidence),
            "crosscheck": dict(self.crosscheck),
        }
        if timings:
            doc["wall_s"] = round(self.wall_s, 6)
        return doc

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DiscoverResult":
        cls.check_schema(data)
        profile = dict(data.get("profile") or {})
        profile.pop("meta", None)
        result = cls(name=data.get("name", "discovered"),
                     doc=profile,
                     inferred=dict(data.get("inferred") or {}),
                     assumed=dict(data.get("assumed") or {}),
                     pinned=list(data.get("pinned") or []),
                     evidence=dict(data.get("evidence") or {}),
                     crosscheck=dict(data.get("crosscheck") or {}),
                     seed=data.get("seed"),
                     wall_s=data.get("wall_s", 0.0))
        model = result.model()
        result.params = {path: tables.param_value(model, path)
                         for path in sorted(result.inferred)}
        return result

    def explain(self) -> str:
        lines = ["discovered profile %r%s" % (
            self.name,
            "" if self.seed is None else " (blinded seed %d)" % self.seed)]
        lines.append("  inferred parameters:")
        for path in sorted(self.inferred):
            lines.append("    %-42s = %r" % (path, self.inferred[path]))
        lines.append("  assumed (not runtime-identifiable): %d parameters"
                     % len(self.assumed))
        check = self.crosscheck or {}
        lines.append("  cross-check: %s/%s probe benchmarks cycle-exact"
                     % (check.get("matched", "?"), check.get("total", "?")))
        return "\n".join(lines)


def discover(core: Any = None, *, seed: Optional[int] = None,
             name: Optional[str] = None, jobs: int = 1,
             parallel_backend: str = "thread") -> DiscoverResult:
    """Run the discovery harness against an oracle.

    Exactly one of *core* (anything :func:`repro.uarch.tables.
    resolve_core` accepts, or a :class:`ProcessorModel`) and *seed* (a
    :func:`repro.uarch.profiles.blinded_profile` seed) selects the
    oracle.  The harness treats it as a measurement target only — it
    never reads the model's fields, so a blinded profile is discovered
    exactly as an unknown silicon target would be.
    """
    import time

    from repro.uarch import profiles

    if (core is None) == (seed is None):
        raise ValueError("pass exactly one of core= or seed=")
    if seed is not None:
        oracle = profiles.blinded_profile(seed)
        default_name = "discovered-blinded-%d" % seed
    else:
        oracle = tables.resolve_core(core)
        default_name = "discovered-%s" % oracle.name
    start = time.perf_counter()
    report = run_discovery(oracle, name=name or default_name, jobs=jobs,
                           parallel_backend=parallel_backend)
    wall = time.perf_counter() - start
    return DiscoverResult(name=report["name"], doc=report["doc"],
                          params=report["params"],
                          inferred=report["inferred"],
                          assumed=report["assumed"],
                          pinned=report["pinned"],
                          evidence=report["evidence"],
                          crosscheck=report["crosscheck"],
                          seed=seed, wall_s=wall)


__all__ = [
    "DISCOVER_BENCH_SCHEMA",
    "DISCOVER_SCHEMA",
    "DiscoverResult",
    "DiscoveryError",
    "LATENCY_CLASSES",
    "PORT_CLASSES",
    "discover",
    "run_discovery",
]
