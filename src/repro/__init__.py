"""PyMAO — a reproduction of "MAO: An Extensible Micro-Architectural
Optimizer" (Hundt, Raman, Thuresson, Vachharajani — CGO 2011).

The supported front door is :mod:`repro.api`::

    from repro import api

    result = api.optimize(open("hot.s").read(), "REDZEE:REDTEST:LOOP16")
    sim = api.simulate(result.unit, "core2")

The lower-level entry points stay re-exported for convenience::

    from repro import parse_unit, run_passes, run_unit, simulate_trace
    from repro import core2, opteron

    unit = parse_unit(open("hot.s").read())
    run_passes(unit, "REDZEE:REDTEST:LOOP16")
    stats = simulate_trace(run_unit(unit, collect_trace=True).trace,
                           core2())

Subpackages:

* ``repro.x86`` — assembler substrate: parser, registers, encoder,
  decoder, side-effect tables.
* ``repro.ir`` — the MAO IR (entry list, sections, functions).
* ``repro.analysis`` — CFG, data-flow, Havlak loops, repeated relaxation.
* ``repro.passes`` — the optimization passes and the pass manager.
* ``repro.sim`` — architectural interpreter.
* ``repro.uarch`` — micro-architectural timing model (Core-2 / Opteron).
* ``repro.mbench`` — the §IV microbenchmark/parameter-detection framework.
* ``repro.workloads`` — paper kernels, corpus generator, SPEC-named
  synthetic benchmarks.
* ``repro.profiling`` — sampling, annotation, reuse distance, edge
  profiles.
* ``repro.api`` — the supported facade (``optimize`` / ``simulate`` /
  ``optimize_many``).
* ``repro.obs`` — tracing spans, the metrics registry, trace sinks.
* ``repro.batch`` — corpus engine: multi-file scheduler plus the
  persistent content-addressed artifact cache.
"""

__version__ = "0.1.0"

from repro import obs
from repro.ir import MaoUnit, parse_unit
from repro.passes import PassPipeline, run_passes
from repro.sim import run_unit
from repro.uarch import core2, opteron, simulate_trace
from repro import api

__all__ = [
    "__version__",
    "MaoUnit",
    "parse_unit",
    "PassPipeline",
    "run_passes",
    "run_unit",
    "core2",
    "opteron",
    "simulate_trace",
    "api",
    "obs",
]
