"""Memory reuse-distance profiling (the §III.E.k profiler substitute).

The paper used "a novel memory reuse distance profiler to identify loads
with little reuse".  Here the reuse distance of a load site is measured
over the interpreter's dynamic trace as the LRU stack distance of its
cache-line accesses: the number of *distinct* lines touched between
consecutive accesses to the same line.  Sites whose median distance
exceeds the cache capacity gain nothing from caching — they are the
non-temporal candidates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.sim.interp import ExecRecord

_INFINITE = float("inf")


def reuse_distance_profile(trace: Iterable[ExecRecord],
                           line_bytes: int = 64) -> Dict[int, float]:
    """source line -> median reuse distance (in distinct cache lines).

    Profiles are keyed by the load's source line number so they survive
    re-parsing the program (the pass consuming the profile operates on a
    fresh MaoUnit).  First-touch accesses count as infinite distance.
    """
    stack: List[int] = []            # LRU stack of cache lines (MRU last)
    distances: Dict[int, List[float]] = {}

    for record in trace:
        if record.ea is None or not record.insn.reads_memory:
            continue
        line = record.ea // line_bytes
        try:
            depth = len(stack) - 1 - stack.index(line)
        except ValueError:
            depth = _INFINITE
        else:
            stack.remove(line)
        stack.append(line)
        if len(stack) > 65536:
            del stack[0]
        if depth > 0:
            # Same-line streaks (depth 0) are spatial locality the cache
            # always captures; the non-temporal decision is about how far
            # apart *line* reuses are, so only line transitions count.
            distances.setdefault(record.entry.lineno, []).append(depth)

    profile: Dict[int, float] = {}
    for key, values in distances.items():
        values.sort()
        profile[key] = values[len(values) // 2]
    return profile
