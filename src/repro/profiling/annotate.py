"""Map hardware-event samples onto IR instructions.

Paper §II: "Tools like oprofile associate hardware event samples to offsets
within functions.  Since MAO has instruction sizes available, samples can
be directly mapped to individual instructions."  The relaxed layout gives
every instruction an (address, size) extent; a sample at any byte offset
inside that extent is attributed to the instruction.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.relax import relax_section
from repro.ir.entries import InstructionEntry
from repro.ir.unit import Function, MaoUnit


def annotate_unit(unit: MaoUnit,
                  address_counts: Dict[int, int]
                  ) -> Dict[InstructionEntry, int]:
    """Attribute absolute-address sample counts to instructions."""
    annotations: Dict[InstructionEntry, int] = {}
    for section in unit.sections.values():
        if not section.is_code:
            continue
        if not any(e.section is section for e in unit.entries()):
            continue
        layout = relax_section(unit, section)
        for entry, place in layout.placement.items():
            if not isinstance(entry, InstructionEntry) or place.size == 0:
                continue
            total = 0
            for offset in range(place.size):
                total += address_counts.get(place.address + offset, 0)
            if total:
                annotations[entry] = annotations.get(entry, 0) + total
    return annotations


def annotate_samples(function: Function,
                     offset_counts: Dict[int, int]
                     ) -> Dict[InstructionEntry, int]:
    """Attribute (function-relative offset -> count) samples, the way
    oprofile reports them, to the function's instructions."""
    layout = relax_section(function.unit, function.section)
    start_entry = function.start
    base = layout.symtab.get(function.name)
    if base is None:
        return {}
    annotations: Dict[InstructionEntry, int] = {}
    for entry in function.entries():
        if not isinstance(entry, InstructionEntry):
            continue
        place = layout.placement.get(entry)
        if place is None:
            continue
        offset = place.address - base
        total = 0
        for i in range(place.size):
            total += offset_counts.get(offset + i, 0)
        if total:
            annotations[entry] = total
    return annotations
