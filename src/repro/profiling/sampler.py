"""PMU-style sampling over the architectural interpreter.

Each sample carries the instruction address plus a register-file snapshot —
the same payload the RACEZ work gets from hardware sampling ("For each PMU
sample, we also get the content of the register file for the sampled
instruction", §III.E.m).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.entries import InstructionEntry
from repro.ir.unit import MaoUnit
from repro.sim.interp import Interpreter
from repro.sim.loader import LoadedProgram, load_unit


@dataclass
class SampleSet:
    """Samples from one run: (instruction entry, register snapshot)."""

    program: LoadedProgram
    samples: List[Tuple[InstructionEntry, Dict[str, int]]] = \
        field(default_factory=list)
    steps: int = 0

    def __len__(self) -> int:
        return len(self.samples)

    def counts_by_entry(self) -> Dict[int, int]:
        """id(entry) -> number of samples landing on it."""
        counts: Dict[int, int] = {}
        for entry, _ in self.samples:
            counts[id(entry)] = counts.get(id(entry), 0) + 1
        return counts


def sample_phase_for(seed: Optional[int], period: int) -> int:
    """The sampling phase a given *seed* selects within *period*.

    ``seed=None`` keeps the historical phase 0 (sample at every multiple
    of the period).  Any explicit seed picks a phase purely from
    ``(seed, period)`` — no global RNG state, no wall clock — so the
    same seed reproduces the same sample stream regardless of worker
    count or scheduling.
    """
    if seed is None or period <= 1:
        return 0
    return random.Random(seed).randrange(period)


def collect_samples(unit: MaoUnit, period: int,
                    entry_symbol: str = "main",
                    args: Optional[List[int]] = None,
                    max_steps: int = 5_000_000,
                    seed: Optional[int] = None) -> SampleSet:
    """Run the program sampling every *period* instructions.

    *seed* deterministically offsets which step within each period is
    sampled (see :func:`sample_phase_for`); ``None`` preserves the
    historical phase-0 behavior byte for byte.
    """
    program = load_unit(unit, entry_symbol)
    interp = Interpreter(program, max_steps=max_steps)
    result = interp.run(sample_period=period, args=args,
                        sample_phase=sample_phase_for(seed, period))
    sample_set = SampleSet(program, steps=result.steps)
    for address, snapshot in result.samples or []:
        entry = program.code_index.get(address)
        if entry is not None:
            sample_set.samples.append((entry, snapshot))
    return sample_set
