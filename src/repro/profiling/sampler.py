"""PMU-style sampling over the architectural interpreter.

Each sample carries the instruction address plus a register-file snapshot —
the same payload the RACEZ work gets from hardware sampling ("For each PMU
sample, we also get the content of the register file for the sampled
instruction", §III.E.m).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.entries import InstructionEntry
from repro.ir.unit import MaoUnit
from repro.sim.interp import Interpreter
from repro.sim.loader import LoadedProgram, load_unit


@dataclass
class SampleSet:
    """Samples from one run: (instruction entry, register snapshot)."""

    program: LoadedProgram
    samples: List[Tuple[InstructionEntry, Dict[str, int]]] = \
        field(default_factory=list)
    steps: int = 0

    def __len__(self) -> int:
        return len(self.samples)

    def counts_by_entry(self) -> Dict[int, int]:
        """id(entry) -> number of samples landing on it."""
        counts: Dict[int, int] = {}
        for entry, _ in self.samples:
            counts[id(entry)] = counts.get(id(entry), 0) + 1
        return counts


def collect_samples(unit: MaoUnit, period: int,
                    entry_symbol: str = "main",
                    args: Optional[List[int]] = None,
                    max_steps: int = 5_000_000) -> SampleSet:
    """Run the program sampling every *period* instructions."""
    program = load_unit(unit, entry_symbol)
    interp = Interpreter(program, max_steps=max_steps)
    result = interp.run(sample_period=period, args=args)
    sample_set = SampleSet(program, steps=result.steps)
    for address, snapshot in result.samples or []:
        entry = program.code_index.get(address)
        if entry is not None:
            sample_set.samples.append((entry, snapshot))
    return sample_set
