"""Profiling support: PMU-style sampling, IR annotation, reuse distance.

Substitutes for the oprofile-based flow the paper describes at the end of
§II ("MAO's IR can also be annotated with hardware counter profile
information ... samples can be directly mapped to individual instructions")
and provides the memory-reuse-distance profile that drives the
inverse-prefetching pass (§III.E.k).
"""

from repro.profiling.sampler import collect_samples, SampleSet
from repro.profiling.annotate import annotate_unit, annotate_samples
from repro.profiling.reuse import reuse_distance_profile

__all__ = [
    "collect_samples",
    "SampleSet",
    "annotate_unit",
    "annotate_samples",
    "reuse_distance_profile",
]
