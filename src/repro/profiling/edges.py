"""Edge-profile construction from hardware samples (paper §II, future work).

"Similar to Chen [3] we plan to construct edge profiles from this
information as future work, as that information can make a large
performance difference in certain contexts."

Hardware samples give per-*block* weights only.  This module estimates
per-*edge* frequencies that (a) respect flow conservation — a block's
incoming frequency equals its outgoing frequency equals its weight — and
(b) stay close to the sampled weights, via damped iterative proportional
fitting (the practical core of Chen et al.'s sample-taming approach).

Use :func:`edge_profile_from_samples` with a CFG and block sample counts,
or :func:`true_edge_counts` to extract exact counts from an interpreter
trace (the tests' ground truth).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.cfg import CFG, BasicBlock
from repro.sim.interp import ExecRecord

Edge = Tuple[int, int]                 # (from block index, to block index)


class EdgeProfile:
    """Estimated execution frequencies for a CFG's edges and blocks."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.block_weight: Dict[int, float] = {}
        self.edge_weight: Dict[Edge, float] = {}

    def frequency(self, block: BasicBlock, succ: BasicBlock) -> float:
        return self.edge_weight.get((block.index, succ.index), 0.0)

    def taken_probability(self, block: BasicBlock) -> Optional[float]:
        """P(branch taken) for a block ending in a conditional branch."""
        last = block.last
        if last is None or not last.insn.is_cond_jump:
            return None
        total = sum(self.frequency(block, s) for s in block.successors)
        if total <= 0:
            return None
        target = last.insn.branch_target_label()
        taken = sum(self.frequency(block, s) for s in block.successors
                    if target in s.labels)
        return taken / total

    def hottest_edges(self, count: int = 10) -> List[Tuple[Edge, float]]:
        return sorted(self.edge_weight.items(), key=lambda kv: -kv[1])[:count]


def edge_profile_from_samples(cfg: CFG,
                              block_samples: Dict[int, float],
                              iterations: int = 50) -> EdgeProfile:
    """Estimate edge frequencies from per-block sample weights.

    ``block_samples`` maps block index -> sample count.  Returns an
    :class:`EdgeProfile` whose edge weights satisfy flow conservation
    approximately (exactly, in the limit, for well-posed inputs).
    """
    profile = EdgeProfile(cfg)
    blocks = cfg.blocks
    if not blocks:
        return profile

    weight = {b.index: float(block_samples.get(b.index, 0.0))
              for b in blocks}
    # Smooth zero-sample blocks on hot paths: give them the mean of their
    # sampled neighbours so the fitting has something to work with.
    for block in blocks:
        if weight[block.index] > 0:
            continue
        neighbours = [weight[n.index]
                      for n in block.predecessors + block.successors
                      if n is not cfg.exit]
        positive = [w for w in neighbours if w > 0]
        if positive:
            weight[block.index] = sum(positive) / len(positive) / 2.0

    edges: List[Tuple[BasicBlock, BasicBlock]] = []
    for block in blocks:
        for succ in block.successors:
            if succ is not cfg.exit:
                edges.append((block, succ))

    # Initialize: split each block's weight uniformly over its edges.
    estimate: Dict[Edge, float] = {}
    for block, succ in edges:
        fanout = sum(1 for s in block.successors if s is not cfg.exit)
        estimate[(block.index, succ.index)] = \
            weight[block.index] / max(fanout, 1)

    for _ in range(iterations):
        # Scale outgoing edges to match the source weight, then incoming
        # edges to match the destination weight (IPF).
        for direction in ("out", "in"):
            totals: Dict[int, float] = defaultdict(float)
            for (src, dst), value in estimate.items():
                totals[src if direction == "out" else dst] += value
            for (src, dst) in list(estimate):
                anchor = src if direction == "out" else dst
                target = weight.get(anchor, 0.0)
                total = totals[anchor]
                if total > 0 and target > 0:
                    estimate[(src, dst)] *= \
                        1.0 + 0.5 * (target / total - 1.0)

    profile.block_weight = weight
    profile.edge_weight = estimate
    return profile


def block_samples_from_trace(cfg: CFG,
                             trace: Iterable[ExecRecord],
                             period: int = 1) -> Dict[int, float]:
    """Per-block sample counts, as a PMU sampling every *period* insns
    would deliver them."""
    entry_to_block: Dict[int, int] = {}
    for block in cfg.blocks:
        for entry in block.entries:
            entry_to_block[id(entry)] = block.index
    counts: Dict[int, float] = defaultdict(float)
    for i, record in enumerate(trace):
        if i % period:
            continue
        index = entry_to_block.get(id(record.entry))
        if index is not None:
            counts[index] += 1
    return dict(counts)


def true_edge_counts(cfg: CFG,
                     trace: Iterable[ExecRecord]) -> Dict[Edge, int]:
    """Exact edge execution counts from a dynamic trace (ground truth)."""
    entry_to_block: Dict[int, int] = {}
    for block in cfg.blocks:
        for entry in block.entries:
            entry_to_block[id(entry)] = block.index
    counts: Dict[Edge, int] = defaultdict(int)
    previous: Optional[int] = None
    for record in trace:
        index = entry_to_block.get(id(record.entry))
        if index is None:
            previous = None
            continue
        if previous is not None and previous != index:
            counts[(previous, index)] += 1
        previous = index
    return dict(counts)
