"""Hierarchical tracing spans.

A *span* covers one phase of a run — parse, one pass over one function,
relaxation, simulation — with a wall-clock duration, free-form JSON
attributes, and child spans.  The default tracer is process-wide and
**off**; when disabled, :func:`Tracer.span` yields a falsy null span and
costs one attribute load plus a generator frame, so instrumentation can
stay in place on hot paths that run once per pass or per program (never
per instruction).

Parallel backends
-----------------

Worker threads and worker processes cannot append to the caller's span
stack directly (thread-locality; process isolation).  Instead a worker
builds a *detached* subtree (:func:`Tracer.detached`) — recorded with
normal nesting inside the worker but attached to nothing — and the
coordinator adopts the finished subtrees in **function order**, mirroring
the pass manager's deterministic report merge.  Process workers return
``Span.to_dict()`` payloads; ``Span.from_dict`` rebuilds them on the
coordinator side.  The result: the span tree for ``--jobs 4`` is
structurally identical to the serial one, whatever the completion order.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import profile as _profile
from repro.result import register_schema

#: Version tag carried by every serialized trace event.
TRACE_SCHEMA = register_schema("trace", "pymao.trace/1")


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = ("name", "attrs", "children", "start_s", "dur_s")

    def __init__(self, name: str,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.start_s = 0.0
        self.dur_s = 0.0

    def attach(self, **attrs: Any) -> "Span":
        """Add attributes (counters, sizes, outcomes) to the span."""
        self.attrs.update(attrs)
        return self

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "dur_s": round(self.dur_s, 6),
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        if data.get("type") != "span":
            raise ValueError("not a span event: %r" % (data.get("type"),))
        span = cls(data["name"], data.get("attrs") or {})
        span.start_s = float(data.get("start_s", 0.0))
        span.dur_s = float(data.get("dur_s", 0.0))
        span.children = [cls.from_dict(c) for c in data.get("children", ())]
        return span

    def __repr__(self) -> str:
        return "Span(%r, dur=%.6fs, children=%d)" % (
            self.name, self.dur_s, len(self.children))


class _NullSpan:
    """Falsy stand-in yielded while tracing is disabled."""

    __slots__ = ()
    name = "<null>"
    attrs: Dict[str, Any] = {}
    children: tuple = ()
    start_s = dur_s = 0.0

    def attach(self, **attrs: Any) -> "_NullSpan":
        return self

    def find(self, name: str) -> None:
        return None

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "<null span>"


NULL_SPAN = _NullSpan()


class Tracer:
    """Process-wide span collector with per-thread nesting stacks."""

    def __init__(self) -> None:
        self.enabled = False
        self.roots: List[Span] = []
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child of the current thread's innermost span (or a new
        root).  Yields the live :class:`Span` — falsy when disabled."""
        if not self.enabled:
            yield NULL_SPAN
            return
        yield from self._run(Span(name, attrs), detached=False)

    @contextmanager
    def detached(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a subtree that is attached to nothing; the caller adopts
        the yielded span (see :func:`adopt`) after the worker finishes."""
        if not self.enabled:
            yield NULL_SPAN
            return
        yield from self._run(Span(name, attrs), detached=True)

    def _run(self, span: Span, detached: bool) -> Iterator[Span]:
        stack = self._stack()
        parent = None if detached or not stack else stack[-1]
        stack.append(span)
        prof = _profile.maybe_start(span.name)
        span.start_s = time.perf_counter()
        try:
            yield span
        finally:
            span.dur_s = time.perf_counter() - span.start_s
            if prof is not None:
                span.attrs["profile"] = _profile.stop(prof)
            # The span may not be on top if a worker leaked a frame;
            # remove by identity to stay robust.
            try:
                stack.remove(span)
            except ValueError:
                pass
            if parent is not None:
                parent.children.append(span)
            elif not detached:
                self.roots.append(span)

    def adopt(self, parent: Any, child: Any) -> None:
        """Attach a finished detached subtree under *parent* (no-op for
        null spans, so call sites need no enabled-check)."""
        if isinstance(parent, Span) and isinstance(child, Span):
            parent.children.append(child)
        elif parent is None and isinstance(child, Span):
            self.roots.append(child)

    def reset(self) -> None:
        self.roots = []
        self._local = threading.local()

    def finish(self) -> List[Span]:
        """The completed root spans recorded so far."""
        return list(self.roots)


#: The process-wide default tracer used by all instrumentation points.
TRACER = Tracer()


def enabled() -> bool:
    return TRACER.enabled


def set_enabled(value: bool) -> bool:
    """Toggle tracing; returns the previous setting."""
    previous = TRACER.enabled
    TRACER.enabled = bool(value)
    return previous


@contextmanager
def tracing_enabled() -> Iterator[Tracer]:
    """Enable tracing on a fresh tracer state for the dynamic extent."""
    previous = set_enabled(True)
    try:
        yield TRACER
    finally:
        set_enabled(previous)


def span(name: str, **attrs: Any):
    return TRACER.span(name, **attrs)


def detached_span(name: str, **attrs: Any):
    return TRACER.detached(name, **attrs)


def adopt_span(parent: Any, child: Any) -> None:
    TRACER.adopt(parent, child)


def reset_tracer() -> None:
    TRACER.reset()


def finish_spans() -> List[Span]:
    return TRACER.finish()
