"""Trace sinks: where finished spans and metric snapshots go.

Every sink consumes *events* — plain dicts, one of three types, each
self-describing with ``"schema": "pymao.trace/1"``:

* ``meta`` — first event of a stream: schema version plus free-form
  context (argv, workload name, jobs);
* ``span`` — one **root** span with its children nested inline (see
  :meth:`repro.obs.span.Span.to_dict`);
* ``metrics`` — a flat registry snapshot (``values: {name: number}``).

Three sinks cover the consumers: ``JsonlSink`` writes one event per line
(the ``--trace-out`` format, also emitted by the bench runner and gated
by ``scripts/validate_trace.py``), ``MemorySink`` collects events for
tests, and ``TextSink`` renders a human-readable span tree.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional

from repro.obs.metrics import REGISTRY, Registry
from repro.obs.span import Span, TRACE_SCHEMA


def meta_event(**context: Any) -> Dict[str, Any]:
    event = {"schema": TRACE_SCHEMA, "type": "meta", "version": 1}
    event.update(context)
    return event


def span_event(span: Span) -> Dict[str, Any]:
    event = span.to_dict()
    event["schema"] = TRACE_SCHEMA
    return event


def metrics_event(values: Dict[str, float]) -> Dict[str, Any]:
    return {"schema": TRACE_SCHEMA, "type": "metrics", "values": values}


class MemorySink:
    """Keep events in memory (tests and in-process consumers)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def spans(self) -> List[Span]:
        return [Span.from_dict(e) for e in self.events
                if e.get("type") == "span"]


class JsonlSink:
    """Write one JSON event per line (the on-disk trace format)."""

    def __init__(self, path_or_file) -> None:
        if hasattr(path_or_file, "write"):
            self._file: IO[str] = path_or_file
            self._owned = False
        else:
            self._file = open(path_or_file, "w")
            self._owned = True

    def emit(self, event: Dict[str, Any]) -> None:
        self._file.write(json.dumps(event, sort_keys=True) + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owned:
            self._file.close()


class TextSink:
    """Render spans as an indented tree and metrics as aligned rows."""

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream

    def emit(self, event: Dict[str, Any]) -> None:
        kind = event.get("type")
        if kind == "span":
            self._emit_span(event, depth=0)
        elif kind == "metrics":
            for name, value in sorted(event.get("values", {}).items()):
                self._stream.write("  %-44s %s\n" % (name, _fmt(value)))
        elif kind == "meta":
            self._stream.write("trace %s\n" % event.get("schema"))

    def _emit_span(self, event: Dict[str, Any], depth: int) -> None:
        attrs = event.get("attrs") or {}
        rendered = " ".join("%s=%s" % (k, _fmt(v))
                            for k, v in sorted(attrs.items())
                            if not isinstance(v, dict))
        self._stream.write("%s%-*s %8.3fms  %s\n"
                           % ("  " * depth, 24 - 2 * min(depth, 8),
                              event.get("name", "?"),
                              1e3 * float(event.get("dur_s", 0.0)),
                              rendered))
        for child in event.get("children", ()):
            self._emit_span(child, depth + 1)

    def close(self) -> None:
        self._stream.flush()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def write_trace(sink, spans: List[Span],
                registry: Optional[Registry] = REGISTRY,
                **meta: Any) -> None:
    """Emit a complete trace: meta, every root span, one metrics event."""
    sink.emit(meta_event(**meta))
    for span in spans:
        sink.emit(span_event(span))
    if registry is not None:
        sink.emit(metrics_event(registry.snapshot()))


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace back into event dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
