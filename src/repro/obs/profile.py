"""Opt-in per-span cProfile capture.

Profiling is gated twice: the ``PYMAO_PROFILE`` environment variable (or
``mao --profile-spans``) must name an ``fnmatch`` pattern, and only spans
whose name matches the pattern are profiled.  cProfile cannot nest, so
while one span is being profiled inner spans run unprofiled; the captured
summary (top functions by cumulative time) lands in the span's
``profile`` attribute and travels with the trace.
"""

from __future__ import annotations

import cProfile
import fnmatch
import os
import pstats
from typing import Any, Dict, Optional

ENV_VAR = "PYMAO_PROFILE"

_PATTERN: Optional[str] = None
_ACTIVE = False
_TOP_N = 10


def configure(pattern: Optional[str]) -> None:
    """Set the span-name pattern to profile (None disables)."""
    global _PATTERN
    _PATTERN = pattern or None


def configure_from_env(environ: Optional[Dict[str, str]] = None) -> None:
    configure((environ or os.environ).get(ENV_VAR))


def pattern() -> Optional[str]:
    return _PATTERN


def maybe_start(span_name: str) -> Optional[cProfile.Profile]:
    """Start a profiler for this span if the gate matches and no other
    span is being profiled."""
    global _ACTIVE
    if _PATTERN is None or _ACTIVE \
            or not fnmatch.fnmatch(span_name, _PATTERN):
        return None
    prof = cProfile.Profile()
    _ACTIVE = True
    prof.enable()
    return prof


def stop(prof: cProfile.Profile) -> Dict[str, Any]:
    """Stop a profiler started by :func:`maybe_start`; return a JSON-safe
    summary of the hottest functions."""
    global _ACTIVE
    prof.disable()
    _ACTIVE = False
    stats = pstats.Stats(prof)
    rows = []
    entries = sorted(stats.stats.items(),
                     key=lambda item: item[1][3], reverse=True)
    for (filename, lineno, funcname), row in entries[:_TOP_N]:
        cc, nc, tottime, cumtime = row[:4]
        rows.append({
            "function": "%s:%d:%s" % (os.path.basename(filename), lineno,
                                      funcname),
            "calls": nc,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    return {"total_calls": stats.total_calls, "top": rows}
