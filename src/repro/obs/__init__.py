"""``repro.obs`` — the zero-dependency observability layer.

Three coupled pieces, threaded through every layer of PyMAO:

* **Spans** (:mod:`repro.obs.span`) — hierarchical wall-clock phases
  (parse → per-pass → relax → encode → sim/pipeline), off by default,
  surviving the thread *and* process parallel backends via deterministic
  serialized span merge.
* **Metrics** (:mod:`repro.obs.metrics`) — one process-wide registry of
  counters/gauges/histograms absorbing the formerly scattered stats
  (encoding cache, block cache, loop fast-forward, program cache,
  per-pass transformation counts).
* **Sinks** (:mod:`repro.obs.sinks`) — human text, JSON-lines event log
  (``pymao.trace/1``), and in-memory capture for tests; plus opt-in
  per-span cProfile capture (:mod:`repro.obs.profile`, gated by
  ``PYMAO_PROFILE`` / ``mao --profile-spans``).

Typical use::

    from repro import obs

    with obs.tracing_enabled():
        result = repro.api.optimize(src, "REDTEST:LOOP16")
        sim = repro.api.simulate(result.unit, "core2")
    obs.write_trace(obs.JsonlSink("trace.jsonl"), obs.finish_spans(),
                    argv=["..."])
"""

from repro.obs import profile
from repro.obs.metrics import (
    Histogram,
    REGISTRY,
    Registry,
    install_default_collectors,
)
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    TextSink,
    meta_event,
    metrics_event,
    read_jsonl,
    span_event,
    write_trace,
)
from repro.obs.span import (
    NULL_SPAN,
    Span,
    TRACE_SCHEMA,
    TRACER,
    Tracer,
    adopt_span,
    detached_span,
    enabled,
    finish_spans,
    reset_tracer,
    set_enabled,
    span,
    tracing_enabled,
)

install_default_collectors()
profile.configure_from_env()

__all__ = [
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "TRACER",
    "NULL_SPAN",
    "span",
    "detached_span",
    "adopt_span",
    "enabled",
    "set_enabled",
    "tracing_enabled",
    "reset_tracer",
    "finish_spans",
    "Registry",
    "REGISTRY",
    "Histogram",
    "install_default_collectors",
    "JsonlSink",
    "MemorySink",
    "TextSink",
    "meta_event",
    "span_event",
    "metrics_event",
    "write_trace",
    "read_jsonl",
    "profile",
]
