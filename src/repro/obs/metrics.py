"""The process-wide metrics registry.

One registry absorbs what used to be scattered one-off stat mechanisms:
per-pass transformation counts (``pass.<NAME>.<stat>`` counters fed by the
pass manager), the engine caches (encoding cache, basic-block cache, loop
fast-forward, mbench program cache — polled through *collectors* so the
counters stay owned by their modules), and anything a bench or pass wants
to record ad hoc (counters, gauges, histograms).

``snapshot()`` flattens everything into one sorted ``name -> number``
mapping; that mapping is what the ``--sim-stats`` text view, the
``--trace-out`` JSONL metrics event, and the bench event logs all render,
so every surface reports the same values.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

Number = float


class Histogram:
    """Streaming summary: count / total / min / max (no buckets — the
    consumers only ever report aggregates)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def summary(self) -> Dict[str, float]:
        mean = (self.total / self.count) if self.count else 0.0
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }


class Registry:
    """Counters, gauges, histograms, and pollable collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Callable[[], Dict[str, object]]] = {}

    # -- writers ------------------------------------------------------------

    def inc(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def register_collector(self, prefix: str,
                           fn: Callable[[], Dict[str, object]]) -> None:
        """Register a poll function whose numeric items appear in every
        snapshot as ``<prefix>.<key>``.  Re-registering a prefix replaces
        the previous collector (idempotent module reloads)."""
        with self._lock:
            self._collectors[prefix] = fn

    # -- readers ------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self, collectors: bool = True) -> Dict[str, Number]:
        """One flat, sorted ``metric name -> value`` mapping."""
        with self._lock:
            values: Dict[str, Number] = dict(self._counters)
            values.update(self._gauges)
            for name, hist in self._histograms.items():
                for key, value in hist.summary().items():
                    values["%s.%s" % (name, key)] = value
            polls = list(self._collectors.items()) if collectors else []
        for prefix, fn in polls:
            for key, value in fn().items():
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue
                values["%s.%s" % (prefix, key)] = value
        return dict(sorted(values.items()))

    def reset(self) -> None:
        """Zero the registry's own series (collectors poll live state and
        are left registered)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide default registry used by all instrumentation points.
REGISTRY = Registry()


def install_default_collectors(registry: Registry = REGISTRY) -> None:
    """Wire the engine caches' existing stat functions into *registry*.

    Imports are deferred to poll time, so registering costs nothing and
    creates no import cycles; each subsystem keeps owning its counters.
    """

    def _encoding_cache() -> Dict[str, object]:
        from repro.x86.encoder import encoding_cache_stats
        return encoding_cache_stats()

    def _block_cache() -> Dict[str, object]:
        from repro.sim.interp import block_cache_stats
        return block_cache_stats()

    def _fast_forward() -> Dict[str, object]:
        from repro.uarch.pipeline import fast_forward_stats
        return fast_forward_stats()

    def _program_cache() -> Dict[str, object]:
        from repro.mbench.benchmark import program_cache_stats
        return program_cache_stats()

    registry.register_collector("encoding_cache", _encoding_cache)
    registry.register_collector("block_cache", _block_cache)
    registry.register_collector("fast_forward", _fast_forward)
    registry.register_collector("program_cache", _program_cache)
