"""``repro.api`` — the supported front door to PyMAO.

Callers — the ``mao`` CLI, the :mod:`repro.server` service, the benches,
tests — previously glued ``parse_unit`` + ``run_passes`` +
``simulate_program`` together by hand, each with its own timing and stat
plumbing.  The facade gives the operations that cover them all, traced
through :mod:`repro.obs`:

* :func:`optimize` — parse (if needed) and run a pass pipeline::

      result = api.optimize(src, "REDTEST:LOOP16", jobs=4)
      result.unit, result.pipeline, result.parse_s, result.passes_s

* :func:`simulate` — execute + time a program on a processor model::

      sim = api.simulate(result.unit, "core2")
      sim.cycles, sim.stats, sim.result

* :func:`predict` — the analytical fast path: statically predict
  steady-state cycles-per-iteration (no execution)::

      p = api.predict(src, "core2")
      p.cycles, p.bottleneck, p.to_dict()   # pymao.predict/1

* :func:`optimize_many` — a whole corpus in one call, sharded across
  workers, with a persistent content-addressed artifact cache so warm
  rebuilds replay instead of re-optimizing::

      batch = api.optimize_many(["a.s", "b.s"], "REDTEST:LOOP16",
                                jobs=4, cache_dir="/var/cache/pymao")
      batch.items[0].asm, batch.to_dict()   # pymao.batch/1

* :func:`verify` — the paper's §III.A disassemble-and-compare check
  over a source or an :class:`OptimizeResult`::

      api.verify(src).identical                 # O1 vs O2 on the source
      api.verify(api.optimize(src, "LFIND"))    # O1 vs the result's asm

The network entry point is :mod:`repro.server` (``mao serve``), which
exposes ``optimize``/``optimize_many``/``simulate`` as ``/v1/*``
endpoints behind admission control and the shared artifact cache.

Models may be passed as :class:`~repro.uarch.model.ProcessorModel`
instances or by profile name (``"core2"``, ``"opteron"``,
``"pentium4"``).  A workload kernel from :mod:`repro.workloads.kernels`
can be named instead of source text: ``api.simulate(None, "core2",
workload="hash_bench")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

import repro.passes  # noqa: F401  (registers all built-in passes)
from repro import obs
from repro.ir import MaoUnit, parse_unit
from repro.passes.manager import (
    PassPipeline,
    PipelineResult,
    parse_pass_spec,
)
from repro.sim.interp import RunResult
from repro.sim.loader import load_unit
from repro.uarch import profiles
from repro.uarch.model import ProcessorModel
from repro.uarch.pipeline import SimStats, simulate_program

SpecItems = List[Tuple[str, Dict[str, Any]]]


@dataclass
class OptimizeResult:
    """Outcome of one :func:`optimize` call."""

    unit: MaoUnit
    pipeline: PipelineResult
    parse_s: float
    passes_s: float

    @property
    def reports(self):
        return self.pipeline.reports

    def stats_for(self, pass_name: str) -> Dict[str, int]:
        return self.pipeline.stats_for(pass_name)

    def to_asm(self) -> str:
        return self.unit.to_asm()


@dataclass
class SimResult:
    """Outcome of one :func:`simulate` call."""

    result: RunResult
    stats: SimStats

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def counters(self) -> Dict[str, int]:
        return self.stats.counters

    @property
    def steps(self) -> int:
        return self.result.steps

    def __getitem__(self, counter_name: str) -> int:
        return self.stats[counter_name]


def _resolve_model(core: Union[str, ProcessorModel]) -> ProcessorModel:
    if isinstance(core, ProcessorModel):
        return core
    factory = getattr(profiles, str(core), None)
    if factory is None or not callable(factory):
        raise ValueError("unknown processor model %r (try %s)"
                         % (core, ", ".join(
                             n for n in ("core2", "opteron", "pentium4"))))
    return factory()


def _resolve_spec(spec: Union[None, str, SpecItems]) -> SpecItems:
    if spec is None:
        return []
    if isinstance(spec, str):
        return parse_pass_spec(spec)
    return list(spec)


def optimize(src: Union[str, MaoUnit],
             spec: Union[None, str, SpecItems] = None, *,
             jobs: int = 1,
             parallel_backend: str = "thread",
             filename: str = "<string>") -> OptimizeResult:
    """Parse *src* (source text or an already-built unit) and run *spec*
    (a ``--mao=`` string or ``(name, options)`` items) over it."""
    import time

    with obs.span("optimize", jobs=jobs,
                  parallel_backend=parallel_backend) as root:
        if isinstance(src, MaoUnit):
            unit = src
            parse_s = 0.0
        else:
            with obs.span("parse", filename=filename, bytes=len(src)) as sp:
                start = time.perf_counter()
                unit = parse_unit(src, filename=filename)
                parse_s = time.perf_counter() - start
                if sp:
                    sp.attach(entries=sum(1 for _ in unit.entries()),
                              functions=len(unit.functions))
        items = _resolve_spec(spec)
        start = time.perf_counter()
        result = PassPipeline(items).run(unit, jobs=jobs,
                                         parallel_backend=parallel_backend)
        passes_s = time.perf_counter() - start
        if root:
            root.attach(passes=[name for name, _ in items],
                        reports=len(result.reports))
    return OptimizeResult(unit=unit, pipeline=result,
                          parse_s=parse_s, passes_s=passes_s)


def optimize_many(inputs, spec: Union[None, str, SpecItems] = None, *,
                  jobs: int = 1,
                  parallel_backend: str = "thread",
                  cache: Union[bool, Any] = True,
                  cache_dir: Optional[str] = None,
                  cache_salt: Optional[str] = None,
                  max_cache_bytes: Optional[int] = None,
                  predict_core: Optional[str] = None):
    """Optimize a corpus of files (paths or ``(name, source)`` pairs).

    The batch front door: shards cache misses across ``jobs`` workers on
    the ``thread`` or ``process`` backend and returns a
    :class:`repro.batch.BatchResult` whose ``to_dict()`` is the versioned
    ``pymao.batch/1`` summary, in input order regardless of completion
    order.

    Caching: ``cache=True`` (default) opens the persistent artifact
    cache at *cache_dir* (``$PYMAO_CACHE_DIR``, else
    ``~/.cache/pymao``); ``cache=False`` disables it; an
    :class:`repro.batch.ArtifactCache` instance is used as-is.
    *cache_salt* / *max_cache_bytes* tune a cache built here.

    ``predict_core=`` a profile name additionally annotates every ok
    item with the static throughput prediction of its emitted assembly
    (see :func:`predict`), enabling
    ``batch.ranked_by_prediction()`` corpus triage without simulation.
    """
    from repro import batch as _batch

    cache_obj: Optional[_batch.ArtifactCache]
    if isinstance(cache, _batch.ArtifactCache):
        cache_obj = cache
    elif cache:
        kwargs: Dict[str, Any] = {}
        if cache_salt is not None:
            kwargs["salt"] = cache_salt
        if max_cache_bytes is not None:
            kwargs["max_bytes"] = max_cache_bytes
        cache_obj = _batch.ArtifactCache(
            cache_dir or _batch.default_cache_dir(), **kwargs)
    else:
        cache_obj = None
    return _batch.run_batch(inputs, spec, jobs=jobs,
                            parallel_backend=parallel_backend,
                            cache=cache_obj, predict=predict_core)


def verify(src_or_result: Union[str, OptimizeResult]):
    """The paper's §III.A correctness flow on the public surface.

    For source text: assemble it (O1), run the analyses-only MAO pass
    over it, re-emit and re-assemble (O2), disassemble both and compare
    textually.  For an :class:`OptimizeResult`: the same check over the
    *emitted* assembly — whatever the passes produced must survive a
    re-parse + analyses round trip bit-for-bit once assembled.

    Returns a :class:`repro.verify.VerifyResult`; ``identical`` is the
    verdict, ``first_diff`` the earliest divergent disassembly pair.
    """
    from repro import verify as _verify

    source = src_or_result.to_asm() \
        if isinstance(src_or_result, OptimizeResult) else src_or_result
    with obs.span("verify", bytes=len(source)) as sp:
        result = _verify.disassemble_compare(source)
        if sp:
            sp.attach(identical=result.identical)
    return result


def predict(src_or_unit: Union[None, str, MaoUnit],
            core: Union[str, ProcessorModel], *,
            function: Optional[str] = None,
            loop: Optional[str] = None,
            workload: Union[None, str, Any] = None,
            assume_lsd: bool = False):
    """Statically predict steady-state cycles-per-iteration on *core*.

    The analytical fast path: no instruction is executed.  The
    :mod:`repro.uarch.static_model` three-bound model (port binding,
    latency critical path, front end over real encoded bytes) is applied
    to the hottest loop of *function* (default: the unit's first
    function; default loop: the largest-bodied innermost one, override
    with ``loop=`` a label).  Returns a
    :class:`repro.uarch.static_model.Prediction`; ``to_dict()`` is the
    versioned ``pymao.predict/1`` document and ``explain()`` the
    per-port pressure + critical-path rendering.

    Orders of magnitude faster than :func:`simulate` but blind to branch
    prediction, caches, and trip counts — see DESIGN for when to trust
    which tool.
    """
    import time

    from repro.uarch import static_model

    if src_or_unit is None:
        if workload is None:
            raise ValueError("need source text, a unit, or workload=")
        if callable(workload):
            src_or_unit = workload()
        else:
            from repro.workloads import kernels
            factory = getattr(kernels, str(workload), None)
            if factory is None or not callable(factory):
                raise ValueError("unknown workload kernel %r" % (workload,))
            src_or_unit = factory()
    elif workload is not None:
        raise ValueError("pass either src_or_unit or workload=, not both")

    model = _resolve_model(core)
    with obs.span("predict", model=model.name) as sp:
        start = time.perf_counter()
        prediction = static_model.predict(src_or_unit, model,
                                          function=function, loop=loop,
                                          assume_lsd=assume_lsd)
        elapsed = time.perf_counter() - start
        obs.REGISTRY.inc("predict.requests")
        obs.REGISTRY.observe("predict.seconds", elapsed)
        if sp:
            sp.attach(function=prediction.function,
                      loop=prediction.loop_label,
                      cycles=prediction.cycles,
                      bottleneck=prediction.bottleneck)
    return prediction


def simulate(src_or_unit: Union[None, str, MaoUnit],
             core: Union[str, ProcessorModel], *,
             workload: Union[None, str, Any] = None,
             entry_symbol: str = "main",
             max_steps: int = 5_000_000,
             args: Optional[List[int]] = None,
             fast_forward: bool = True) -> SimResult:
    """Execute + time a program on *core* in one streaming pass.

    ``src_or_unit`` is assembly text or a parsed unit; alternatively pass
    ``workload=`` (a kernel name from :mod:`repro.workloads.kernels`, or
    any callable returning source text) and leave ``src_or_unit`` None.
    """
    model = _resolve_model(core)
    if src_or_unit is None:
        if workload is None:
            raise ValueError("need source text, a unit, or workload=")
        if callable(workload):
            src_or_unit = workload()
        else:
            from repro.workloads import kernels
            factory = getattr(kernels, str(workload), None)
            if factory is None or not callable(factory):
                raise ValueError("unknown workload kernel %r" % (workload,))
            src_or_unit = factory()
    elif workload is not None:
        raise ValueError("pass either src_or_unit or workload=, not both")

    if isinstance(src_or_unit, MaoUnit):
        unit = src_or_unit
    else:
        with obs.span("parse", bytes=len(src_or_unit)):
            unit = parse_unit(src_or_unit)
    with obs.span("load", entry=entry_symbol):
        program = load_unit(unit, entry_symbol)
    result, stats = simulate_program(program, model, max_steps=max_steps,
                                     args=args, fast_forward=fast_forward)
    return SimResult(result=result, stats=stats)
