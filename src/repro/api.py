"""``repro.api`` — the supported front door to PyMAO.

Callers — the ``mao`` CLI, the :mod:`repro.server` service, the benches,
tests — previously glued ``parse_unit`` + ``run_passes`` +
``simulate_program`` together by hand, each with its own timing and stat
plumbing.  The facade gives the operations that cover them all, traced
through :mod:`repro.obs`:

* :func:`optimize` — parse (if needed) and run a pass pipeline::

      result = api.optimize(source, "REDTEST:LOOP16", jobs=4)
      result.unit, result.pipeline, result.parse_s, result.passes_s

* :func:`simulate` — execute + time a program on a processor model::

      sim = api.simulate(result.unit, "core2")
      sim.cycles, sim.stats, sim.result

* :func:`predict` — the analytical fast path: statically predict
  steady-state cycles-per-iteration (no execution)::

      p = api.predict(source, "core2")
      p.cycles, p.bottleneck, p.to_dict()   # pymao.predict/1

* :func:`tune` — search the pass-spec space for the best pipeline on a
  core, sharing prefix artifacts through the persistent cache::

      t = api.tune("hash_bench", "core2", budget=32)
      t.winner_spec, t.leaderboard, t.to_dict()   # pymao.tune/1

* :func:`optimize_many` — a whole corpus in one call, sharded across
  workers, with a persistent content-addressed artifact cache so warm
  rebuilds replay instead of re-optimizing::

      batch = api.optimize_many(["a.s", "b.s"], "REDTEST:LOOP16",
                                jobs=4, cache_dir="/var/cache/pymao")
      batch.items[0].asm, batch.to_dict()   # pymao.batch/1

* :func:`verify` — the paper's §III.A disassemble-and-compare check
  over a source or an :class:`OptimizeResult`::

      api.verify(source).identical              # O1 vs O2 on the source
      api.verify(api.optimize(source, "LFIND")) # O1 vs the result's asm

One input convention everywhere (:func:`_resolve_source`): the first
parameter of every entry point is ``source`` and accepts assembly text,
a parsed :class:`~repro.ir.MaoUnit`, or the *name* of a workload kernel
from :mod:`repro.workloads.kernels` (``api.predict("hash_bench",
"core2")``); ``workload=`` additionally accepts a kernel name or any
callable returning source, with ``source`` left ``None``.  The old
per-function first-parameter keywords (``src=``, ``src_or_unit=``,
``src_or_result=``) keep working behind ``DeprecationWarning`` shims.

One model convention everywhere: ``core=`` takes a
:class:`~repro.uarch.model.ProcessorModel` instance or a profile name
(``"core2"``, ``"opteron"``, ``"pentium4"``).

Every result object implements the :class:`repro.result.ApiResult`
contract — a versioned, deterministic ``to_dict(timings=False)`` plus
``from_dict`` — and registers its schema so ``mao --version`` can list
the full wire surface.

The network entry point is :mod:`repro.server` (``mao serve`` /
``mao fleet``), which exposes ``optimize``/``optimize_many``/
``simulate``/``predict``/``tune`` as ``/v1/*`` endpoints behind
admission control and the shared artifact cache.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Union

import repro.passes  # noqa: F401  (registers all built-in passes)
from repro import obs
from repro.ir import MaoUnit, parse_unit
from repro.passes.manager import (
    PassPipeline,
    PipelineResult,
    parse_pass_spec,
)
from repro.result import ApiResult
from repro.sim.interp import RunResult
from repro.sim.loader import load_unit
from repro.uarch import profiles, tables
from repro.uarch.model import ProcessorModel
from repro.uarch.pipeline import SimStats, simulate_program

SpecItems = List[Tuple[str, Dict[str, Any]]]

#: Schema of :meth:`OptimizeResult.to_dict`.
OPTIMIZE_SCHEMA = "pymao.optimize/1"

#: Schema of :meth:`SimResult.to_dict`.
SIM_SCHEMA = "pymao.sim/1"


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"

    def __bool__(self) -> bool:
        return False


_UNSET = _Unset()


def _merge_renamed(new: Any, old: Any, old_name: str) -> Any:
    """Fold a deprecated first-parameter keyword into ``source``.

    Returns the effective value; warns when the old keyword is used and
    rejects calls that set both.
    """
    if old is _UNSET:
        return None if new is _UNSET else new
    warnings.warn("%s= is deprecated; pass source= (or positionally)"
                  % old_name, DeprecationWarning, stacklevel=3)
    if new is not _UNSET and new is not None:
        raise TypeError("got values for both source and the deprecated "
                        "%s= keyword" % old_name)
    return old


def _resolve_source(source: Union[None, str, MaoUnit], *,
                    workload: Union[None, str, Any] = None
                    ) -> Union[str, MaoUnit]:
    """The one input convention: text, a parsed unit, or a kernel name.

    * a :class:`MaoUnit` passes through untouched;
    * a string that names a public factory in
      :mod:`repro.workloads.kernels` (a bare identifier such as
      ``"hash_bench"`` — real assembly always contains whitespace or
      punctuation) is expanded to that kernel's source;
    * any other string is assembly source text;
    * ``workload=`` names a kernel (or is a callable returning source)
      with ``source`` left ``None``.
    """
    if workload is not None:
        if source is not None:
            raise ValueError("pass either source or workload=, not both")
        if callable(workload):
            return workload()
        return _kernel_source(str(workload), strict=True)
    if source is None:
        raise ValueError(
            "need source text, a MaoUnit, a kernel name, or workload=")
    if isinstance(source, MaoUnit):
        return source
    if not isinstance(source, str):
        raise TypeError("source must be str or MaoUnit, not %s"
                        % type(source).__name__)
    if source.isidentifier() and not source.startswith("_"):
        expanded = _kernel_source(source, strict=False)
        if expanded is not None:
            return expanded
    return source


def _kernel_source(name: str, *, strict: bool) -> Optional[str]:
    """Source text of the named workload kernel, if it is one."""
    from repro.workloads import kernels

    factory = getattr(kernels, name, None)
    if (callable(factory)
            and getattr(factory, "__module__", None) == kernels.__name__):
        return factory()
    if strict:
        raise ValueError("unknown workload kernel %r" % (name,))
    return None


def _source_text(resolved: Union[str, MaoUnit]) -> str:
    return resolved.to_asm() if isinstance(resolved, MaoUnit) else resolved


def _resolve_model(core: Union[str, Dict[str, Any], ProcessorModel]
                   ) -> ProcessorModel:
    """One ``core=`` convention: model, registry name, ``.json`` path, or
    inline ``pymao.uarch/1`` document (see :func:`repro.uarch.tables.
    resolve_core`).  ``blinded_profile`` stays accepted by name for the
    detection surfaces."""
    if isinstance(core, str):
        factory = getattr(profiles, core, None)
        if callable(factory) and core == "blinded_profile":
            return factory()
    return tables.resolve_core(core)


def _resolve_spec(spec: Union[None, str, SpecItems]) -> SpecItems:
    if spec is None:
        return []
    if isinstance(spec, str):
        return parse_pass_spec(spec)
    return list(spec)


def _resolve_cache(cache: Union[bool, Any],
                   cache_dir: Optional[str] = None,
                   cache_salt: Optional[str] = None,
                   max_cache_bytes: Optional[int] = None):
    """The shared cache convention of :func:`optimize_many` / :func:`tune`.

    ``True`` opens the persistent artifact cache at *cache_dir*
    (``$PYMAO_CACHE_DIR``, else ``~/.cache/pymao``); ``False``/``None``
    disables caching; an :class:`repro.batch.ArtifactCache` instance is
    used as-is.
    """
    from repro import batch as _batch

    if isinstance(cache, _batch.ArtifactCache):
        return cache
    if not cache:
        return None
    kwargs: Dict[str, Any] = {}
    if cache_salt is not None:
        kwargs["salt"] = cache_salt
    if max_cache_bytes is not None:
        kwargs["max_bytes"] = max_cache_bytes
    return _batch.ArtifactCache(
        cache_dir or _batch.default_cache_dir(), **kwargs)


@dataclass
class OptimizeResult(ApiResult):
    """Outcome of one :func:`optimize` call."""

    SCHEMA: ClassVar[str] = OPTIMIZE_SCHEMA

    unit: MaoUnit
    pipeline: PipelineResult
    parse_s: float
    passes_s: float
    #: Profile-guided decision summary (``optimize(profile_guided=True)``
    #: only).
    pgo: Optional[Dict[str, Any]] = None

    @property
    def reports(self):
        return self.pipeline.reports

    def stats_for(self, pass_name: str) -> Dict[str, int]:
        return self.pipeline.stats_for(pass_name)

    def to_asm(self) -> str:
        return self.unit.to_asm()

    def to_dict(self, timings: bool = False) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"schema": OPTIMIZE_SCHEMA,
                               "asm": self.unit.to_asm(),
                               "pipeline": self.pipeline.to_dict()}
        if self.pgo is not None:
            doc["pgo"] = self.pgo
        if timings:
            doc["timings"] = {"parse_s": round(self.parse_s, 6),
                              "passes_s": round(self.passes_s, 6)}
        return doc

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OptimizeResult":
        cls.check_schema(data)
        timing = data.get("timings") or {}
        return cls(unit=parse_unit(data["asm"]),
                   pipeline=PipelineResult.from_dict(data["pipeline"]),
                   parse_s=float(timing.get("parse_s", 0.0)),
                   passes_s=float(timing.get("passes_s", 0.0)),
                   pgo=data.get("pgo"))


@dataclass
class SimResult(ApiResult):
    """Outcome of one :func:`simulate` call.

    ``result`` is the live machine outcome; a :meth:`from_dict`
    reconstruction has ``result=None`` and answers ``steps`` /
    ``reason`` / ``cycles`` / ``counters`` from the document alone.
    """

    SCHEMA: ClassVar[str] = SIM_SCHEMA

    result: Optional[RunResult]
    stats: SimStats
    _steps: int = 0
    _reason: str = ""

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def counters(self) -> Dict[str, int]:
        return self.stats.counters

    @property
    def steps(self) -> int:
        return self.result.steps if self.result is not None else self._steps

    @property
    def reason(self) -> str:
        return self.result.reason if self.result is not None else self._reason

    def __getitem__(self, counter_name: str) -> int:
        return self.stats[counter_name]

    def to_dict(self, timings: bool = False) -> Dict[str, Any]:
        # Simulated time is deterministic; there are no wall-clock
        # fields, so ``timings`` changes nothing here.
        return {"schema": SIM_SCHEMA,
                "model": self.stats.model_name,
                "cycles": self.stats.cycles,
                "steps": self.steps,
                "reason": self.reason,
                "ipc": round(self.stats.ipc(), 6),
                "counters": {name: self.stats.counters[name]
                             for name in sorted(self.stats.counters)}}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimResult":
        cls.check_schema(data)
        stats = SimStats(model_name=str(data.get("model", "")),
                         counters=dict(data.get("counters") or {}))
        return cls(result=None, stats=stats,
                   _steps=int(data.get("steps", 0)),
                   _reason=str(data.get("reason", "")))


def optimize(source: Union[None, str, MaoUnit, _Unset] = _UNSET,
             spec: Union[None, str, SpecItems] = None, *,
             jobs: int = 1,
             parallel_backend: str = "thread",
             filename: str = "<string>",
             workload: Union[None, str, Any] = None,
             profile_guided: bool = False,
             core: Union[str, ProcessorModel] = "core2",
             profile_dir: Optional[str] = None,
             pgo_policy: Any = None,
             cache: Union[bool, Any] = True,
             cache_dir: Optional[str] = None,
             src: Any = _UNSET) -> OptimizeResult:
    """Parse *source* (text, a unit, or a kernel name) and run *spec*
    (a ``--mao=`` string or ``(name, options)`` items) over it.

    ``profile_guided=True`` picks the spec from the input's stored
    execution profile instead (``spec`` must then be ``None``): the
    :class:`repro.pgo.ProfileStore` at *profile_dir* is consulted and
    the input's hotness tier decides between the ``tune()`` winner
    (hot, searched on *core* against ``pgo_policy``'s budget and cached
    via *cache*/*cache_dir*), the default spec (warm), or a passthrough
    (cold).  The decision summary lands on ``result.pgo``.

    ``src=`` is the deprecated spelling of ``source=``.
    """
    import time

    source = _merge_renamed(source, src, "src")
    resolved = _resolve_source(source, workload=workload)
    pgo_doc: Optional[Dict[str, Any]] = None
    if profile_guided:
        from repro import pgo as _pgo

        if spec is not None:
            raise ValueError(
                "profile_guided=True chooses the spec itself; "
                "pass spec=None")
        decision = _pgo.decide_one(
            _source_text(resolved), core=core,
            store=_pgo.ProfileStore(profile_dir), policy=pgo_policy,
            cache=_resolve_cache(cache, cache_dir), jobs=jobs,
            parallel_backend=parallel_backend)
        spec = decision.spec_items
        pgo_doc = decision.to_dict()
    with obs.span("optimize", jobs=jobs,
                  parallel_backend=parallel_backend) as root:
        if isinstance(resolved, MaoUnit):
            unit = resolved
            parse_s = 0.0
        else:
            with obs.span("parse", filename=filename,
                          bytes=len(resolved)) as sp:
                start = time.perf_counter()
                unit = parse_unit(resolved, filename=filename)
                parse_s = time.perf_counter() - start
                if sp:
                    sp.attach(entries=sum(1 for _ in unit.entries()),
                              functions=len(unit.functions))
        items = _resolve_spec(spec)
        start = time.perf_counter()
        result = PassPipeline(items).run(unit, jobs=jobs,
                                         parallel_backend=parallel_backend)
        passes_s = time.perf_counter() - start
        if root:
            root.attach(passes=[name for name, _ in items],
                        reports=len(result.reports))
    return OptimizeResult(unit=unit, pipeline=result,
                          parse_s=parse_s, passes_s=passes_s, pgo=pgo_doc)


def optimize_many(inputs, spec: Union[None, str, SpecItems] = None, *,
                  jobs: int = 1,
                  parallel_backend: str = "thread",
                  cache: Union[bool, Any] = True,
                  cache_dir: Optional[str] = None,
                  cache_salt: Optional[str] = None,
                  max_cache_bytes: Optional[int] = None,
                  predict_core: Optional[str] = None,
                  profile_guided: bool = False,
                  core: Union[str, ProcessorModel] = "core2",
                  profile_dir: Optional[str] = None,
                  pgo_policy: Any = None):
    """Optimize a corpus of files (paths or ``(name, source)`` pairs).

    The batch front door: shards cache misses across ``jobs`` workers on
    the ``thread`` or ``process`` backend and returns a
    :class:`repro.batch.BatchResult` whose ``to_dict()`` is the versioned
    ``pymao.batch/1`` summary, in input order regardless of completion
    order.

    Caching follows :func:`_resolve_cache`: ``cache=True`` (default)
    opens the persistent artifact cache at *cache_dir*
    (``$PYMAO_CACHE_DIR``, else ``~/.cache/pymao``); ``cache=False``
    disables it; an :class:`repro.batch.ArtifactCache` instance is used
    as-is.  *cache_salt* / *max_cache_bytes* tune a cache built here.

    ``predict_core=`` a profile name additionally annotates every ok
    item with the static throughput prediction of its emitted assembly
    (see :func:`predict`), enabling
    ``batch.ranked_by_prediction()`` corpus triage without simulation.

    ``profile_guided=True`` ignores the corpus-wide *spec* (it must be
    ``None``) and decides each input's spec from its stored execution
    profile: hot inputs get a budgeted ``tune()`` search on *core*, warm
    inputs the default spec, cold inputs a passthrough, and artifacts
    are cached under a salt folding in each input's profile epoch so a
    re-profiled input misses exactly its own cached entries.  Each item
    carries its decision as ``item.pgo``.
    """
    from repro import batch as _batch

    cache_obj = _resolve_cache(cache, cache_dir, cache_salt,
                               max_cache_bytes)
    if profile_guided:
        from repro import pgo as _pgo

        if spec is not None:
            raise ValueError(
                "profile_guided=True chooses per-input specs; "
                "pass spec=None")
        return _pgo.run_guided_batch(
            inputs, core=core, store=_pgo.ProfileStore(profile_dir),
            policy=pgo_policy, cache=cache_obj, jobs=jobs,
            parallel_backend=parallel_backend, predict=predict_core)
    return _batch.run_batch(inputs, spec, jobs=jobs,
                            parallel_backend=parallel_backend,
                            cache=cache_obj, predict=predict_core)


def verify(source: Union[None, str, MaoUnit, "OptimizeResult",
                         _Unset] = _UNSET, *,
           src_or_result: Any = _UNSET):
    """The paper's §III.A correctness flow on the public surface.

    For source text (or a unit / kernel name): assemble it (O1), run the
    analyses-only MAO pass over it, re-emit and re-assemble (O2),
    disassemble both and compare textually.  For an
    :class:`OptimizeResult`: the same check over the *emitted* assembly
    — whatever the passes produced must survive a re-parse + analyses
    round trip bit-for-bit once assembled.

    Returns a :class:`repro.verify.VerifyResult`; ``identical`` is the
    verdict, ``first_diff`` the earliest divergent disassembly pair.

    ``src_or_result=`` is the deprecated spelling of ``source=``.
    """
    from repro import verify as _verify

    source = _merge_renamed(source, src_or_result, "src_or_result")
    if isinstance(source, OptimizeResult):
        text = source.to_asm()
    else:
        text = _source_text(_resolve_source(source))
    with obs.span("verify", bytes=len(text)) as sp:
        result = _verify.disassemble_compare(text)
        if sp:
            sp.attach(identical=result.identical)
    return result


def predict(source: Union[None, str, MaoUnit, _Unset] = _UNSET,
            core: Union[str, ProcessorModel, _Unset] = _UNSET, *,
            function: Optional[str] = None,
            loop: Optional[str] = None,
            workload: Union[None, str, Any] = None,
            assume_lsd: bool = False,
            src_or_unit: Any = _UNSET):
    """Statically predict steady-state cycles-per-iteration on *core*.

    The analytical fast path: no instruction is executed.  The
    :mod:`repro.uarch.static_model` three-bound model (port binding,
    latency critical path, front end over real encoded bytes) is applied
    to the hottest loop of *function* (default: the unit's first
    function; default loop: the largest-bodied innermost one, override
    with ``loop=`` a label).  Returns a
    :class:`repro.uarch.static_model.Prediction`; ``to_dict()`` is the
    versioned ``pymao.predict/1`` document and ``explain()`` the
    per-port pressure + critical-path rendering.

    Orders of magnitude faster than :func:`simulate` but blind to branch
    prediction, caches, and trip counts — see DESIGN for when to trust
    which tool.

    ``src_or_unit=`` is the deprecated spelling of ``source=``.
    """
    import time

    from repro.uarch import static_model

    source = _merge_renamed(source, src_or_unit, "src_or_unit")
    if core is _UNSET:
        raise TypeError("predict() missing required argument: 'core'")
    resolved = _resolve_source(source, workload=workload)
    model = _resolve_model(core)
    with obs.span("predict", model=model.name) as sp:
        start = time.perf_counter()
        prediction = static_model.predict(resolved, model,
                                          function=function, loop=loop,
                                          assume_lsd=assume_lsd)
        elapsed = time.perf_counter() - start
        obs.REGISTRY.inc("predict.requests")
        obs.REGISTRY.observe("predict.seconds", elapsed)
        if sp:
            sp.attach(function=prediction.function,
                      loop=prediction.loop_label,
                      cycles=prediction.cycles,
                      bottleneck=prediction.bottleneck)
    return prediction


def simulate(source: Union[None, str, MaoUnit, _Unset] = _UNSET,
             core: Union[str, ProcessorModel, _Unset] = _UNSET, *,
             workload: Union[None, str, Any] = None,
             entry_symbol: str = "main",
             max_steps: int = 5_000_000,
             args: Optional[List[int]] = None,
             fast_forward: bool = True,
             src_or_unit: Any = _UNSET) -> SimResult:
    """Execute + time a program on *core* in one streaming pass.

    *source* is assembly text, a parsed unit, or a workload kernel name;
    alternatively pass ``workload=`` (a kernel name from
    :mod:`repro.workloads.kernels`, or any callable returning source
    text) and leave *source* ``None``.

    ``src_or_unit=`` is the deprecated spelling of ``source=``.
    """
    source = _merge_renamed(source, src_or_unit, "src_or_unit")
    if core is _UNSET:
        raise TypeError("simulate() missing required argument: 'core'")
    model = _resolve_model(core)
    resolved = _resolve_source(source, workload=workload)

    if isinstance(resolved, MaoUnit):
        unit = resolved
    else:
        with obs.span("parse", bytes=len(resolved)):
            unit = parse_unit(resolved)
    with obs.span("load", entry=entry_symbol):
        program = load_unit(unit, entry_symbol)
    result, stats = simulate_program(program, model, max_steps=max_steps,
                                     args=args, fast_forward=fast_forward)
    return SimResult(result=result, stats=stats)


def tune(source: Union[None, str, MaoUnit, _Unset] = _UNSET,
         core: Union[str, ProcessorModel, _Unset] = _UNSET, *,
         function: Optional[str] = None,
         budget: Optional[int] = None,
         n_select: Optional[int] = None,
         max_rounds: Optional[int] = None,
         simulate_top: int = 0,
         jobs: int = 1,
         parallel_backend: str = "thread",
         cache: Union[bool, Any] = True,
         cache_dir: Optional[str] = None,
         cache_salt: Optional[str] = None,
         max_cache_bytes: Optional[int] = None,
         default_spec: Optional[str] = None,
         entry_symbol: str = "main",
         max_steps: int = 5_000_000,
         workload: Union[None, str, Any] = None):
    """Search the pass-spec space for the best pipeline on *core*.

    Candidates are generated along the strategy paths of
    :mod:`repro.tune` (peephole-first, alignment-first, combined, beam
    extensions of the current best), scored with :func:`predict`
    (optionally the top ``simulate_top`` re-scored with :func:`simulate`
    for ground truth), with every shared pipeline prefix materialized
    exactly once and published to the artifact cache so a warm re-tune
    executes zero pass runs.  Stops early once the best candidate's
    predicted cycles hit the static lower bound.

    Returns a :class:`repro.tune.TuneResult`; ``to_dict()`` is the
    versioned ``pymao.tune/1`` document (winner, leaderboard, pass-run
    accounting, early-stop reason) and ``explain()`` the leaderboard
    rendering.  Caching follows :func:`_resolve_cache`, exactly as in
    :func:`optimize_many` — tune prefixes and batch artifacts share one
    key space.
    """
    from repro import tune as _tune

    if core is _UNSET:
        raise TypeError("tune() missing required argument: 'core'")
    source = None if isinstance(source, _Unset) else source
    text = _source_text(_resolve_source(source, workload=workload))
    cache_obj = _resolve_cache(cache, cache_dir, cache_salt,
                               max_cache_bytes)
    kwargs: Dict[str, Any] = {}
    if budget is not None:
        kwargs["budget"] = budget
    if n_select is not None:
        kwargs["n_select"] = n_select
    if max_rounds is not None:
        kwargs["max_rounds"] = max_rounds
    if default_spec is not None:
        kwargs["default_spec"] = default_spec
    return _tune.tune(text, core, function=function,
                      simulate_top=simulate_top, jobs=jobs,
                      parallel_backend=parallel_backend, cache=cache_obj,
                      entry_symbol=entry_symbol, max_steps=max_steps,
                      **kwargs)


def discover(core: Any = None, *, seed: Optional[int] = None,
             name: Optional[str] = None, jobs: int = 1,
             parallel_backend: str = "thread"):
    """Infer a processor's µarch parameters from microbenchmarks alone.

    Runs the :mod:`repro.discover` ladder harness against an oracle —
    either ``core`` (anything :func:`_resolve_model` accepts) or a
    blinded-profile ``seed`` — and returns a
    :class:`repro.discover.DiscoverResult` whose ``profile_doc()`` is a
    complete ``pymao.uarch/1`` document; written to a file it is
    accepted by every ``core=`` surface.  For a fixed oracle the result
    document is byte-identical at any ``jobs`` count under either
    backend.
    """
    from repro import discover as _discover

    if core is not None and seed is None:
        core = _resolve_model(core)
    return _discover.discover(core, seed=seed, name=name, jobs=jobs,
                              parallel_backend=parallel_backend)
