"""Architectural simulation of the supported x86-64 subset.

This substitutes for running benchmarks on real hardware: programs are
interpreted with full register/flag/memory semantics, producing (a) final
architectural state used to check optimization passes preserve behaviour,
and (b) dynamic execution traces consumed by the micro-architectural timing
model in ``repro.uarch``.
"""

from repro.sim.state import MachineState, Flags
from repro.sim.memory import SparseMemory
from repro.sim.loader import load_unit, LoadedProgram
from repro.sim.interp import Interpreter, ExecRecord, SimError, run_unit

__all__ = [
    "MachineState",
    "Flags",
    "SparseMemory",
    "load_unit",
    "LoadedProgram",
    "Interpreter",
    "ExecRecord",
    "SimError",
    "run_unit",
]
