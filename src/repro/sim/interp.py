"""Architectural interpreter for the supported x86-64 subset.

Executes a :class:`~repro.sim.loader.LoadedProgram` with full register,
flag, and memory semantics.  Produces:

* final architectural state — used by tests to prove optimization passes
  preserve behaviour (our stand-in for the paper's disassemble-and-compare
  methodology, but stronger);
* a dynamic execution trace — consumed by the ``repro.uarch`` timing model,
  either materialized (``collect_trace=True``) or streamed record-by-record
  through ``trace_callback`` so simulation and timing overlap without the
  peak-memory cost of a full trace list;
* optional PMU-style samples (instruction address + register-file snapshot)
  — consumed by the instruction-simulation pass (paper §III.E.m).

The hot execution path is *trace-compiled*: the first time an address is
executed, the straight-line run up to the next control transfer is decoded
into a basic block of ``_CompiledStep`` thunks with every static fact —
semantics handler, encoding length, memory-operand shape, branch-ness —
resolved once per static instruction instead of once per dynamic step.
Blocks are cached on the :class:`LoadedProgram` keyed by start address,
which is sound because the code image (addresses and encodings) is
immutable after load.  The original one-instruction-at-a-time loop is kept
as the reference path (``block_cache_disabled()``) and differential tests
assert both produce identical state, traces, and step counts.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.ir.entries import InstructionEntry
from repro.ir.unit import MaoUnit
from repro.sim.loader import LoadedProgram, STACK_TOP, load_unit
from repro.sim.memory import SparseMemory
from repro.sim.state import MASK64, MachineState
from repro.x86.flags import parity
from repro.x86.instruction import Instruction
from repro.x86.operands import (
    Immediate,
    LabelRef,
    Memory,
    Operand,
    RegisterOperand,
)

RETURN_SENTINEL = 0xDEAD0000


class SimError(Exception):
    """Execution fault (bad jump target, unsupported instruction, ...)."""


# ---------------------------------------------------------------------------
# Basic-block cache plumbing (mirrors repro.x86.encoder's encoding cache).
#
# Compiled blocks live on LoadedProgram.block_cache so they are shared by
# every Interpreter over the same program; the stats below are module-level
# aggregates across all programs, like encoding_cache_stats().
# ---------------------------------------------------------------------------

_BLOCK_CACHE_ENABLED = True
_BLOCK_STATS = {
    "blocks_compiled": 0,
    "block_hits": 0,
    "instructions_compiled": 0,
}


def block_cache_stats() -> Dict[str, object]:
    """Return aggregate block-cache statistics (plus derived hit rate)."""
    stats: Dict[str, object] = dict(_BLOCK_STATS)
    lookups = _BLOCK_STATS["block_hits"] + _BLOCK_STATS["blocks_compiled"]
    stats["hit_rate"] = (_BLOCK_STATS["block_hits"] / lookups) if lookups \
        else 0.0
    stats["enabled"] = _BLOCK_CACHE_ENABLED
    return stats


def reset_block_cache_stats() -> None:
    for key in _BLOCK_STATS:
        _BLOCK_STATS[key] = 0


def set_block_cache_enabled(enabled: bool) -> bool:
    """Globally enable/disable block compilation; returns previous value."""
    global _BLOCK_CACHE_ENABLED
    previous = _BLOCK_CACHE_ENABLED
    _BLOCK_CACHE_ENABLED = bool(enabled)
    return previous


@contextmanager
def block_cache_disabled() -> Iterator[None]:
    """Run the interpreter through the reference per-step loop."""
    previous = set_block_cache_enabled(False)
    try:
        yield
    finally:
        set_block_cache_enabled(previous)


# How the ``ea`` field of an ExecRecord is derived for one static
# instruction: not at all, from its memory operand, from the stack slot a
# push/call will write, or from the stack slot a pop/ret will read.
_EA_NONE, _EA_MEM, _EA_PUSH, _EA_POP = 0, 1, 2, 3


class _CompiledStep:
    """One static instruction with every per-step-invariant fact resolved."""

    __slots__ = ("entry", "insn", "handler", "address", "next_rip",
                 "ea_mode", "mem_op")

    def __init__(self, entry: InstructionEntry, handler: Callable,
                 address: int, next_rip: int, ea_mode: int,
                 mem_op: Optional[Memory]) -> None:
        self.entry = entry
        self.insn = entry.insn
        self.handler = handler
        self.address = address
        self.next_rip = next_rip
        self.ea_mode = ea_mode
        self.mem_op = mem_op


class _Block:
    """A compiled straight-line run starting at one address.

    ``body`` holds steps whose handlers never return an outcome (their base
    is not a control transfer), so the hot loop can execute them without
    inspecting return values.  ``last`` is the terminating control transfer,
    if any.  ``fault_insn`` records an instruction with no semantics: the
    body before it executes normally, then the block raises — preserving
    the reference loop's partial-state-on-fault behaviour.  For blocks
    compiled at padding addresses, ``skip_to`` is the next real instruction
    (or the block is a fall-off fault when ``fell_off`` is set).
    """

    __slots__ = ("body", "last", "fault_insn", "skip_to", "fell_off",
                 "slow")

    def __init__(self, body: List[_CompiledStep],
                 last: Optional[_CompiledStep],
                 fault_insn: Optional[Instruction],
                 skip_to: Optional[int],
                 fell_off: bool) -> None:
        self.body = body
        self.last = last
        self.fault_insn = fault_insn
        self.skip_to = skip_to
        self.fell_off = fell_off
        # rdtsc reads the per-step virtual TSC, so blocks containing it
        # must run the per-step bookkeeping path.
        self.slow = any(s.insn.base == "rdtsc" for s in body)


#: Bases whose handlers may return an outcome tuple; a compiled block ends
#: at (and includes) the first one of these.
_CT_BASES = frozenset(("jmp", "j", "call", "ret", "hlt", "ud2", "int3"))

#: Safety cap on block length so pathological straight-line code cannot
#: make single-block compilation unbounded.
_MAX_BLOCK_STEPS = 512


@dataclass(frozen=True)
class ExecRecord:
    """One dynamically executed instruction."""

    entry: InstructionEntry
    taken: Optional[bool]      # None for non-branches
    address: int
    #: Effective address of the first memory operand (or the stack slot for
    #: push/pop/call/ret), captured before execution; None otherwise.
    ea: Optional[int] = None

    @property
    def insn(self) -> Instruction:
        return self.entry.insn

    @property
    def size(self) -> int:
        return len(self.entry.insn.encoding or b"")


@dataclass
class RunResult:
    steps: int
    reason: str                 # "ret", "hlt", "max-steps"
    state: MachineState
    memory: Optional[SparseMemory] = None
    trace: Optional[List[ExecRecord]] = None
    samples: Optional[List[Tuple[int, Dict[str, int]]]] = None


def _signed(value: int, width: int) -> int:
    sign_bit = 1 << (width - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def _msb(value: int, width: int) -> bool:
    return bool(value & (1 << (width - 1)))


class Interpreter:
    """Drives execution of one loaded program."""

    def __init__(self, program: LoadedProgram,
                 max_steps: int = 5_000_000,
                 private_memory: bool = False) -> None:
        self.program = program
        # ``private_memory`` runs against a copy-on-construction clone so a
        # LoadedProgram can be reused across runs (execution mutates data
        # sections and the stack, never the code image).
        self.memory = program.memory.clone() if private_memory \
            else program.memory
        self.state = MachineState()
        self.max_steps = max_steps
        self.instructions_executed = 0
        self._tsc = 0
        self._dispatch = _DISPATCH

    # ---- operand helpers ------------------------------------------------------

    def effective_address(self, mem: Memory, insn: Instruction) -> int:
        if mem.is_rip_relative:
            if mem.symbol is not None:
                # `sym(%rip)` addresses the symbol itself; the encoded
                # disp32 is relative but the operand is absolute.
                try:
                    return (self.program.symtab[mem.symbol] + mem.disp) \
                        & MASK64
                except KeyError as exc:
                    raise SimError("unresolved symbol %r"
                                   % mem.symbol) from exc
            base = insn.address + len(insn.encoding or b"")
        elif mem.base is not None:
            base = self.state.read_reg(mem.base)
            if mem.base.width == 32:
                base &= 0xFFFFFFFF
        else:
            base = 0
        index = 0
        if mem.index is not None:
            index = self.state.read_reg(mem.index) * mem.scale
        symbol = 0
        if mem.symbol is not None:
            try:
                symbol = self.program.symtab[mem.symbol]
            except KeyError as exc:
                raise SimError("unresolved symbol %r" % mem.symbol) from exc
        return (base + index + mem.disp + symbol) & MASK64

    def read_operand(self, op: Operand, width: int,
                     insn: Instruction) -> int:
        if isinstance(op, Immediate):
            value = op.value
            if op.symbol is not None:
                value += self.program.symtab.get(op.symbol, 0)
            return value & ((1 << width) - 1)
        if isinstance(op, RegisterOperand):
            return self.state.read_reg(op.reg)
        if isinstance(op, Memory):
            return self.memory.read(self.effective_address(op, insn),
                                    width // 8)
        raise SimError("cannot read operand %r" % (op,))

    def write_operand(self, op: Operand, value: int, width: int,
                      insn: Instruction) -> None:
        if isinstance(op, RegisterOperand):
            self.state.write_reg(op.reg, value)
            return
        if isinstance(op, Memory):
            self.memory.write(self.effective_address(op, insn), value,
                              width // 8)
            return
        raise SimError("cannot write operand %r" % (op,))

    # ---- flag helpers -----------------------------------------------------------

    def _set_result_flags(self, result: int, width: int) -> None:
        flags = self.state.flags
        masked = result & ((1 << width) - 1)
        flags.set("ZF", masked == 0)
        flags.set("SF", _msb(masked, width))
        flags.set("PF", parity(masked))

    def _flags_add(self, a: int, b: int, result: int, width: int,
                   carry_in: int = 0) -> None:
        flags = self.state.flags
        mask = (1 << width) - 1
        flags.set("CF", (a & mask) + (b & mask) + carry_in > mask)
        sa, sb = _msb(a, width), _msb(b, width)
        sr = _msb(result, width)
        flags.set("OF", sa == sb and sr != sa)
        flags.set("AF", ((a & 0xF) + (b & 0xF) + carry_in) > 0xF)
        self._set_result_flags(result, width)

    def _flags_sub(self, a: int, b: int, result: int, width: int,
                   borrow_in: int = 0) -> None:
        flags = self.state.flags
        mask = (1 << width) - 1
        flags.set("CF", (b & mask) + borrow_in > (a & mask))
        sa, sb = _msb(a, width), _msb(b, width)
        sr = _msb(result, width)
        flags.set("OF", sa != sb and sr != sa)
        flags.set("AF", ((b & 0xF) + borrow_in) > (a & 0xF))
        self._set_result_flags(result, width)

    def _flags_logic(self, result: int, width: int) -> None:
        flags = self.state.flags
        flags.set("CF", False)
        flags.set("OF", False)
        flags.set("AF", False)
        self._set_result_flags(result, width)

    def condition(self, cond: str) -> bool:
        from repro.x86.flags import cc_encoding
        flags = self.state.flags
        code = cc_encoding(cond)
        base = code & ~1
        if base == 0x0:
            value = flags.get("OF")
        elif base == 0x2:
            value = flags.get("CF")
        elif base == 0x4:
            value = flags.get("ZF")
        elif base == 0x6:
            value = flags.get("CF") or flags.get("ZF")
        elif base == 0x8:
            value = flags.get("SF")
        elif base == 0xA:
            value = flags.get("PF")
        elif base == 0xC:
            value = flags.get("SF") != flags.get("OF")
        else:  # 0xE
            value = flags.get("ZF") or (flags.get("SF") != flags.get("OF"))
        if code & 1:
            value = not value
        return value

    # ---- control flow helpers ---------------------------------------------------

    def _branch_target(self, insn: Instruction) -> int:
        op = insn.branch_target_operand()
        if isinstance(op, LabelRef):
            try:
                return self.program.symtab[op.name]
            except KeyError as exc:
                raise SimError("undefined branch target %r" % op.name) from exc
        if isinstance(op, RegisterOperand):
            return self.state.read_reg(op.reg)
        if isinstance(op, Memory):
            return self.memory.read(self.effective_address(op, insn), 8)
        raise SimError("bad branch target in %s" % insn)

    def _push(self, value: int, size: int = 8) -> None:
        rsp = (self.state.gp["rsp"] - size) & MASK64
        self.state.gp["rsp"] = rsp
        self.memory.write(rsp, value, size)

    def _pop(self, size: int = 8) -> int:
        rsp = self.state.gp["rsp"]
        value = self.memory.read(rsp, size)
        self.state.gp["rsp"] = (rsp + size) & MASK64
        return value

    # ---- main loop ---------------------------------------------------------------

    def run(self, entry: Optional[int] = None,
            collect_trace: bool = False,
            trace_callback: Optional[Callable[[ExecRecord], None]] = None,
            sample_period: Optional[int] = None,
            args: Optional[List[int]] = None,
            sample_phase: int = 0) -> RunResult:
        """Execute from *entry* until return/halt.

        ``args`` seeds ``rdi``, ``rsi``, ``rdx``, ``rcx``, ``r8``, ``r9``
        (SysV integer argument order).

        ``sample_phase`` offsets which step within each period is
        sampled (``steps % period == phase``); phase 0 reproduces the
        historical behavior exactly.
        """
        if entry is None:
            entry = self.program.entry_point
        if entry is None:
            raise SimError("no entry point")
        state = self.state
        state.rip = entry
        state.gp["rsp"] = STACK_TOP
        if args:
            for reg, value in zip(("rdi", "rsi", "rdx", "rcx", "r8", "r9"),
                                  args):
                state.gp[reg] = value & MASK64
        self._push(RETURN_SENTINEL)

        trace: Optional[List[ExecRecord]] = [] if collect_trace else None
        samples: Optional[List[Tuple[int, Dict[str, int]]]] = (
            [] if sample_period else None)
        if sample_period:
            sample_phase = int(sample_phase) % int(sample_period)

        if _BLOCK_CACHE_ENABLED:
            if trace is not None or trace_callback is not None:
                return self._run_blocks_traced(trace, trace_callback,
                                               sample_period, samples,
                                               sample_phase)
            return self._run_blocks(sample_period, samples, sample_phase)
        return self._run_interpreted(trace, trace_callback, sample_period,
                                     samples, sample_phase)

    def _run_interpreted(self, trace, trace_callback, sample_period,
                         samples, sample_phase=0) -> RunResult:
        """Reference loop: decode static facts on every dynamic step.

        Kept verbatim from the pre-block-cache engine; differential tests
        assert the compiled path reproduces its state, trace, and steps.
        """
        state = self.state
        code_index = self.program.code_index
        steps = 0
        reason = "max-steps"
        while steps < self.max_steps:
            address = state.rip
            entry_node = code_index.get(address)
            if entry_node is None:
                # Alignment padding between instructions is NOP fill in
                # the code image; skip it to the next real instruction.
                next_addr = self.program.next_instruction_address(address)
                if next_addr is not None and next_addr - address <= 256:
                    state.rip = next_addr
                    continue
                raise SimError("execution fell off code at %#x (step %d)"
                               % (address, steps))
            insn = entry_node.insn
            next_rip = address + len(insn.encoding or b"")
            state.rip = next_rip
            steps += 1
            self._tsc += 1

            if sample_period and steps % sample_period == sample_phase:
                samples.append((address, state.snapshot()))

            taken: Optional[bool] = None
            base = insn.base
            ea: Optional[int] = None
            if trace is not None or trace_callback is not None:
                mem_op = insn.memory_operand()
                if mem_op is not None and base != "lea":
                    ea = self.effective_address(mem_op, insn)
                elif base in ("push", "call"):
                    ea = (state.gp["rsp"] - 8) & MASK64
                elif base in ("pop", "ret"):
                    ea = state.gp["rsp"]
            handler = self._dispatch.get(base)
            if handler is None:
                raise SimError("no semantics for %s" % insn)
            outcome = handler(self, insn)
            if outcome is not None:
                kind, value = outcome
                if kind == "jump":
                    state.rip = value
                    taken = True
                elif kind == "nottaken":
                    taken = False
                elif kind == "ret":
                    if value == RETURN_SENTINEL:
                        reason = "ret"
                        if trace is not None or trace_callback:
                            record = ExecRecord(entry_node, None, address,
                                                ea)
                            if trace is not None:
                                trace.append(record)
                            if trace_callback:
                                trace_callback(record)
                        break
                    state.rip = value
                    taken = True
                elif kind == "halt":
                    reason = "hlt"
                    if trace is not None or trace_callback:
                        record = ExecRecord(entry_node, None, address, ea)
                        if trace is not None:
                            trace.append(record)
                        if trace_callback:
                            trace_callback(record)
                    break

            if trace is not None or trace_callback:
                record = ExecRecord(entry_node, taken, address, ea)
                if trace is not None:
                    trace.append(record)
                if trace_callback:
                    trace_callback(record)

        self.instructions_executed = steps
        return RunResult(steps=steps, reason=reason, state=state,
                         memory=self.memory, trace=trace, samples=samples)

    # ---- trace-compiled path -------------------------------------------------

    def _compile_block(self, address: int) -> _Block:
        """Decode the straight-line run starting at *address* into a block.

        Sound to cache on the program: addresses, encodings, and operands
        are immutable once loaded, so every static fact resolved here holds
        for all future executions of the block.
        """
        program = self.program
        code_index = program.code_index
        dispatch = self._dispatch

        if code_index.get(address) is None:
            # Alignment padding between instructions is NOP fill in the
            # code image; a padding block statically skips it (consuming
            # no steps) or records the fall-off fault.
            next_addr = program.next_instruction_address(address)
            if next_addr is not None and next_addr - address <= 256:
                block = _Block([], None, None, next_addr, False)
            else:
                block = _Block([], None, None, None, True)
            program.block_cache[address] = block
            _BLOCK_STATS["blocks_compiled"] += 1
            return block

        body: List[_CompiledStep] = []
        last: Optional[_CompiledStep] = None
        fault_insn: Optional[Instruction] = None
        addr = address
        while True:
            entry_node = code_index.get(addr)
            if entry_node is None:
                break                    # padding: next lookup handles it
            insn = entry_node.insn
            base = insn.base
            handler = dispatch.get(base)
            if handler is None:
                fault_insn = insn        # raise only once body has run
                break
            size = len(insn.encoding or b"")
            mem_op = insn.memory_operand()
            if mem_op is not None and base != "lea":
                ea_mode = _EA_MEM
            elif base in ("push", "call"):
                ea_mode, mem_op = _EA_PUSH, None
            elif base in ("pop", "ret"):
                ea_mode, mem_op = _EA_POP, None
            else:
                ea_mode, mem_op = _EA_NONE, None
            step = _CompiledStep(entry_node, handler, addr, addr + size,
                                 ea_mode, mem_op)
            if base in _CT_BASES:
                last = step
                break
            body.append(step)
            if size == 0 or len(body) >= _MAX_BLOCK_STEPS:
                break                    # re-enter the outer loop at rip
            addr += size

        block = _Block(body, last, fault_insn, None, False)
        program.block_cache[address] = block
        _BLOCK_STATS["blocks_compiled"] += 1
        _BLOCK_STATS["instructions_compiled"] += len(body) + (
            1 if last is not None else 0)
        return block

    def _run_blocks(self, sample_period, samples,
                    sample_phase=0) -> RunResult:
        """Hot path: no trace, no ExecRecord allocation, no ea computation."""
        state = self.state
        blocks = self.program.block_cache
        max_steps = self.max_steps
        stats = _BLOCK_STATS
        steps = 0
        reason = "max-steps"
        while steps < max_steps:
            block = blocks.get(state.rip)
            if block is None:
                block = self._compile_block(state.rip)
            else:
                stats["block_hits"] += 1
            body = block.body
            if body:
                if block.slow or sample_period \
                        or max_steps - steps < len(body):
                    for step in body:
                        if steps >= max_steps:
                            break
                        state.rip = step.next_rip
                        steps += 1
                        self._tsc += 1
                        if sample_period and steps % sample_period == sample_phase:
                            samples.append((step.address, state.snapshot()))
                        step.handler(self, step.insn)
                    if steps >= max_steps:
                        continue         # loop condition ends the run
                else:
                    for step in body:
                        state.rip = step.next_rip
                        step.handler(self, step.insn)
                    steps += len(body)
                    self._tsc += len(body)
            if block.fault_insn is not None:
                raise SimError("no semantics for %s" % block.fault_insn)
            step = block.last
            if step is None:
                if block.skip_to is not None:
                    state.rip = block.skip_to
                elif block.fell_off:
                    raise SimError("execution fell off code at %#x (step %d)"
                                   % (state.rip, steps))
                continue
            if steps >= max_steps:
                continue
            state.rip = step.next_rip
            steps += 1
            self._tsc += 1
            if sample_period and steps % sample_period == sample_phase:
                samples.append((step.address, state.snapshot()))
            outcome = step.handler(self, step.insn)
            if outcome is not None:
                kind, value = outcome
                if kind == "jump":
                    state.rip = value
                elif kind == "ret":
                    if value == RETURN_SENTINEL:
                        reason = "ret"
                        break
                    state.rip = value
                elif kind == "halt":
                    reason = "hlt"
                    break
                # "nottaken" falls through to next_rip.
        self.instructions_executed = steps
        return RunResult(steps=steps, reason=reason, state=state,
                         memory=self.memory, trace=None, samples=samples)

    def _run_blocks_traced(self, trace, trace_callback, sample_period,
                           samples, sample_phase=0) -> RunResult:
        """Traced path: per-step records, ea derived from compiled facts."""
        state = self.state
        gp = state.gp
        blocks = self.program.block_cache
        max_steps = self.max_steps
        stats = _BLOCK_STATS
        steps = 0
        reason = "max-steps"
        while steps < max_steps:
            block = blocks.get(state.rip)
            if block is None:
                block = self._compile_block(state.rip)
            else:
                stats["block_hits"] += 1
            interrupted = False
            for step in block.body:
                if steps >= max_steps:
                    interrupted = True
                    break
                state.rip = step.next_rip
                steps += 1
                self._tsc += 1
                if sample_period and steps % sample_period == sample_phase:
                    samples.append((step.address, state.snapshot()))
                mode = step.ea_mode
                if mode == _EA_NONE:
                    ea = None
                elif mode == _EA_MEM:
                    ea = self.effective_address(step.mem_op, step.insn)
                elif mode == _EA_PUSH:
                    ea = (gp["rsp"] - 8) & MASK64
                else:
                    ea = gp["rsp"]
                step.handler(self, step.insn)
                record = ExecRecord(step.entry, None, step.address, ea)
                if trace is not None:
                    trace.append(record)
                if trace_callback is not None:
                    trace_callback(record)
            if interrupted:
                continue
            if block.fault_insn is not None:
                raise SimError("no semantics for %s" % block.fault_insn)
            step = block.last
            if step is None:
                if block.skip_to is not None:
                    state.rip = block.skip_to
                elif block.fell_off:
                    raise SimError("execution fell off code at %#x (step %d)"
                                   % (state.rip, steps))
                continue
            if steps >= max_steps:
                continue
            state.rip = step.next_rip
            steps += 1
            self._tsc += 1
            if sample_period and steps % sample_period == sample_phase:
                samples.append((step.address, state.snapshot()))
            mode = step.ea_mode
            if mode == _EA_NONE:
                ea = None
            elif mode == _EA_MEM:
                ea = self.effective_address(step.mem_op, step.insn)
            elif mode == _EA_PUSH:
                ea = (gp["rsp"] - 8) & MASK64
            else:
                ea = gp["rsp"]
            taken: Optional[bool] = None
            outcome = step.handler(self, step.insn)
            if outcome is not None:
                kind, value = outcome
                if kind == "jump":
                    state.rip = value
                    taken = True
                elif kind == "nottaken":
                    taken = False
                elif kind == "ret":
                    if value == RETURN_SENTINEL:
                        reason = "ret"
                        record = ExecRecord(step.entry, None, step.address,
                                            ea)
                        if trace is not None:
                            trace.append(record)
                        if trace_callback is not None:
                            trace_callback(record)
                        break
                    state.rip = value
                    taken = True
                elif kind == "halt":
                    reason = "hlt"
                    record = ExecRecord(step.entry, None, step.address, ea)
                    if trace is not None:
                        trace.append(record)
                    if trace_callback is not None:
                        trace_callback(record)
                    break
            record = ExecRecord(step.entry, taken, step.address, ea)
            if trace is not None:
                trace.append(record)
            if trace_callback is not None:
                trace_callback(record)
        self.instructions_executed = steps
        return RunResult(steps=steps, reason=reason, state=state,
                         memory=self.memory, trace=trace, samples=samples)


# ---------------------------------------------------------------------------
# Instruction semantics.  Handlers return None (fall through), or a tuple
# ("jump", target) / ("nottaken", None) / ("ret", target) / ("halt", None).
# ---------------------------------------------------------------------------

def _width(insn: Instruction) -> int:
    width = insn.effective_width()
    if width is None:
        raise SimError("unknown width for %s" % insn)
    return width


def _op_mov(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    if any(isinstance(o, RegisterOperand) and o.reg.reg_class == "xmm"
           for o in (src, dst)):
        return _op_sse_movq(interp, insn)
    width = _width(insn)
    interp.write_operand(dst, interp.read_operand(src, width, insn),
                         width, insn)
    return None


def _op_movabs(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    interp.write_operand(dst, interp.read_operand(src, 64, insn), 64, insn)
    return None


def _op_movsx(interp: Interpreter, insn: Instruction):
    src_w, dst_w = insn.info.extend
    src, dst = insn.operands
    value = interp.read_operand(src, src_w, insn)
    interp.write_operand(dst, _signed(value, src_w) & ((1 << dst_w) - 1),
                         dst_w, insn)
    return None


def _op_movzx(interp: Interpreter, insn: Instruction):
    src_w, dst_w = insn.info.extend
    src, dst = insn.operands
    interp.write_operand(dst, interp.read_operand(src, src_w, insn),
                         dst_w, insn)
    return None


def _op_lea(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    if not isinstance(src, Memory):
        raise SimError("lea needs memory operand")
    width = _width(insn)
    interp.write_operand(dst, interp.effective_address(src, insn)
                         & ((1 << width) - 1), width, insn)
    return None


def _make_alu(name: str):
    def handler(interp: Interpreter, insn: Instruction):
        width = _width(insn)
        mask = (1 << width) - 1
        src, dst = insn.operands
        a = interp.read_operand(dst, width, insn)
        b = interp.read_operand(src, width, insn)
        if name == "add":
            result = (a + b) & mask
            interp._flags_add(a, b, result, width)
        elif name in ("sub", "cmp"):
            result = (a - b) & mask
            interp._flags_sub(a, b, result, width)
        elif name == "adc":
            carry = int(interp.state.flags.get("CF"))
            result = (a + b + carry) & mask
            interp._flags_add(a, b, result, width, carry_in=carry)
        elif name == "sbb":
            borrow = int(interp.state.flags.get("CF"))
            result = (a - b - borrow) & mask
            interp._flags_sub(a, b, result, width, borrow_in=borrow)
        elif name == "and" or name == "test":
            result = a & b
            interp._flags_logic(result, width)
        elif name == "or":
            result = (a | b) & mask
            interp._flags_logic(result, width)
        else:  # xor
            result = (a ^ b) & mask
            interp._flags_logic(result, width)
        if name not in ("cmp", "test"):
            interp.write_operand(dst, result, width, insn)
        return None
    return handler


def _op_incdec(interp: Interpreter, insn: Instruction):
    width = _width(insn)
    mask = (1 << width) - 1
    op = insn.op(0)
    a = interp.read_operand(op, width, insn)
    flags = interp.state.flags
    carry = flags.get("CF")          # inc/dec preserve CF
    if insn.base == "inc":
        result = (a + 1) & mask
        interp._flags_add(a, 1, result, width)
    else:
        result = (a - 1) & mask
        interp._flags_sub(a, 1, result, width)
    flags.set("CF", carry)
    interp.write_operand(op, result, width, insn)
    return None


def _op_neg(interp: Interpreter, insn: Instruction):
    width = _width(insn)
    mask = (1 << width) - 1
    op = insn.op(0)
    a = interp.read_operand(op, width, insn)
    result = (-a) & mask
    interp._flags_sub(0, a, result, width)
    interp.state.flags.set("CF", a != 0)
    interp.write_operand(op, result, width, insn)
    return None


def _op_not(interp: Interpreter, insn: Instruction):
    width = _width(insn)
    op = insn.op(0)
    a = interp.read_operand(op, width, insn)
    interp.write_operand(op, (~a) & ((1 << width) - 1), width, insn)
    return None


def _op_shift(interp: Interpreter, insn: Instruction):
    width = _width(insn)
    mask = (1 << width) - 1
    if len(insn.operands) == 1:
        count, dst = 1, insn.op(0)
    else:
        count_op, dst = insn.operands
        if isinstance(count_op, Immediate):
            count = count_op.value
        else:
            count = interp.state.read_reg(count_op.reg)
    count &= 63 if width == 64 else 31
    a = interp.read_operand(dst, width, insn)
    flags = interp.state.flags
    if count == 0:
        return None
    base = insn.base
    if base == "shl":
        result = (a << count) & mask
        carry = bool((a >> (width - count)) & 1) if count <= width else False
        flags.set("OF", _msb(result, width) != carry)
    elif base == "shr":
        result = (a >> count) & mask
        carry = bool((a >> (count - 1)) & 1)
        flags.set("OF", _msb(a, width))
    elif base == "sar":
        signed_a = _signed(a, width)
        result = (signed_a >> count) & mask
        carry = bool((signed_a >> (count - 1)) & 1)
        flags.set("OF", False)
    elif base == "rol":
        count %= width
        result = ((a << count) | (a >> (width - count))) & mask \
            if count else a
        carry = bool(result & 1)
        flags.set("CF", carry)
        interp.write_operand(dst, result, width, insn)
        return None
    elif base == "ror":
        count %= width
        result = ((a >> count) | (a << (width - count))) & mask \
            if count else a
        carry = _msb(result, width)
        flags.set("CF", carry)
        interp.write_operand(dst, result, width, insn)
        return None
    else:
        raise SimError("bad shift %s" % base)
    flags.set("CF", carry)
    flags.set("AF", False)
    interp._set_result_flags(result, width)
    interp.write_operand(dst, result, width, insn)
    return None


def _op_imul(interp: Interpreter, insn: Instruction):
    width = _width(insn)
    mask = (1 << width) - 1
    state = interp.state
    if len(insn.operands) == 1:
        a = _signed(state.gp["rax"] & mask, width)
        b = _signed(interp.read_operand(insn.op(0), width, insn), width)
        product = a * b
        low = product & mask
        high = (product >> width) & mask
        if width == 64:
            state.gp["rax"] = low
            state.gp["rdx"] = high
        else:
            state.write_reg(_gp(0, width), low)
            state.write_reg(_gp(2, width), high)
        overflow = product != _signed(low, width)
        state.flags.set("CF", overflow)
        state.flags.set("OF", overflow)
        return None
    if len(insn.operands) == 2:
        src, dst = insn.operands
        a = _signed(interp.read_operand(dst, width, insn), width)
        b = _signed(interp.read_operand(src, width, insn), width)
    else:
        immop, src, dst = insn.operands
        a = _signed(interp.read_operand(src, width, insn), width)
        b = _signed(interp.read_operand(immop, width, insn), width)
    product = a * b
    result = product & mask
    interp.write_operand(dst, result, width, insn)
    overflow = product != _signed(result, width)
    interp.state.flags.set("CF", overflow)
    interp.state.flags.set("OF", overflow)
    interp._set_result_flags(result, width)   # architecturally undefined
    return None


def _gp(number: int, width: int):
    from repro.x86.registers import gp_register
    return gp_register(number, width)


def _op_mul(interp: Interpreter, insn: Instruction):
    width = _width(insn)
    mask = (1 << width) - 1
    state = interp.state
    a = state.gp["rax"] & mask
    b = interp.read_operand(insn.op(0), width, insn)
    product = a * b
    low = product & mask
    high = (product >> width) & mask
    if width == 64:
        state.gp["rax"], state.gp["rdx"] = low, high
    else:
        state.write_reg(_gp(0, width), low)
        state.write_reg(_gp(2, width), high)
    overflow = high != 0
    state.flags.set("CF", overflow)
    state.flags.set("OF", overflow)
    return None


def _op_div(interp: Interpreter, insn: Instruction):
    width = _width(insn)
    mask = (1 << width) - 1
    state = interp.state
    signed = insn.base == "idiv"
    low = state.gp["rax"] & mask
    high = state.gp["rdx"] & mask
    dividend = (high << width) | low
    divisor = interp.read_operand(insn.op(0), width, insn)
    if signed:
        dividend = _signed(dividend, 2 * width)
        divisor = _signed(divisor, width)
    if divisor == 0:
        raise SimError("division by zero")
    quotient = int(dividend / divisor) if signed else dividend // divisor
    remainder = dividend - quotient * divisor
    if signed and not (-(1 << (width - 1)) <= quotient
                       < (1 << (width - 1))):
        raise SimError("idiv overflow")
    if width == 64:
        state.gp["rax"] = quotient & mask
        state.gp["rdx"] = remainder & mask
    else:
        state.write_reg(_gp(0, width), quotient & mask)
        state.write_reg(_gp(2, width), remainder & mask)
    return None


def _op_push(interp: Interpreter, insn: Instruction):
    value = interp.read_operand(insn.op(0), 64, insn)
    interp._push(value)
    return None


def _op_pop(interp: Interpreter, insn: Instruction):
    interp.write_operand(insn.op(0), interp._pop(), 64, insn)
    return None


def _op_jmp(interp: Interpreter, insn: Instruction):
    return ("jump", interp._branch_target(insn))


def _op_jcc(interp: Interpreter, insn: Instruction):
    if interp.condition(insn.cond):
        return ("jump", interp._branch_target(insn))
    return ("nottaken", None)


def _op_call(interp: Interpreter, insn: Instruction):
    interp._push(interp.state.rip)
    return ("jump", interp._branch_target(insn))


def _op_ret(interp: Interpreter, insn: Instruction):
    target = interp._pop()
    if insn.operands:
        interp.state.gp["rsp"] = (interp.state.gp["rsp"]
                                  + insn.op(0).value) & MASK64
    return ("ret", target)


def _op_leave(interp: Interpreter, insn: Instruction):
    interp.state.gp["rsp"] = interp.state.gp["rbp"]
    interp.state.gp["rbp"] = interp._pop()
    return None


def _op_halt(interp: Interpreter, insn: Instruction):
    return ("halt", None)


def _op_nop(interp: Interpreter, insn: Instruction):
    return None


def _op_setcc(interp: Interpreter, insn: Instruction):
    interp.write_operand(insn.op(0), int(interp.condition(insn.cond)),
                         8, insn)
    return None


def _op_cmov(interp: Interpreter, insn: Instruction):
    width = _width(insn)
    src, dst = insn.operands
    if interp.condition(insn.cond):
        interp.write_operand(dst, interp.read_operand(src, width, insn),
                             width, insn)
    else:
        # Even untaken cmov to 32-bit dst zero-extends (writes dst).
        interp.write_operand(dst, interp.read_operand(dst, width, insn),
                             width, insn)
    return None


def _op_xchg(interp: Interpreter, insn: Instruction):
    width = _width(insn)
    a, b = insn.operands
    va = interp.read_operand(a, width, insn)
    vb = interp.read_operand(b, width, insn)
    interp.write_operand(a, vb, width, insn)
    interp.write_operand(b, va, width, insn)
    return None


def _op_bswap(interp: Interpreter, insn: Instruction):
    width = _width(insn)
    op = insn.op(0)
    value = interp.read_operand(op, width, insn)
    data = value.to_bytes(width // 8, "little")
    interp.write_operand(op, int.from_bytes(data, "big"), width, insn)
    return None


def _op_cltq(interp: Interpreter, insn: Instruction):
    state = interp.state
    state.gp["rax"] = _signed(state.gp["rax"] & 0xFFFFFFFF, 32) & MASK64
    return None


def _op_cwtl(interp: Interpreter, insn: Instruction):
    state = interp.state
    state.gp["rax"] = (_signed(state.gp["rax"] & 0xFFFF, 16)
                       & 0xFFFFFFFF)
    return None


def _op_cqto(interp: Interpreter, insn: Instruction):
    state = interp.state
    sign = _msb(state.gp["rax"], 64)
    state.gp["rdx"] = MASK64 if sign else 0
    return None


def _op_cltd(interp: Interpreter, insn: Instruction):
    state = interp.state
    sign = _msb(state.gp["rax"] & 0xFFFFFFFF, 32)
    state.gp["rdx"] = 0xFFFFFFFF if sign else 0
    return None


def _op_rdtsc(interp: Interpreter, insn: Instruction):
    state = interp.state
    state.gp["rax"] = interp._tsc & 0xFFFFFFFF
    state.gp["rdx"] = (interp._tsc >> 32) & 0xFFFFFFFF
    return None


def _op_cpuid(interp: Interpreter, insn: Instruction):
    state = interp.state
    state.gp["rax"] = 0
    state.gp["rbx"] = 0x756E6547   # "Genu" — deterministic stub
    state.gp["rcx"] = 0x6C65746E
    state.gp["rdx"] = 0x49656E69
    return None


# ---- SSE scalar ----------------------------------------------------------

def _f32(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def _f32_bits(value: float) -> int:
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except OverflowError:
        return 0x7F800000 if value > 0 else 0xFF800000


def _f64(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def _f64_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def _op_movss(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    if isinstance(dst, RegisterOperand):
        if isinstance(src, Memory):
            bits = interp.read_operand(src, 32, insn)
            interp.state.xmm[dst.reg.group] = bits   # zero upper 96
        else:
            low = interp.state.xmm[src.reg.group] & 0xFFFFFFFF
            old = interp.state.xmm[dst.reg.group]
            interp.state.xmm[dst.reg.group] = (old & ~0xFFFFFFFF) | low
    else:
        bits = interp.state.xmm[src.reg.group] & 0xFFFFFFFF
        interp.write_operand(dst, bits, 32, insn)
    return None


def _op_movsd_sse(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    if isinstance(dst, RegisterOperand):
        if isinstance(src, Memory):
            bits = interp.read_operand(src, 64, insn)
            interp.state.xmm[dst.reg.group] = bits   # zero upper 64
        else:
            low = interp.state.xmm[src.reg.group] & MASK64
            old = interp.state.xmm[dst.reg.group]
            interp.state.xmm[dst.reg.group] = (old & ~MASK64) | low
    else:
        bits = interp.state.xmm[src.reg.group] & MASK64
        interp.write_operand(dst, bits, 64, insn)
    return None


def _xmm_or_mem_bits(interp: Interpreter, op: Operand, size_bits: int,
                     insn: Instruction) -> int:
    if isinstance(op, RegisterOperand):
        return interp.state.xmm[op.reg.group] & ((1 << size_bits) - 1)
    return interp.read_operand(op, size_bits, insn)


def _make_sse_arith(opname: str, double: bool):
    import operator
    ops = {"add": operator.add, "sub": operator.sub,
           "mul": operator.mul, "div": operator.truediv}
    fn = ops[opname]

    def handler(interp: Interpreter, insn: Instruction):
        src, dst = insn.operands
        size = 64 if double else 32
        to_f = _f64 if double else _f32
        to_bits = _f64_bits if double else _f32_bits
        a = to_f(interp.state.xmm[dst.reg.group])
        b = to_f(_xmm_or_mem_bits(interp, src, size, insn))
        try:
            result = fn(a, b)
        except ZeroDivisionError:
            result = float("inf") if a > 0 else float("-inf") if a < 0 \
                else float("nan")
        bits = to_bits(result)
        old = interp.state.xmm[dst.reg.group]
        mask = (1 << size) - 1
        interp.state.xmm[dst.reg.group] = (old & ~mask) | bits
        return None
    return handler


def _op_sse_xor(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    a = interp.state.xmm[dst.reg.group]
    if isinstance(src, RegisterOperand):
        b = interp.state.xmm[src.reg.group]
    else:
        b = interp.read_operand(src, 128, insn)
    interp.state.xmm[dst.reg.group] = a ^ b
    return None


def _make_ucomi(double: bool):
    def handler(interp: Interpreter, insn: Instruction):
        src, dst = insn.operands
        size = 64 if double else 32
        to_f = _f64 if double else _f32
        a = to_f(interp.state.xmm[dst.reg.group])
        b = to_f(_xmm_or_mem_bits(interp, src, size, insn))
        flags = interp.state.flags
        flags.set("OF", False)
        flags.set("AF", False)
        flags.set("SF", False)
        if a != a or b != b:                      # unordered (NaN)
            flags.set("ZF", True)
            flags.set("PF", True)
            flags.set("CF", True)
        else:
            flags.set("ZF", a == b)
            flags.set("PF", False)
            flags.set("CF", a < b)
        return None
    return handler


def _op_sse_movq(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    src_xmm = isinstance(src, RegisterOperand) and src.reg.reg_class == "xmm"
    dst_xmm = isinstance(dst, RegisterOperand) and dst.reg.reg_class == "xmm"
    if src_xmm and dst_xmm:
        interp.state.xmm[dst.reg.group] = \
            interp.state.xmm[src.reg.group] & MASK64
    elif src_xmm:
        interp.write_operand(dst, interp.state.xmm[src.reg.group] & MASK64,
                             64, insn)
    else:
        interp.state.xmm[dst.reg.group] = \
            interp.read_operand(src, 64, insn)
    return None


def _op_movd(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    if isinstance(dst, RegisterOperand) and dst.reg.reg_class == "xmm":
        interp.state.xmm[dst.reg.group] = interp.read_operand(src, 32, insn)
    else:
        interp.write_operand(dst,
                             interp.state.xmm[src.reg.group] & 0xFFFFFFFF,
                             32, insn)
    return None


def _make_cvt_si2f(double: bool, quad: bool):
    def handler(interp: Interpreter, insn: Instruction):
        src, dst = insn.operands
        width = 64 if quad else 32
        value = _signed(interp.read_operand(src, width, insn), width)
        bits = _f64_bits(float(value)) if double else _f32_bits(float(value))
        size = 64 if double else 32
        mask = (1 << size) - 1
        old = interp.state.xmm[dst.reg.group]
        interp.state.xmm[dst.reg.group] = (old & ~mask) | bits
        return None
    return handler


def _make_cvt_f2si(double: bool, quad: bool):
    def handler(interp: Interpreter, insn: Instruction):
        src, dst = insn.operands
        to_f = _f64 if double else _f32
        value = to_f(_xmm_or_mem_bits(interp, src, 64 if double else 32,
                                      insn))
        width = 64 if quad else 32
        truncated = int(value)
        interp.write_operand(dst, truncated & ((1 << width) - 1), width,
                             insn)
        return None
    return handler


def _op_cvtss2sd(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    value = _f32(_xmm_or_mem_bits(interp, src, 32, insn))
    old = interp.state.xmm[dst.reg.group]
    interp.state.xmm[dst.reg.group] = (old & ~MASK64) | _f64_bits(value)
    return None


def _op_cvtsd2ss(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    value = _f64(_xmm_or_mem_bits(interp, src, 64, insn))
    old = interp.state.xmm[dst.reg.group]
    interp.state.xmm[dst.reg.group] = (old & ~0xFFFFFFFF) \
        | _f32_bits(value)
    return None


def _op_movaps(interp: Interpreter, insn: Instruction):
    src, dst = insn.operands
    if isinstance(dst, RegisterOperand):
        if isinstance(src, RegisterOperand):
            interp.state.xmm[dst.reg.group] = interp.state.xmm[src.reg.group]
        else:
            interp.state.xmm[dst.reg.group] = interp.read_operand(src, 128,
                                                                  insn)
    else:
        interp.write_operand(dst, interp.state.xmm[src.reg.group], 128, insn)
    return None


_DISPATCH: Dict[str, Callable] = {
    "mov": _op_mov,
    "movabs": _op_movabs,
    "movsx": _op_movsx,
    "movzx": _op_movzx,
    "lea": _op_lea,
    "add": _make_alu("add"),
    "sub": _make_alu("sub"),
    "adc": _make_alu("adc"),
    "sbb": _make_alu("sbb"),
    "and": _make_alu("and"),
    "or": _make_alu("or"),
    "xor": _make_alu("xor"),
    "cmp": _make_alu("cmp"),
    "test": _make_alu("test"),
    "inc": _op_incdec,
    "dec": _op_incdec,
    "neg": _op_neg,
    "not": _op_not,
    "shl": _op_shift,
    "shr": _op_shift,
    "sar": _op_shift,
    "rol": _op_shift,
    "ror": _op_shift,
    "imul": _op_imul,
    "mul": _op_mul,
    "idiv": _op_div,
    "div": _op_div,
    "push": _op_push,
    "pop": _op_pop,
    "jmp": _op_jmp,
    "j": _op_jcc,
    "call": _op_call,
    "ret": _op_ret,
    "leave": _op_leave,
    "hlt": _op_halt,
    "ud2": _op_halt,
    "int3": _op_halt,
    "nop": _op_nop,
    "pause": _op_nop,
    "mfence": _op_nop,
    "lfence": _op_nop,
    "sfence": _op_nop,
    "prefetchnta": _op_nop,
    "prefetcht0": _op_nop,
    "prefetcht1": _op_nop,
    "prefetcht2": _op_nop,
    "set": _op_setcc,
    "cmov": _op_cmov,
    "xchg": _op_xchg,
    "bswap": _op_bswap,
    "cltq": _op_cltq,
    "cwtl": _op_cwtl,
    "cqto": _op_cqto,
    "cltd": _op_cltd,
    "rdtsc": _op_rdtsc,
    "cpuid": _op_cpuid,
    "movss": _op_movss,
    "movsd": _op_movsd_sse,
    "movaps": _op_movaps,
    "movups": _op_movaps,
    "movd": _op_movd,
    "addss": _make_sse_arith("add", False),
    "addsd": _make_sse_arith("add", True),
    "subss": _make_sse_arith("sub", False),
    "subsd": _make_sse_arith("sub", True),
    "mulss": _make_sse_arith("mul", False),
    "mulsd": _make_sse_arith("mul", True),
    "divss": _make_sse_arith("div", False),
    "divsd": _make_sse_arith("div", True),
    "xorps": _op_sse_xor,
    "xorpd": _op_sse_xor,
    "pxor": _op_sse_xor,
    "ucomiss": _make_ucomi(False),
    "ucomisd": _make_ucomi(True),
    "comiss": _make_ucomi(False),
    "comisd": _make_ucomi(True),
    "cvtsi2ss": _make_cvt_si2f(False, False),
    "cvtsi2sd": _make_cvt_si2f(True, False),
    "cvtsi2ssq": _make_cvt_si2f(False, True),
    "cvtsi2sdq": _make_cvt_si2f(True, True),
    "cvttss2si": _make_cvt_f2si(False, False),
    "cvttsd2si": _make_cvt_f2si(True, False),
    "cvttss2siq": _make_cvt_f2si(False, True),
    "cvttsd2siq": _make_cvt_f2si(True, True),
}


def run_unit(unit: MaoUnit, entry_symbol: str = "main",
             collect_trace: bool = False,
             max_steps: int = 5_000_000,
             args: Optional[List[int]] = None,
             sample_period: Optional[int] = None,
             sample_phase: int = 0) -> RunResult:
    """Convenience: load a unit and run it from *entry_symbol*."""
    from repro import obs

    with obs.span("load", entry=entry_symbol):
        program = load_unit(unit, entry_symbol)
    with obs.span("execute", entry=entry_symbol) as span:
        interp = Interpreter(program, max_steps=max_steps)
        result = interp.run(collect_trace=collect_trace, args=args,
                            sample_period=sample_period,
                            sample_phase=sample_phase)
        if span:
            span.attach(steps=result.steps, reason=result.reason)
    return result
