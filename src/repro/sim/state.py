"""Architectural machine state: register file and RFLAGS.

General-purpose registers are stored as 64-bit unsigned values keyed by
alias group, with width-correct partial access semantics (32-bit writes
zero-extend to 64 bits; 8/16-bit writes merge; ``ah``-family registers hit
bits 8..15).  XMM registers are 128-bit unsigned integers.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.x86.flags import ALL_FLAGS
from repro.x86.registers import GP_GROUPS, Register

MASK64 = (1 << 64) - 1


def _mask(width: int) -> int:
    return (1 << width) - 1


class Flags:
    """The six arithmetic RFLAGS bits."""

    __slots__ = ("bits",)

    def __init__(self) -> None:
        self.bits: Dict[str, bool] = {f: False for f in ALL_FLAGS}

    def get(self, flag: str) -> bool:
        return self.bits[flag]

    def set(self, flag: str, value: bool) -> None:
        self.bits[flag] = bool(value)

    def snapshot(self) -> Dict[str, bool]:
        return dict(self.bits)

    def __repr__(self) -> str:
        on = [f for f, v in sorted(self.bits.items()) if v]
        return "<flags %s>" % (" ".join(on) or "-")


class MachineState:
    """Registers + flags (memory lives in SparseMemory)."""

    __slots__ = ("gp", "xmm", "flags", "rip")

    def __init__(self) -> None:
        self.gp: Dict[str, int] = {g: 0 for g in GP_GROUPS}
        self.xmm: Dict[str, int] = {"xmm%d" % i: 0 for i in range(16)}
        self.flags = Flags()
        self.rip = 0

    # ---- GP access ----------------------------------------------------------

    def read_reg(self, reg: Register) -> int:
        """Unsigned value of the register at its own width."""
        if reg.reg_class == "xmm":
            return self.xmm[reg.group] & _mask(128)
        value = self.gp[reg.group]
        if reg.high8:
            return (value >> 8) & 0xFF
        return value & _mask(reg.width)

    def write_reg(self, reg: Register, value: int) -> None:
        if reg.reg_class == "xmm":
            self.xmm[reg.group] = value & _mask(128)
            return
        group = reg.group
        if reg.width == 64:
            self.gp[group] = value & MASK64
        elif reg.width == 32:
            # x86-64 rule: 32-bit writes zero-extend into the full register.
            self.gp[group] = value & 0xFFFFFFFF
        elif reg.width == 16:
            self.gp[group] = (self.gp[group] & ~0xFFFF) | (value & 0xFFFF)
        elif reg.high8:
            self.gp[group] = (self.gp[group] & ~0xFF00) \
                | ((value & 0xFF) << 8)
        else:
            self.gp[group] = (self.gp[group] & ~0xFF) | (value & 0xFF)

    def read_group(self, group: str) -> int:
        if group in self.gp:
            return self.gp[group]
        return self.xmm[group]

    def snapshot(self) -> Dict[str, int]:
        """Full register-file snapshot (the PMU-sample payload)."""
        snap = dict(self.gp)
        snap.update(self.xmm)
        snap["rip"] = self.rip
        return snap

    def diff(self, other: "MachineState",
             ignore: Set[str] = frozenset()) -> Dict[str, tuple]:
        """Registers whose values differ from *other*."""
        delta = {}
        for group, value in self.gp.items():
            if group in ignore:
                continue
            if other.gp[group] != value:
                delta[group] = (value, other.gp[group])
        for group, value in self.xmm.items():
            if group in ignore:
                continue
            if other.xmm[group] != value:
                delta[group] = (value, other.xmm[group])
        return delta
