"""Load a MaoUnit into a simulated address space.

This plays the role of assembler+linker+loader for the simulator: sections
get fixed base addresses, code sections are relaxed at their final base so
every instruction has a true address and encoding, and data directives are
materialized into memory bytes (including jump tables of ``.quad .Lxx``
entries, which resolve through the shared symbol table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.relax import (
    SectionLayout,
    _alignment_request,
    _string_literals,
    directive_data_size,
    relax_section,
)
from repro.ir.entries import DirectiveEntry, InstructionEntry, LabelEntry
from repro.ir.unit import MaoUnit
from repro.sim.memory import SparseMemory
from repro.x86.lexer import split_operands

TEXT_BASE = 0x400000
DATA_BASE = 0x600000
BSS_BASE = 0x700000
STACK_TOP = 0x7FFF0000
STACK_BOTTOM_SENTINEL = 0xDEADBEEF00


class LoadError(Exception):
    pass


@dataclass
class LoadedProgram:
    unit: MaoUnit
    memory: SparseMemory
    symtab: Dict[str, int]
    #: address -> InstructionEntry for every encoded code byte start.
    code_index: Dict[int, InstructionEntry]
    layouts: Dict[str, SectionLayout] = field(default_factory=dict)
    entry_point: Optional[int] = None
    #: Sorted instruction start addresses (for skipping alignment pads).
    code_addresses: List[int] = field(default_factory=list)
    #: Compiled basic blocks keyed by start address.  Owned by the program
    #: (not the Interpreter) so every run over the same image shares them;
    #: sound because the code image is immutable after load.
    block_cache: Dict[int, object] = field(default_factory=dict, repr=False)

    def address_of(self, symbol: str) -> int:
        return self.symtab[symbol]

    def next_instruction_address(self, address: int) -> Optional[int]:
        """First instruction address strictly greater than *address*."""
        import bisect
        idx = bisect.bisect_right(self.code_addresses, address)
        if idx < len(self.code_addresses):
            return self.code_addresses[idx]
        return None


def _section_base(name: str, order: int) -> int:
    if name.startswith(".text"):
        return TEXT_BASE + order * 0x10000
    if name.startswith(".bss"):
        return BSS_BASE + order * 0x10000
    return DATA_BASE + order * 0x10000


def _data_item_values(directive: DirectiveEntry,
                      symtab: Dict[str, int]) -> List[int]:
    values = []
    for part in split_operands(directive.args):
        part = part.strip()
        if not part:
            continue
        try:
            values.append(int(part, 0))
            continue
        except ValueError:
            pass
        # symbol or symbol+offset
        text = part
        offset = 0
        for sep in ("+", "-"):
            if sep in text[1:]:
                idx = text.rindex(sep)
                try:
                    offset = int(text[idx:], 0)
                    text = text[:idx]
                    break
                except ValueError:
                    pass
        if text in symtab:
            values.append(symtab[text] + offset)
        else:
            values.append(0)
    return values


_ITEM_SIZES = {"byte": 1, "word": 2, "value": 2, "short": 2,
               "long": 4, "int": 4, "quad": 8}


def _materialize_data(memory: SparseMemory, address: int,
                      directive: DirectiveEntry,
                      symtab: Dict[str, int]) -> int:
    """Write a data directive's bytes; returns bytes written."""
    name = directive.name
    if name in _ITEM_SIZES:
        size = _ITEM_SIZES[name]
        cursor = address
        for value in _data_item_values(directive, symtab):
            memory.write(cursor, value, size)
            cursor += size
        return cursor - address
    if name in ("zero", "skip", "space"):
        return directive_data_size(directive)
    if name in ("ascii", "asciz", "string"):
        cursor = address
        for literal in _string_literals(directive.args):
            memory.write_bytes(cursor, literal)
            cursor += len(literal)
            if name in ("asciz", "string"):
                memory.write(cursor, 0, 1)
                cursor += 1
        return cursor - address
    return 0


def load_unit(unit: MaoUnit, entry_symbol: str = "main") -> LoadedProgram:
    """Lay out, relax, and materialize a unit into simulated memory."""
    memory = SparseMemory()
    symtab: Dict[str, int] = {}
    layouts: Dict[str, SectionLayout] = {}

    populated = [s for s in unit.sections.values()
                 if any(e.section is s for e in unit.entries())]
    code_sections = [s for s in populated if s.is_code]
    data_sections = [s for s in populated if not s.is_code]

    # Pass 1: data section label addresses (sizes don't depend on code).
    for order, section in enumerate(data_sections):
        base = _section_base(section.name, order)
        cursor = base
        for entry in unit.entries():
            if entry.section is not section:
                continue
            if isinstance(entry, LabelEntry):
                symtab[entry.name] = cursor
            elif isinstance(entry, DirectiveEntry):
                request = _alignment_request(entry)
                if request is not None:
                    alignment, max_skip = request
                    pad = (-cursor) % alignment
                    if max_skip is not None and pad > max_skip:
                        pad = 0
                    cursor += pad
                else:
                    cursor += directive_data_size(entry)

    # Pass 2: relax code sections with data symbols visible.
    code_index: Dict[int, InstructionEntry] = {}
    for order, section in enumerate(code_sections):
        base = _section_base(section.name, order)
        layout = relax_section(unit, section, start_address=base,
                               extern_symbols=dict(symtab))
        layouts[section.name] = layout
        symtab.update(layout.symtab)
        image = layout.code_image()
        memory.write_bytes(base, image)
        for entry, place in layout.placement.items():
            if isinstance(entry, InstructionEntry):
                code_index[place.address] = entry

    # Pass 2b: re-relax so cross-code-section symbols resolve (rare).
    # Pass 3: materialize data bytes with the full symbol table.
    for order, section in enumerate(data_sections):
        base = _section_base(section.name, order)
        cursor = base
        for entry in unit.entries():
            if entry.section is not section:
                continue
            if isinstance(entry, DirectiveEntry):
                request = _alignment_request(entry)
                if request is not None:
                    alignment, max_skip = request
                    pad = (-cursor) % alignment
                    if max_skip is not None and pad > max_skip:
                        pad = 0
                    cursor += pad
                else:
                    cursor += _materialize_data(memory, cursor, entry, symtab)

    program = LoadedProgram(unit=unit, memory=memory, symtab=symtab,
                            code_index=code_index, layouts=layouts,
                            code_addresses=sorted(code_index))
    if entry_symbol in symtab:
        program.entry_point = symtab[entry_symbol]
    return program
