"""Sparse byte-addressable memory for the architectural simulator."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1


class SparseMemory:
    """Page-granular sparse memory; unmapped reads return zero bytes."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        page_id = address >> _PAGE_BITS
        page = self._pages.get(page_id)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[page_id] = page
        return page

    def clone(self) -> "SparseMemory":
        """Deep copy; lets one loaded image seed many independent runs."""
        dup = SparseMemory()
        dup._pages = {page_id: bytearray(page)
                      for page_id, page in self._pages.items()}
        return dup

    def read(self, address: int, size: int) -> int:
        """Little-endian unsigned read of *size* bytes."""
        value = 0
        for i in range(size):
            addr = address + i
            page = self._pages.get(addr >> _PAGE_BITS)
            byte = page[addr & _PAGE_MASK] if page is not None else 0
            value |= byte << (8 * i)
        return value

    def write(self, address: int, value: int, size: int) -> None:
        """Little-endian write of the low *size* bytes of *value*."""
        for i in range(size):
            addr = address + i
            self._page(addr)[addr & _PAGE_MASK] = (value >> (8 * i)) & 0xFF

    def read_bytes(self, address: int, size: int) -> bytes:
        return bytes((self.read(address + i, 1)) for i in range(size))

    def write_bytes(self, address: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self._page(address + i)[(address + i) & _PAGE_MASK] = byte

    def touched_pages(self) -> int:
        return len(self._pages)

    def nonzero_ranges(self) -> Iterator[Tuple[int, bytes]]:
        """(address, data) runs of non-zero bytes, for state diffing."""
        for page_id in sorted(self._pages):
            page = self._pages[page_id]
            base = page_id << _PAGE_BITS
            run_start = None
            for i in range(_PAGE_SIZE + 1):
                byte = page[i] if i < _PAGE_SIZE else 0
                if byte and run_start is None:
                    run_start = i
                elif not byte and run_start is not None:
                    yield base + run_start, bytes(page[run_start:i])
                    run_start = None

    def snapshot_hash(self) -> int:
        """Order-independent digest of memory contents (zero-insensitive)."""
        digest = 0
        for address, data in self.nonzero_ranges():
            digest ^= hash((address, data))
        return digest
